//! CKKS-RNS parameter sets and the shared scheme context.
//!
//! A [`CkksParams`] describes the ring degree, the ciphertext modulus
//! chain (bit sizes), the key-switching ("special") primes, the encoding
//! scale Δ and the target security level. [`CkksContext`] materializes the
//! parameters: concrete NTT-friendly primes, NTT tables, the canonical
//! embedding, per-level RNS bases and the rescaling / key-switching
//! scalar precomputations.

use crate::security::SecurityLevel;
use ckks_math::bigint::BigInt;
use ckks_math::fft::EmbeddingTable;
use ckks_math::modring::Modulus;
use ckks_math::poly::PolyContext;
use ckks_math::prime::gen_moduli_chain;
use ckks_math::rns::RnsBasis;
use std::sync::Arc;

/// Declarative CKKS-RNS parameter set.
#[derive(Debug, Clone)]
pub struct CkksParams {
    /// Ring degree `N` (power of two). Slots = `N/2`.
    pub n: usize,
    /// Bit sizes of the ciphertext chain `q_0, …, q_L` (first entry is the
    /// decryption modulus, the rest are rescaling primes ≈ Δ).
    pub chain_bits: Vec<u32>,
    /// Bit sizes of the key-switching special primes (usually one ~60-bit
    /// or ~40-bit prime).
    pub special_bits: Vec<u32>,
    /// log₂ of the encoding scale Δ.
    pub scale_bits: u32,
    /// Security level to validate against the HE standard.
    pub security: SecurityLevel,
}

impl CkksParams {
    /// The paper's Table II setting: `N = 2^14`, `Δ = 2^26`, λ = 128,
    /// chain `[40, 26 × L]` plus one 40-bit special prime, `L = 13`.
    pub fn paper_table2() -> Self {
        let mut chain_bits = vec![40u32];
        chain_bits.extend(std::iter::repeat_n(26, 13));
        Self {
            n: 1 << 14,
            chain_bits,
            special_bits: vec![40],
            scale_bits: 26,
            security: SecurityLevel::Bits128,
        }
    }

    /// A reduced setting with the same shape (`Δ = 2^26`, 40-bit ends)
    /// but ring degree 2^12 and `depth` rescaling levels — used by tests
    /// and fast examples. Security checking is disabled: the modulus is
    /// deliberately too big for 2^12 to keep the arithmetic identical to
    /// the full-size setting.
    pub fn toy(depth: usize) -> Self {
        let mut chain_bits = vec![40u32];
        chain_bits.extend(std::iter::repeat_n(26, depth));
        Self {
            n: 1 << 12,
            chain_bits,
            special_bits: vec![40],
            scale_bits: 26,
            security: SecurityLevel::None,
        }
    }

    /// Smallest usable setting for unit tests (`N = 2^10`).
    pub fn tiny(depth: usize) -> Self {
        let mut chain_bits = vec![40u32];
        chain_bits.extend(std::iter::repeat_n(26, depth));
        Self {
            n: 1 << 10,
            chain_bits,
            special_bits: vec![40],
            scale_bits: 26,
            security: SecurityLevel::None,
        }
    }

    /// Maximum multiplicative depth `L` (number of rescaling primes).
    pub fn depth(&self) -> usize {
        self.chain_bits.len() - 1
    }

    /// Δ as a float.
    pub fn scale(&self) -> f64 {
        2f64.powi(self.scale_bits as i32)
    }

    /// Total `log₂(PQ)` (chain + special), the quantity the HE standard
    /// bounds.
    pub fn total_log_q(&self) -> u32 {
        self.chain_bits.iter().chain(&self.special_bits).sum()
    }

    /// Number of usable slots (`N/2`).
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// `log₂(Q_ℓ)` of the chain prefix `q_0..q_level` — the modulus a
    /// ciphertext at `level` lives under. Bit sizes are nominal (each
    /// generated prime is within one part in ~2¹¹ of its power of two),
    /// which is what static analysis tracks.
    pub fn log_q_at_level(&self, level: usize) -> f64 {
        assert!(level < self.chain_bits.len(), "level beyond the chain");
        self.chain_bits[..=level].iter().map(|&b| b as f64).sum()
    }

    /// Galois element realizing a left rotation by `steps` slots —
    /// `5^(steps mod N/2) mod 2N`, the same element a built
    /// [`CkksContext`] resolves, computable without NTT tables.
    pub fn galois_element_for_rotation(&self, steps: i64) -> usize {
        let slots = self.slots() as i64;
        let r = steps.rem_euclid(slots) as usize;
        let two_n = 2 * self.n;
        let mut g = 1usize;
        for _ in 0..r {
            g = (g * 5) % two_n;
        }
        g
    }

    /// Galois element of complex conjugation (`X ↦ X^{2N−1}`).
    pub fn galois_element_conjugate(&self) -> usize {
        2 * self.n - 1
    }

    /// Builds the full context; panics on invalid or insecure parameters.
    pub fn build(self) -> Arc<CkksContext> {
        CkksContext::new(self)
    }
}

/// Materialized CKKS-RNS context shared by keys, ciphertexts and the
/// evaluator.
pub struct CkksContext {
    params: CkksParams,
    poly_ctx: Arc<PolyContext>,
    embedding: EmbeddingTable,
    /// RNS basis over chain prefix `q_0..q_k` for every `k = 1..=L+1`
    /// (index `k-1`), used by decoding and cross-validation.
    level_bases: Vec<RnsBasis>,
    /// For rescaling by `q_k` (dropping limb `k`): `q_k^{-1} mod q_i` for
    /// `i < k`; indexed `[k][i]`.
    rescale_inv: Vec<Vec<u64>>,
    /// Product of the special primes `P` …
    big_p: BigInt,
    /// … reduced mod each chain prime: `[P]_{q_i}`.
    p_mod_qi: Vec<u64>,
    /// `P^{-1} mod q_i`.
    p_inv_mod_qi: Vec<u64>,
    /// `5^j mod 2N` for slot rotations.
    five_pows: Vec<usize>,
}

impl CkksContext {
    fn new(params: CkksParams) -> Arc<Self> {
        assert!(params.n.is_power_of_two() && params.n >= 8);
        assert!(!params.chain_bits.is_empty());
        params
            .security
            .validate(params.n, params.total_log_q())
            .unwrap_or_else(|e| panic!("insecure parameters: {e}"));

        // One pass so chain and special primes are all distinct.
        let mut all_bits = params.chain_bits.clone();
        all_bits.extend(&params.special_bits);
        let all_moduli = gen_moduli_chain(&all_bits, params.n);
        let chain_len = params.chain_bits.len();
        let chain: Vec<Modulus> = all_moduli[..chain_len].to_vec();
        let special: Vec<Modulus> = all_moduli[chain_len..].to_vec();

        let poly_ctx = PolyContext::new(params.n, chain.clone(), special.clone());
        let embedding = EmbeddingTable::new(params.n);

        let level_bases: Vec<RnsBasis> = (1..=chain_len)
            .map(|k| RnsBasis::new(chain[..k].to_vec()))
            .collect();

        let rescale_inv: Vec<Vec<u64>> = (0..chain_len)
            .map(|k| {
                (0..k)
                    .map(|i| chain[i].inv(chain[i].reduce(chain[k].value())))
                    .collect()
            })
            .collect();

        let big_p = special
            .iter()
            .fold(BigInt::one(), |acc, m| acc.mul_u64(m.value()));
        let p_mod_qi: Vec<u64> = chain.iter().map(|m| big_p.rem_u64(m.value())).collect();
        let p_inv_mod_qi: Vec<u64> = chain
            .iter()
            .zip(&p_mod_qi)
            .map(|(m, &p)| m.inv(p))
            .collect();

        let two_n = 2 * params.n;
        let mut five_pows = Vec::with_capacity(params.n / 2);
        let mut f = 1usize;
        for _ in 0..params.n / 2 {
            five_pows.push(f);
            f = (f * 5) % two_n;
        }

        Arc::new(Self {
            params,
            poly_ctx,
            embedding,
            level_bases,
            rescale_inv,
            big_p,
            p_mod_qi,
            p_inv_mod_qi,
            five_pows,
        })
    }

    #[inline]
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.params.n
    }

    /// Number of usable slots (`N/2`).
    #[inline]
    pub fn slots(&self) -> usize {
        self.params.n / 2
    }

    #[inline]
    pub fn poly_ctx(&self) -> &Arc<PolyContext> {
        &self.poly_ctx
    }

    #[inline]
    pub fn embedding(&self) -> &EmbeddingTable {
        &self.embedding
    }

    /// Chain moduli `q_0..q_L`.
    pub fn chain_moduli(&self) -> &[Modulus] {
        &self.poly_ctx.moduli()[..self.poly_ctx.chain_len()]
    }

    /// Special (key-switching) moduli.
    pub fn special_moduli(&self) -> &[Modulus] {
        &self.poly_ctx.moduli()[self.poly_ctx.chain_len()..]
    }

    /// Highest level of a fresh ciphertext (`L`).
    #[inline]
    pub fn max_level(&self) -> usize {
        self.poly_ctx.chain_len() - 1
    }

    /// RNS basis of the chain prefix `q_0..q_level`.
    pub fn level_basis(&self, level: usize) -> &RnsBasis {
        &self.level_bases[level]
    }

    /// `q_k^{-1} mod q_i` scalars for rescaling from level `k` (dropping
    /// limb `k`); slice indexed by `i < k`.
    pub fn rescale_inv(&self, k: usize) -> &[u64] {
        &self.rescale_inv[k]
    }

    #[inline]
    pub fn big_p(&self) -> &BigInt {
        &self.big_p
    }

    #[inline]
    pub fn p_mod_qi(&self) -> &[u64] {
        &self.p_mod_qi
    }

    #[inline]
    pub fn p_inv_mod_qi(&self) -> &[u64] {
        &self.p_inv_mod_qi
    }

    /// Galois element realizing a left rotation by `steps` slots
    /// (`steps` may wrap; negative steps = right rotation).
    pub fn galois_element_for_rotation(&self, steps: i64) -> usize {
        let slots = self.slots() as i64;
        let r = steps.rem_euclid(slots) as usize;
        self.five_pows[r]
    }

    /// Galois element of complex conjugation (`X ↦ X^{2N-1}`).
    pub fn galois_element_conjugate(&self) -> usize {
        2 * self.params.n - 1
    }

    /// Human-readable one-line summary (used by the Table II harness).
    pub fn describe(&self) -> String {
        format!(
            "N=2^{} λ={} Δ=2^{} chain_bits={:?} special_bits={:?} log(PQ)={} L={}",
            self.params.n.trailing_zeros(),
            self.params.security.lambda(),
            self.params.scale_bits,
            self.params.chain_bits,
            self.params.special_bits,
            self.params.total_log_q(),
            self.params.depth(),
        )
    }
}

impl std::fmt::Debug for CkksContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CkksContext({})", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_context_builds() {
        let ctx = CkksParams::tiny(3).build();
        assert_eq!(ctx.n(), 1 << 10);
        assert_eq!(ctx.max_level(), 3);
        assert_eq!(ctx.chain_moduli().len(), 4);
        assert_eq!(ctx.special_moduli().len(), 1);
        assert_eq!(ctx.slots(), 512);
    }

    #[test]
    fn paper_params_build_and_are_secure() {
        let p = CkksParams::paper_table2();
        assert_eq!(p.n, 1 << 14);
        assert_eq!(p.depth(), 13);
        assert_eq!(p.scale_bits, 26);
        assert!(p.security.validate(p.n, p.total_log_q()).is_ok());
        // building materializes ~16k-degree NTT tables for 15 primes — keep
        // it in one test only
        let ctx = p.build();
        assert_eq!(ctx.max_level(), 13);
    }

    #[test]
    #[should_panic(expected = "insecure parameters")]
    fn insecure_params_rejected() {
        let mut p = CkksParams::paper_table2();
        p.chain_bits.extend([60, 60, 60]); // blow past 438 bits
        let _ = p.build();
    }

    #[test]
    fn rescale_scalars_are_inverses() {
        let ctx = CkksParams::tiny(3).build();
        let chain = ctx.chain_moduli();
        for k in 1..chain.len() {
            for i in 0..k {
                let qk = chain[i].reduce(chain[k].value());
                let inv = ctx.rescale_inv(k)[i];
                assert_eq!(chain[i].mul(qk, inv), 1);
            }
        }
    }

    #[test]
    fn p_scalars_consistent() {
        let ctx = CkksParams::tiny(2).build();
        for (i, m) in ctx.chain_moduli().iter().enumerate() {
            assert_eq!(m.mul(ctx.p_mod_qi()[i], ctx.p_inv_mod_qi()[i]), 1);
            assert_eq!(ctx.big_p().rem_u64(m.value()), ctx.p_mod_qi()[i]);
        }
    }

    #[test]
    fn params_galois_elements_match_context() {
        let params = CkksParams::tiny(1);
        let ctx = params.clone().build();
        for steps in [0i64, 1, 2, 7, -1, -3, 511, 513] {
            assert_eq!(
                params.galois_element_for_rotation(steps),
                ctx.galois_element_for_rotation(steps),
                "steps {steps}"
            );
        }
        assert_eq!(
            params.galois_element_conjugate(),
            ctx.galois_element_conjugate()
        );
        assert_eq!(params.slots(), ctx.slots());
    }

    #[test]
    fn log_q_accumulates_chain_bits() {
        let p = CkksParams::tiny(3); // chain [40, 26, 26, 26]
        assert_eq!(p.log_q_at_level(0), 40.0);
        assert_eq!(p.log_q_at_level(3), 40.0 + 3.0 * 26.0);
    }

    #[test]
    fn galois_elements() {
        let ctx = CkksParams::tiny(1).build();
        assert_eq!(ctx.galois_element_for_rotation(0), 1);
        assert_eq!(ctx.galois_element_for_rotation(1), 5);
        assert_eq!(ctx.galois_element_for_rotation(2), 25);
        let slots = ctx.slots() as i64;
        assert_eq!(
            ctx.galois_element_for_rotation(-1),
            ctx.galois_element_for_rotation(slots - 1)
        );
        assert_eq!(ctx.galois_element_conjugate(), 2 * ctx.n() - 1);
    }
}
