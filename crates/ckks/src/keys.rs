//! Key material: secret, public, relinearization and Galois keys, plus the
//! generator implementing the paper's `KeyGen(N, q, L) → sk, pk, ek`.
//!
//! Key switching follows the GHS/hybrid approach with limb-digit
//! decomposition: for each chain prime `q_j`, digit `j` of a key-switching
//! key encrypts `P · δ_j · w` where `w` is the source key (`s²` for
//! relinearization, `σ(s)` for rotations), `P` is the product of the
//! special primes, and `δ_j` is the CRT indicator (`≡ 1 mod q_j`, `≡ 0`
//! mod every other prime including the special ones). This makes one key
//! set valid at *every* level — at level ℓ only digits `0..=ℓ` are used.
//!
//! A BV-style variant without the special modulus is included for the
//! noise/latency ablation benchmarks.

use crate::params::CkksContext;
use ckks_math::poly::{Form, RnsPoly};
use ckks_math::sampler::Sampler;
use std::collections::HashMap;
use std::sync::Arc;

/// Secret key: `s ← χ_key = HW(h)`, stored both as signed coefficients
/// (needed to form `σ(s)` for Galois keys) and in NTT form over every
/// modulus.
///
/// **Note:** a production deployment would zeroize `coeffs` on drop and
/// avoid retaining them at all; this research implementation keeps them
/// for key-derivation convenience.
pub struct SecretKey {
    /// Signed ternary coefficients.
    pub(crate) coeffs: Vec<i64>,
    /// `s` in NTT form over all (chain + special) moduli.
    pub(crate) s_ntt: RnsPoly,
    /// Hamming weight used at sampling time.
    pub hamming_weight: usize,
}

impl SecretKey {
    /// `s` restricted to limbs `0..=level`, NTT form.
    pub fn s_at_level(&self, level: usize) -> RnsPoly {
        let indices: Vec<usize> = (0..=level).collect();
        self.s_ntt.restrict(&indices)
    }
}

/// Public encryption key `(b, a) = (-a·s + e, a)` over the chain moduli.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
}

impl PublicKey {
    /// The `b = -a·s + e` component.
    pub fn b(&self) -> &RnsPoly {
        &self.b
    }

    /// The uniform `a` component.
    pub fn a(&self) -> &RnsPoly {
        &self.a
    }

    /// Reassembles a public key (deserialization).
    pub fn from_parts(b: RnsPoly, a: RnsPoly) -> Self {
        Self { b, a }
    }
}

/// Key-switching algorithm variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KsVariant {
    /// Hybrid/GHS with special modulus `P`: digits carry a `P` factor and
    /// the switched result is scaled down by `P`, making the added noise
    /// negligible. The default.
    Ghs,
    /// BV-style digit decomposition without a special modulus. Cheaper per
    /// digit but adds noise proportional to `q_j · N · σ`; kept for the
    /// ablation study.
    Bv,
}

/// A key-switching key from some source key `w` to the secret `s`:
/// one RLWE pair per chain-prime digit.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    /// `digits[j] = (b_j, a_j)`.
    pub(crate) digits: Vec<(RnsPoly, RnsPoly)>,
    pub variant: KsVariant,
}

impl KeySwitchKey {
    /// Per-digit RLWE pairs.
    pub fn digits(&self) -> &[(RnsPoly, RnsPoly)] {
        &self.digits
    }

    /// Reassembles a key-switching key (deserialization).
    pub fn from_parts(digits: Vec<(RnsPoly, RnsPoly)>, variant: KsVariant) -> Self {
        Self { digits, variant }
    }
}

/// Relinearization key: a key switch from `s²` to `s` (the paper's `ek`).
#[derive(Debug, Clone)]
pub struct RelinKey(pub KeySwitchKey);

/// Galois keys: one key switch per Galois element `g`, from `σ_g(s)` to `s`.
#[derive(Debug, Clone, Default)]
pub struct GaloisKeys {
    pub(crate) keys: HashMap<usize, KeySwitchKey>,
}

impl GaloisKeys {
    pub fn get(&self, galois_element: usize) -> Option<&KeySwitchKey> {
        self.keys.get(&galois_element)
    }

    pub fn contains(&self, galois_element: usize) -> bool {
        self.keys.contains_key(&galois_element)
    }

    pub fn elements(&self) -> impl Iterator<Item = usize> + '_ {
        self.keys.keys().copied()
    }

    /// Inserts a key for a Galois element (deserialization / merging).
    pub fn insert(&mut self, galois_element: usize, key: KeySwitchKey) {
        self.keys.insert(galois_element, key);
    }
}

/// Generates all key material for a context.
pub struct KeyGenerator {
    ctx: Arc<CkksContext>,
    sampler: Sampler,
}

impl KeyGenerator {
    pub fn new(ctx: Arc<CkksContext>, seed: u64) -> Self {
        Self {
            ctx,
            sampler: Sampler::from_seed(seed),
        }
    }

    pub fn from_entropy(ctx: Arc<CkksContext>) -> Self {
        Self {
            ctx,
            sampler: Sampler::from_entropy(),
        }
    }

    fn all_indices(&self) -> Vec<usize> {
        (0..self.ctx.poly_ctx().moduli().len()).collect()
    }

    fn chain_indices(&self) -> Vec<usize> {
        (0..self.ctx.poly_ctx().chain_len()).collect()
    }

    /// Samples an error polynomial (CBD, σ ≈ 3.2) over the given limbs,
    /// returned in NTT form.
    fn error_ntt(&mut self, indices: &[usize]) -> RnsPoly {
        let e: Vec<i64> = self
            .sampler
            .cbd_error(self.ctx.n())
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let mut p = RnsPoly::from_signed(Arc::clone(self.ctx.poly_ctx()), indices.to_vec(), &e);
        p.ntt_forward();
        p
    }

    /// `sk ← χ_key = HW(h)` with `h = min(N/2, 64)` by default (HEAAN's
    /// choice, compatible with the HE-standard ternary assumption).
    pub fn gen_secret_key(&mut self) -> SecretKey {
        let h = 64.min(self.ctx.n() / 2);
        self.gen_secret_key_with_weight(h)
    }

    pub fn gen_secret_key_with_weight(&mut self, h: usize) -> SecretKey {
        let coeffs: Vec<i64> = self
            .sampler
            .hamming_ternary(self.ctx.n(), h)
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let mut s_ntt =
            RnsPoly::from_signed(Arc::clone(self.ctx.poly_ctx()), self.all_indices(), &coeffs);
        s_ntt.ntt_forward();
        SecretKey {
            coeffs,
            s_ntt,
            hamming_weight: h,
        }
    }

    /// `pk = (b, a) ∈ R_{q_L}²` with `b = -a·s + e`.
    pub fn gen_public_key(&mut self, sk: &SecretKey) -> PublicKey {
        let indices = self.chain_indices();
        let a = RnsPoly::uniform(
            Arc::clone(self.ctx.poly_ctx()),
            indices.clone(),
            Form::Ntt,
            &mut self.sampler,
        );
        let e = self.error_ntt(&indices);
        let s = sk.s_ntt.restrict(&indices);
        let mut b = a.clone();
        b.mul_assign(&s);
        b.neg_assign();
        b.add_assign(&e);
        PublicKey { b, a }
    }

    /// Generic key-switching key from source key `w` (NTT form over all
    /// moduli) to `s`.
    fn gen_ksk(&mut self, w: &RnsPoly, sk: &SecretKey, variant: KsVariant) -> KeySwitchKey {
        let chain_len = self.ctx.poly_ctx().chain_len();
        let indices = match variant {
            KsVariant::Ghs => self.all_indices(),
            KsVariant::Bv => self.chain_indices(),
        };
        let s = sk.s_ntt.restrict(&indices);
        let w_r = w.restrict(&indices);
        let mut digits = Vec::with_capacity(chain_len);
        for j in 0..chain_len {
            let a_j = RnsPoly::uniform(
                Arc::clone(self.ctx.poly_ctx()),
                indices.clone(),
                Form::Ntt,
                &mut self.sampler,
            );
            let e_j = self.error_ntt(&indices);
            let mut b_j = a_j.clone();
            b_j.mul_assign(&s);
            b_j.neg_assign();
            b_j.add_assign(&e_j);
            // add the digit payload on limb j only:
            //   GHS: [P]_{q_j} · w_j     BV: w_j
            let m = self.ctx.chain_moduli()[j];
            let factor = match variant {
                KsVariant::Ghs => self.ctx.p_mod_qi()[j],
                KsVariant::Bv => 1,
            };
            let fs = m.shoup(m.reduce(factor));
            let w_limb = w_r.limb(j);
            // limb j of b_j has the same position j (indices are 0..)
            let dst = b_j.limb_mut(j);
            for (d, &wv) in dst.iter_mut().zip(w_limb) {
                let t = m.mul_shoup(wv, m.reduce(factor), fs);
                *d = m.add(*d, t);
            }
            digits.push((b_j, a_j));
        }
        KeySwitchKey { digits, variant }
    }

    /// Relinearization key (`ek`): switches `s²` to `s`.
    pub fn gen_relin_key(&mut self, sk: &SecretKey) -> RelinKey {
        self.gen_relin_key_variant(sk, KsVariant::Ghs)
    }

    pub fn gen_relin_key_variant(&mut self, sk: &SecretKey, variant: KsVariant) -> RelinKey {
        let mut s2 = sk.s_ntt.clone();
        let s2_clone = sk.s_ntt.clone();
        s2.mul_assign(&s2_clone);
        RelinKey(self.gen_ksk(&s2, sk, variant))
    }

    /// Galois keys for the given rotation steps (and optionally
    /// conjugation), switching `σ_g(s)` to `s`.
    pub fn gen_galois_keys(
        &mut self,
        sk: &SecretKey,
        steps: &[i64],
        with_conjugate: bool,
    ) -> GaloisKeys {
        let mut elements: Vec<usize> = steps
            .iter()
            .map(|&r| self.ctx.galois_element_for_rotation(r))
            .collect();
        if with_conjugate {
            elements.push(self.ctx.galois_element_conjugate());
        }
        elements.sort_unstable();
        elements.dedup();

        let mut keys = HashMap::new();
        for g in elements {
            // σ_g(s) from signed coefficients, over all moduli, NTT form.
            let s_poly = RnsPoly::from_signed(
                Arc::clone(self.ctx.poly_ctx()),
                self.all_indices(),
                &sk.coeffs,
            );
            let mut sg = s_poly.automorphism(g);
            sg.ntt_forward();
            keys.insert(g, self.gen_ksk(&sg, sk, KsVariant::Ghs));
        }
        GaloisKeys { keys }
    }

    /// Access to the underlying sampler (for encryptors sharing the RNG).
    pub fn sampler(&mut self) -> &mut Sampler {
        &mut self.sampler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    #[test]
    fn secret_key_shape() {
        let ctx = CkksParams::tiny(2).build();
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), 1);
        let sk = kg.gen_secret_key();
        assert_eq!(sk.coeffs.len(), ctx.n());
        let nz = sk.coeffs.iter().filter(|&&c| c != 0).count();
        assert_eq!(nz, sk.hamming_weight);
        // all moduli present
        assert_eq!(sk.s_ntt.num_limbs(), ctx.poly_ctx().moduli().len());
        // restriction works
        assert_eq!(sk.s_at_level(1).num_limbs(), 2);
    }

    #[test]
    fn public_key_is_rlwe_sample() {
        // b + a·s must equal a small error.
        let ctx = CkksParams::tiny(1).build();
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), 2);
        let sk = kg.gen_secret_key();
        let pk = kg.gen_public_key(&sk);
        let s = sk.s_at_level(ctx.max_level());
        let mut check = pk.a.clone();
        check.mul_assign(&s);
        check.add_assign(&pk.b);
        check.ntt_inverse();
        // every coefficient must be a small centered value (CBD ≤ 21)
        for li in 0..check.num_limbs() {
            let m = *check.limb_modulus(li);
            for &c in check.limb(li) {
                let v = m.to_centered_i64(c);
                assert!(v.abs() <= 21, "residual {v} too large for an RLWE error");
            }
        }
    }

    #[test]
    fn relin_key_digit_structure() {
        let ctx = CkksParams::tiny(1).build();
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), 3);
        let sk = kg.gen_secret_key();
        let rk = kg.gen_relin_key(&sk);
        assert_eq!(rk.0.digits.len(), ctx.poly_ctx().chain_len());
        assert_eq!(rk.0.variant, KsVariant::Ghs);
        // GHS digits live over chain + special moduli
        assert_eq!(rk.0.digits[0].0.num_limbs(), ctx.poly_ctx().moduli().len());
        let bv = kg.gen_relin_key_variant(&sk, KsVariant::Bv);
        assert_eq!(bv.0.digits[0].0.num_limbs(), ctx.poly_ctx().chain_len());
    }

    #[test]
    fn ksk_digit_decrypts_to_payload() {
        // b_j + a_j·s = e + P·δ_j·s²: checking limb j carries [P]_{q_j}·s²
        // plus small error, other limbs only the error.
        let ctx = CkksParams::tiny(1).build();
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), 4);
        let sk = kg.gen_secret_key();
        let rk = kg.gen_relin_key(&sk);
        let all: Vec<usize> = (0..ctx.poly_ctx().moduli().len()).collect();
        let s = sk.s_ntt.restrict(&all);
        let mut s2 = s.clone();
        let sc = s.clone();
        s2.mul_assign(&sc);

        for (j, (b_j, a_j)) in rk.0.digits.iter().enumerate() {
            let mut lhs = a_j.clone();
            lhs.mul_assign(&s);
            lhs.add_assign(b_j);
            // subtract the expected payload on limb j
            let m = ctx.chain_moduli()[j];
            let p_mod = ctx.p_mod_qi()[j];
            {
                let s2_limb = s2.limb(j).to_vec();
                let dst = lhs.limb_mut(j);
                for (d, &sv) in dst.iter_mut().zip(&s2_limb) {
                    *d = m.sub(*d, m.mul(p_mod, sv));
                }
            }
            let mut lhs_c = lhs.clone();
            lhs_c.ntt_inverse();
            for li in 0..lhs_c.num_limbs() {
                let mm = *lhs_c.limb_modulus(li);
                for &c in lhs_c.limb(li) {
                    let v = mm.to_centered_i64(c);
                    assert!(v.abs() <= 21, "digit {j} limb {li}: residual {v}");
                }
            }
        }
    }

    #[test]
    fn galois_keys_cover_requested_rotations() {
        let ctx = CkksParams::tiny(1).build();
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), 5);
        let sk = kg.gen_secret_key();
        let gk = kg.gen_galois_keys(&sk, &[1, 2, -1], true);
        assert!(gk.contains(ctx.galois_element_for_rotation(1)));
        assert!(gk.contains(ctx.galois_element_for_rotation(2)));
        assert!(gk.contains(ctx.galois_element_for_rotation(-1)));
        assert!(gk.contains(ctx.galois_element_conjugate()));
        assert!(!gk.contains(ctx.galois_element_for_rotation(7)));
    }

    #[test]
    fn deterministic_under_seed() {
        let ctx = CkksParams::tiny(1).build();
        let sk1 = KeyGenerator::new(Arc::clone(&ctx), 9).gen_secret_key();
        let sk2 = KeyGenerator::new(Arc::clone(&ctx), 9).gen_secret_key();
        assert_eq!(sk1.coeffs, sk2.coeffs);
        let sk3 = KeyGenerator::new(Arc::clone(&ctx), 10).gen_secret_key();
        assert_ne!(sk1.coeffs, sk3.coeffs);
    }
}
