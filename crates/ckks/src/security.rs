//! Security parameter validation against the Homomorphic Encryption
//! Standard (HomomorphicEncryption.org, 2018) — the same table the paper's
//! §V.B adopts ("We adopt the security settings specified in the HE
//! standard").
//!
//! The table lists, for each ring degree `N` and target security level λ,
//! the maximum total modulus size `log₂(P·Q)` (ciphertext chain *including*
//! key-switching primes) that keeps the RLWE instance at λ-bit classical
//! security with a ternary secret distribution.

/// Classical security levels of the HE standard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityLevel {
    /// λ = 128 bits — the paper's setting.
    Bits128,
    /// λ = 192 bits.
    Bits192,
    /// λ = 256 bits.
    Bits256,
    /// No enforcement (tests and micro-benchmarks at toy ring degrees).
    None,
}

impl SecurityLevel {
    /// Maximum permitted `log₂(PQ)` for ternary secrets at ring degree `n`,
    /// per Table 1 of the HE standard. Returns `None` when the degree is
    /// not covered (too small to be secure at this level).
    pub fn max_log_q(&self, n: usize) -> Option<u32> {
        let idx = match n {
            1024 => 0,
            2048 => 1,
            4096 => 2,
            8192 => 3,
            16384 => 4,
            32768 => 5,
            _ => return None,
        };
        let row: [u32; 6] = match self {
            SecurityLevel::Bits128 => [27, 54, 109, 218, 438, 881],
            SecurityLevel::Bits192 => [19, 37, 75, 152, 305, 611],
            SecurityLevel::Bits256 => [14, 29, 58, 118, 237, 476],
            SecurityLevel::None => return Some(u32::MAX),
        };
        Some(row[idx])
    }

    /// λ in bits (0 for `None`).
    pub fn lambda(&self) -> u32 {
        match self {
            SecurityLevel::Bits128 => 128,
            SecurityLevel::Bits192 => 192,
            SecurityLevel::Bits256 => 256,
            SecurityLevel::None => 0,
        }
    }

    /// Validates a parameter set; returns the security margin in bits of
    /// modulus budget left, or an error string describing the violation.
    pub fn validate(&self, n: usize, total_log_q: u32) -> Result<u32, String> {
        if matches!(self, SecurityLevel::None) {
            return Ok(u32::MAX);
        }
        match self.max_log_q(n) {
            None => Err(format!(
                "ring degree {n} is not covered by the HE standard at λ={}",
                self.lambda()
            )),
            Some(max) if total_log_q > max => Err(format!(
                "log(PQ) = {total_log_q} exceeds the HE-standard bound {max} for N={n}, λ={}",
                self.lambda()
            )),
            Some(max) => Ok(max - total_log_q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setting_is_valid() {
        // Table II: N = 2^14, λ = 128. Our chain [40, 26×13] + special [40]
        // totals 418 bits <= 438.
        let total = 40 + 26 * 13 + 40;
        assert!(SecurityLevel::Bits128.validate(1 << 14, total).is_ok());
    }

    #[test]
    fn oversized_modulus_rejected() {
        assert!(SecurityLevel::Bits128.validate(1 << 14, 439).is_err());
        assert!(SecurityLevel::Bits128.validate(1 << 14, 438).is_ok());
    }

    #[test]
    fn higher_security_is_stricter() {
        for n in [1024usize, 2048, 4096, 8192, 16384, 32768] {
            let a = SecurityLevel::Bits128.max_log_q(n).unwrap();
            let b = SecurityLevel::Bits192.max_log_q(n).unwrap();
            let c = SecurityLevel::Bits256.max_log_q(n).unwrap();
            assert!(a > b && b > c, "N={n}");
        }
    }

    #[test]
    fn uncovered_degree() {
        assert!(SecurityLevel::Bits128.max_log_q(512).is_none());
        assert!(SecurityLevel::Bits128.validate(512, 20).is_err());
        // but disabled security accepts anything
        assert!(SecurityLevel::None.validate(512, 10_000).is_ok());
    }
}
