//! Encoding of complex/real slot vectors into RNS plaintext polynomials
//! via the canonical embedding, `m = ⌊Δ · τ^{-1}(z)⌉`, and decoding back.

use crate::params::CkksContext;
use ckks_math::bigint::BigInt;
use ckks_math::fft::Complex;
use ckks_math::poly::{Form, RnsPoly};
use std::sync::Arc;

/// An encoded plaintext: an RNS polynomial (kept in NTT form, ready for
/// multiplication) together with its scale and level metadata.
#[derive(Debug, Clone)]
pub struct Plaintext {
    pub poly: RnsPoly,
    pub scale: f64,
    pub level: usize,
    pub slots: usize,
}

/// Encodes a complex slot vector at the given `scale` and `level`.
///
/// `values.len()` is padded up to the next power of two (≤ `N/2` slots).
/// Coefficients larger than 2^62 fall back to an exact bignum path so
/// encoding stays correct at large composite scales (e.g. Δ²).
pub fn encode(ctx: &Arc<CkksContext>, values: &[Complex], scale: f64, level: usize) -> Plaintext {
    assert!(!values.is_empty(), "cannot encode an empty vector");
    assert!(level <= ctx.max_level(), "level out of range");
    assert!(scale > 0.0 && scale.is_finite());
    let slots = values.len().next_power_of_two();
    assert!(
        slots <= ctx.slots(),
        "too many values: {} > {} slots",
        values.len(),
        ctx.slots()
    );
    let mut padded = values.to_vec();
    padded.resize(slots, Complex::ZERO);

    let coeffs = ctx.embedding().slots_to_coeffs(&padded);
    let n = ctx.n();
    let limb_indices: Vec<usize> = (0..=level).collect();
    let moduli = ctx.chain_moduli();

    // Fast path: every scaled coefficient fits i64.
    let max_abs = coeffs.iter().fold(0.0f64, |m, c| m.max(c.abs())) * scale;
    let mut poly = if max_abs < 4.6e18 {
        let scaled: Vec<i64> = coeffs.iter().map(|&c| (c * scale).round() as i64).collect();
        RnsPoly::from_signed(Arc::clone(ctx.poly_ctx()), limb_indices, &scaled)
    } else {
        // Exact bignum rounding, then residue decomposition per limb.
        let mut poly = RnsPoly::zero(Arc::clone(ctx.poly_ctx()), limb_indices, Form::Coeff);
        for (i, &c) in coeffs.iter().enumerate() {
            let big = BigInt::from_f64_rounded(c * scale);
            for li in 0..poly.num_limbs() {
                let m = moduli[li];
                let r = big.rem_u64(m.value());
                poly.limb_mut(li)[i] = r;
            }
        }
        poly
    };
    debug_assert_eq!(poly.limb(0).len(), n);
    poly.ntt_forward();
    Plaintext {
        poly,
        scale,
        level,
        slots,
    }
}

/// Encodes a real-valued slot vector.
pub fn encode_real(ctx: &Arc<CkksContext>, values: &[f64], scale: f64, level: usize) -> Plaintext {
    let cv: Vec<Complex> = values.iter().map(|&v| Complex::from(v)).collect();
    encode(ctx, &cv, scale, level)
}

/// Encodes the same constant into every slot.
pub fn encode_constant(ctx: &Arc<CkksContext>, value: f64, scale: f64, level: usize) -> Plaintext {
    // A constant is invariant under the embedding: encode via a length-1
    // vector would place it in slot 0 only, so fill all slots.
    let vals = vec![Complex::from(value); ctx.slots()];
    encode(ctx, &vals, scale, level)
}

/// Decodes a plaintext back to its complex slot vector.
pub fn decode(ctx: &Arc<CkksContext>, pt: &Plaintext) -> Vec<Complex> {
    let mut poly = pt.poly.clone();
    if poly.form() == Form::Ntt {
        poly.ntt_inverse();
    }
    let n = ctx.n();
    let mut coeffs = vec![0.0f64; n];
    if pt.level == 0 {
        let m = *poly.limb_modulus(0);
        for (i, &r) in poly.limb(0).iter().enumerate() {
            coeffs[i] = m.to_centered_i64(r) as f64;
        }
    } else {
        let basis = ctx.level_basis(pt.level);
        for i in 0..n {
            let residues = poly.coeff_residues(i);
            coeffs[i] = basis.compose_centered(&residues).to_f64();
        }
    }
    let inv_scale = 1.0 / pt.scale;
    for c in coeffs.iter_mut() {
        *c *= inv_scale;
    }
    ctx.embedding().coeffs_to_slots(&coeffs, pt.slots)
}

/// Decodes to real parts only (discarding numerically-noisy imaginary
/// parts — the convention for real-valued ML payloads).
pub fn decode_real(ctx: &Arc<CkksContext>, pt: &Plaintext) -> Vec<f64> {
    decode(ctx, pt).into_iter().map(|c| c.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    fn ctx() -> Arc<CkksContext> {
        CkksParams::tiny(3).build()
    }

    #[test]
    fn encode_decode_roundtrip_full() {
        let ctx = ctx();
        let vals: Vec<Complex> = (0..ctx.slots())
            .map(|i| Complex::new((i as f64 * 0.017).sin(), (i as f64 * 0.013).cos()))
            .collect();
        let pt = encode(&ctx, &vals, ctx.params().scale(), ctx.max_level());
        let back = decode(&ctx, &pt);
        for (a, b) in back.iter().zip(&vals) {
            assert!((*a - *b).abs() < 1e-5, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn encode_decode_sparse_and_padding() {
        let ctx = ctx();
        // 5 values → padded to 8 slots
        let vals = [0.5, -0.25, 1.0, 0.0, 3.125];
        let pt = encode_real(&ctx, &vals, ctx.params().scale(), 2);
        assert_eq!(pt.slots, 8);
        let back = decode_real(&ctx, &pt);
        assert_eq!(back.len(), 8);
        for (a, b) in back.iter().zip(vals.iter().chain([0.0, 0.0, 0.0].iter())) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn precision_improves_with_scale() {
        let ctx = ctx();
        let vals: Vec<f64> = (0..64).map(|i| (i as f64).sqrt() * 0.01).collect();
        let mut errs = Vec::new();
        for bits in [15u32, 26, 40] {
            let scale = 2f64.powi(bits as i32);
            let pt = encode_real(&ctx, &vals, scale, 1);
            let back = decode_real(&ctx, &pt);
            let err = back
                .iter()
                .zip(&vals)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            errs.push(err);
        }
        assert!(errs[0] > errs[1] && errs[1] > errs[2], "errors {errs:?}");
    }

    #[test]
    fn level_zero_decode_path() {
        let ctx = ctx();
        let vals = [0.1, -0.2, 0.3];
        let pt = encode_real(&ctx, &vals, ctx.params().scale(), 0);
        assert_eq!(pt.poly.num_limbs(), 1);
        let back = decode_real(&ctx, &pt);
        for (a, b) in back.iter().zip(&vals) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn bignum_fallback_at_huge_scale() {
        let ctx = ctx();
        // Δ^2.5 ≈ 2^65: coefficients exceed i64, exercising the BigInt path.
        let scale = 2f64.powi(65);
        let vals = [0.75, -0.5, 0.125];
        let pt = encode_real(&ctx, &vals, scale, 3);
        let back = decode_real(&ctx, &pt);
        for (a, b) in back.iter().zip(&vals) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_fills_all_slots() {
        let ctx = ctx();
        let pt = encode_constant(&ctx, 2.5, ctx.params().scale(), 1);
        let back = decode_real(&ctx, &pt);
        assert_eq!(back.len(), ctx.slots());
        assert!(back.iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }

    #[test]
    fn encoding_error_example_from_paper_section_iii_c() {
        // The paper's §III.C worked example: with M = 8 (N = 4) and Δ = 64,
        // encoding z = (0.1, -0.01) loses the second component entirely.
        // Our stack reproduces the phenomenon: a tiny scale yields large
        // relative error on near-zero inputs; a larger Δ fixes it.
        let table = ckks_math::fft::EmbeddingTable::new(4);
        let vals = [Complex::new(0.1, 0.0), Complex::new(-0.01, 0.0)];
        let coeffs = table.slots_to_coeffs(&vals);
        // quantize at Δ = 64 then decode
        let q: Vec<f64> = coeffs.iter().map(|c| (c * 64.0).round() / 64.0).collect();
        let back = table.coeffs_to_slots(&q, 2);
        let err1 = (back[1].re - (-0.01f64)).abs();
        assert!(
            err1 > 0.005,
            "expected catastrophic relative error at Δ=64, got {err1}"
        );
        // Δ = 2^20 keeps it
        let q2: Vec<f64> = coeffs
            .iter()
            .map(|c| (c * 1048576.0).round() / 1048576.0)
            .collect();
        let back2 = table.coeffs_to_slots(&q2, 2);
        assert!((back2[1].re - (-0.01f64)).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn too_many_values_rejected() {
        let ctx = ctx();
        let vals = vec![Complex::ONE; ctx.slots() + 1];
        let _ = encode(&ctx, &vals, ctx.params().scale(), 0);
    }
}
