//! The homomorphic evaluator: encryption, decryption and all ciphertext
//! operations of the paper's §II — `Add`, `Mult` (+ relinearization),
//! `Resc`, `Rot`, conjugation — plus plaintext-operand variants and level
//! management.

use crate::ciphertext::Ciphertext;
use crate::encoding::{self, Plaintext};
use crate::error::HeError;
use crate::keys::{GaloisKeys, KeySwitchKey, KsVariant, PublicKey, RelinKey, SecretKey};
use crate::params::CkksContext;
use ckks_math::fft::Complex;
use ckks_math::kernel;
use ckks_math::poly::{Form, RnsPoly};
use ckks_math::sampler::Sampler;
use std::sync::Arc;

/// Relative tolerance for scale compatibility in additions.
pub const SCALE_RTOL: f64 = 1e-9;

/// Stateless evaluator bound to a context.
pub struct Evaluator {
    ctx: Arc<CkksContext>,
}

// The evaluator is shared by reference across unit-parallel layer loops;
// it must stay free of interior mutability.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Evaluator>();
};

/// A scalar encoded once for repeated multiply-accumulates at a fixed
/// `(pt_scale, level)`: reduced per-limb residues and Shoup precomps.
/// Produced by [`Evaluator::prepare_scalar`], consumed by
/// [`Evaluator::mul_residues_acc`].
#[derive(Debug, Clone)]
pub struct PreparedScalar {
    /// Reduced residue per limb `0..=level`.
    pub r: Vec<u64>,
    /// Shoup precomputation of `r` per limb.
    pub r_shoup: Vec<u64>,
    /// Level the residues were prepared for.
    pub level: usize,
    /// Encoding scale of the scalar.
    pub pt_scale: f64,
}

impl Evaluator {
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        Self { ctx }
    }

    #[inline]
    pub fn ctx(&self) -> &Arc<CkksContext> {
        &self.ctx
    }

    // ---------------------------------------------------------------
    // Encryption / decryption
    // ---------------------------------------------------------------

    /// Public-key encryption: `c = v·pk + (m + e₀, e₁)`.
    pub fn encrypt(&self, pt: &Plaintext, pk: &PublicKey, sampler: &mut Sampler) -> Ciphertext {
        let indices: Vec<usize> = (0..=pt.level).collect();
        let v_coeffs: Vec<i64> = sampler
            .zo_ternary(self.ctx.n())
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let mut v =
            RnsPoly::from_signed(Arc::clone(self.ctx.poly_ctx()), indices.clone(), &v_coeffs);
        v.ntt_forward();

        let mut c0 = pk.b.restrict(&indices);
        c0.mul_assign(&v);
        let mut c1 = pk.a.restrict(&indices);
        c1.mul_assign(&v);

        let e0 = self.error_ntt(&indices, sampler);
        let e1 = self.error_ntt(&indices, sampler);
        c0.add_assign(&e0);
        c0.add_assign(&pt.poly);
        c1.add_assign(&e1);

        Ciphertext {
            c0,
            c1,
            scale: pt.scale,
            level: pt.level,
            slots: pt.slots,
        }
    }

    /// Convenience: encode + encrypt a real vector at scale Δ, level L.
    pub fn encrypt_real(
        &self,
        values: &[f64],
        pk: &PublicKey,
        sampler: &mut Sampler,
    ) -> Ciphertext {
        let pt = encoding::encode_real(
            &self.ctx,
            values,
            self.ctx.params().scale(),
            self.ctx.max_level(),
        );
        self.encrypt(&pt, pk, sampler)
    }

    /// Decryption: `m = c₀ + c₁·s (mod Q_ℓ)`.
    pub fn decrypt(&self, ct: &Ciphertext, sk: &SecretKey) -> Plaintext {
        ct.validate();
        let s = sk.s_at_level(ct.level);
        let mut m = ct.c1.clone();
        m.mul_assign(&s);
        m.add_assign(&ct.c0);
        Plaintext {
            poly: m,
            scale: ct.scale,
            level: ct.level,
            slots: ct.slots,
        }
    }

    /// Decrypt + decode to complex slots.
    pub fn decrypt_to_complex(&self, ct: &Ciphertext, sk: &SecretKey) -> Vec<Complex> {
        let pt = self.decrypt(ct, sk);
        encoding::decode(&self.ctx, &pt)
    }

    /// Decrypt + decode to real slots.
    pub fn decrypt_to_real(&self, ct: &Ciphertext, sk: &SecretKey) -> Vec<f64> {
        let pt = self.decrypt(ct, sk);
        encoding::decode_real(&self.ctx, &pt)
    }

    fn error_ntt(&self, indices: &[usize], sampler: &mut Sampler) -> RnsPoly {
        let e: Vec<i64> = sampler
            .cbd_error(self.ctx.n())
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let mut p = RnsPoly::from_signed(Arc::clone(self.ctx.poly_ctx()), indices.to_vec(), &e);
        p.ntt_forward();
        p
    }

    // ---------------------------------------------------------------
    // Linear operations
    // ---------------------------------------------------------------

    fn assert_addable(&self, a: &Ciphertext, b: &Ciphertext) {
        assert_eq!(a.level, b.level, "level mismatch (mod-switch first)");
        assert!(
            (a.scale / b.scale - 1.0).abs() < SCALE_RTOL,
            "scale mismatch: {} vs {}",
            a.scale,
            b.scale
        );
    }

    /// `Add(c₁, c₂)`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.assert_addable(a, b);
        let mut out = a.clone();
        out.c0.add_assign(&b.c0);
        out.c1.add_assign(&b.c1);
        out
    }

    /// `a - b`.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.assert_addable(a, b);
        let mut out = a.clone();
        out.c0.sub_assign(&b.c0);
        out.c1.sub_assign(&b.c1);
        out
    }

    /// `-a`.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let mut out = a.clone();
        out.c0.neg_assign();
        out.c1.neg_assign();
        out
    }

    /// Ciphertext + plaintext.
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        assert_eq!(a.level, pt.level, "plaintext level mismatch");
        assert!(
            (a.scale / pt.scale - 1.0).abs() < SCALE_RTOL,
            "plaintext scale mismatch"
        );
        let mut out = a.clone();
        out.c0.add_assign(&pt.poly);
        out
    }

    /// Ciphertext − plaintext.
    pub fn sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        assert_eq!(a.level, pt.level);
        assert!((a.scale / pt.scale - 1.0).abs() < SCALE_RTOL);
        let mut out = a.clone();
        out.c0.sub_assign(&pt.poly);
        out
    }

    /// Ciphertext × plaintext (no relinearization needed). The result
    /// scale is the product of the scales; rescale afterwards.
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        assert_eq!(a.level, pt.level, "plaintext level mismatch");
        let mut out = a.clone();
        out.c0.mul_assign(&pt.poly);
        out.c1.mul_assign(&pt.poly);
        out.scale = a.scale * pt.scale;
        out
    }

    /// Multiplies by a scalar constant, consuming one level: encodes the
    /// constant at scale Δ, multiplies, rescales.
    pub fn mul_const_rescale(&self, a: &Ciphertext, value: f64) -> Ciphertext {
        let pt = encoding::encode_constant(&self.ctx, value, self.ctx.params().scale(), a.level);
        let prod = self.mul_plain(a, &pt);
        self.rescale(&prod)
    }

    /// In-place ciphertext addition (hot path for homomorphic weighted
    /// sums — avoids the clone in [`Evaluator::add`]).
    pub fn add_assign_ct(&self, acc: &mut Ciphertext, b: &Ciphertext) {
        self.assert_addable(acc, b);
        acc.c0.add_assign(&b.c0);
        acc.c1.add_assign(&b.c1);
    }

    // ---------------------------------------------------------------
    // Fast scalar (constant) operations
    // ---------------------------------------------------------------
    //
    // A constant filling every slot encodes to the constant polynomial
    // `⌊c·Δ⌉`, whose NTT is the constant vector — so scalar plaintext
    // operations need no embedding and no NTT. These are the workhorses
    // of the CNN engine: every convolution/dense tap is one `mul_scalar`.

    /// Per-limb residues of `⌊c·scale⌉`.
    fn scalar_residues(&self, c: f64, scale: f64, level: usize) -> Vec<u64> {
        let v = c * scale;
        assert!(
            v.abs() < 9.2e18,
            "scalar {c} at scale {scale} overflows the fast path"
        );
        let vi = v.round() as i64;
        self.ctx.chain_moduli()[..=level]
            .iter()
            .map(|m| m.from_i64(vi))
            .collect()
    }

    /// Multiplies by the constant `c` encoded at `pt_scale` (result scale
    /// is the product; rescale afterwards). Exact-scale bookkeeping.
    pub fn mul_scalar(&self, ct: &Ciphertext, c: f64, pt_scale: f64) -> Ciphertext {
        let mut out = ct.clone();
        self.mul_scalar_assign(&mut out, c, pt_scale);
        out
    }

    /// In-place variant of [`Evaluator::mul_scalar`].
    pub fn mul_scalar_assign(&self, ct: &mut Ciphertext, c: f64, pt_scale: f64) {
        let residues = self.scalar_residues(c, pt_scale, ct.level);
        ct.c0.mul_scalar_per_limb(&residues);
        ct.c1.mul_scalar_per_limb(&residues);
        ct.scale *= pt_scale;
    }

    /// Fused multiply-accumulate with a scalar: `acc += c·x`, where `c` is
    /// encoded at `pt_scale` and `acc.scale` must equal `x.scale·pt_scale`.
    pub fn mul_scalar_acc(&self, acc: &mut Ciphertext, x: &Ciphertext, c: f64, pt_scale: f64) {
        let prep = self.prepare_scalar(c, pt_scale, x.level);
        self.mul_residues_acc(acc, x, &prep);
    }

    /// Encodes the scalar `c` at `pt_scale` for use at `level`: reduced
    /// per-limb residues plus their Shoup precomputations. Preparing once
    /// and replaying via [`Evaluator::mul_residues_acc`] hoists the
    /// encode + `shoup` cost (one 128-bit division per limb) out of MAC
    /// loops where the same weight multiplies many ciphertexts — e.g. a
    /// conv kernel tap reused at every output position.
    pub fn prepare_scalar(&self, c: f64, pt_scale: f64, level: usize) -> PreparedScalar {
        let residues = self.scalar_residues(c, pt_scale, level);
        let moduli = self.ctx.chain_moduli();
        let mut r = Vec::with_capacity(level + 1);
        let mut r_shoup = Vec::with_capacity(level + 1);
        for (li, &res) in residues.iter().enumerate() {
            let m = moduli[li];
            let red = m.reduce(res);
            r.push(red);
            r_shoup.push(m.shoup(red));
        }
        PreparedScalar {
            r,
            r_shoup,
            level,
            pt_scale,
        }
    }

    /// `acc += w·x` where `w` was encoded by [`Evaluator::prepare_scalar`]
    /// at `x.level`. Bit-identical to [`Evaluator::mul_scalar_acc`] with
    /// the same scalar — only the per-call encode work is skipped.
    pub fn mul_residues_acc(&self, acc: &mut Ciphertext, x: &Ciphertext, w: &PreparedScalar) {
        he_trace::record_scalar_mac(1);
        he_trace::record_modmul_limbs(2 * (x.level as u64 + 1));
        assert_eq!(acc.level, x.level, "level mismatch");
        assert_eq!(w.level, x.level, "prepared scalar level mismatch");
        assert!(
            (acc.scale / (x.scale * w.pt_scale) - 1.0).abs() < SCALE_RTOL,
            "accumulator scale mismatch"
        );
        let moduli = self.ctx.chain_moduli();
        let backend = kernel::active_backend();
        for li in 0..=x.level {
            let m = moduli[li];
            let r = w.r[li];
            let rs = w.r_shoup[li];
            for (poly_acc, poly_x) in [
                (acc.c0.limb_mut(li), x.c0.limb(li)),
                (acc.c1.limb_mut(li), x.c1.limb(li)),
            ] {
                kernel::fused_mac_shoup_with(backend, &m, poly_acc, poly_x, r, rs);
            }
        }
    }

    /// Adds the constant `c` (encoded exactly at the ciphertext's own
    /// scale) to every slot.
    pub fn add_scalar(&self, ct: &Ciphertext, c: f64) -> Ciphertext {
        let mut out = ct.clone();
        self.add_scalar_assign(&mut out, c);
        out
    }

    /// In-place variant of [`Evaluator::add_scalar`].
    pub fn add_scalar_assign(&self, ct: &mut Ciphertext, c: f64) {
        let residues = self.scalar_residues(c, ct.scale, ct.level);
        let moduli = self.ctx.chain_moduli();
        for li in 0..=ct.level {
            let m = moduli[li];
            let r = residues[li];
            for v in ct.c0.limb_mut(li).iter_mut() {
                *v = m.add(*v, r);
            }
        }
    }

    /// An all-zero ciphertext at the given scale/level/slots — the seed of
    /// homomorphic accumulations. (Decrypts to zero exactly; it carries no
    /// randomness, which is fine for an accumulator that immediately
    /// absorbs real ciphertexts.)
    pub fn zero_ciphertext(&self, scale: f64, level: usize, slots: usize) -> Ciphertext {
        use ckks_math::poly::{Form, RnsPoly};
        let indices: Vec<usize> = (0..=level).collect();
        Ciphertext {
            c0: RnsPoly::zero(Arc::clone(self.ctx.poly_ctx()), indices.clone(), Form::Ntt),
            c1: RnsPoly::zero(Arc::clone(self.ctx.poly_ctx()), indices, Form::Ntt),
            scale,
            level,
            slots,
        }
    }

    // ---------------------------------------------------------------
    // Multiplication + relinearization
    // ---------------------------------------------------------------

    /// Full `Mult(c₁, c₂, ek)`: tensor product then relinearization.
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        let (d0, d1, d2) = self.tensor(a, b);
        self.relinearize(d0, d1, d2, a, b, rk)
    }

    /// `Mult` followed by `Resc` — the usual composition.
    pub fn multiply_rescale(&self, a: &Ciphertext, b: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        let prod = self.multiply(a, b, rk);
        self.rescale(&prod)
    }

    /// Homomorphic square (saves one of the three tensor products).
    pub fn square(&self, a: &Ciphertext, rk: &RelinKey) -> Ciphertext {
        he_trace::record_ct_mult(1);
        let mut d0 = a.c0.clone();
        d0.mul_assign(&a.c0);
        let mut d1 = a.c0.clone();
        d1.mul_assign(&a.c1);
        let d1c = d1.clone();
        d1.add_assign(&d1c); // 2·c0·c1
        let mut d2 = a.c1.clone();
        d2.mul_assign(&a.c1);
        self.relinearize(d0, d1, d2, a, a, rk)
    }

    /// Degree-2 tensor product `(d₀, d₁, d₂)`; exposed for tests and the
    /// bignum cross-validation.
    pub fn tensor(&self, a: &Ciphertext, b: &Ciphertext) -> (RnsPoly, RnsPoly, RnsPoly) {
        he_trace::record_ct_mult(1);
        assert_eq!(a.level, b.level, "level mismatch (mod-switch first)");
        let mut d0 = a.c0.clone();
        d0.mul_assign(&b.c0);
        let mut d1 = a.c0.clone();
        d1.mul_assign(&b.c1);
        let mut t = a.c1.clone();
        t.mul_assign(&b.c0);
        d1.add_assign(&t);
        let mut d2 = a.c1.clone();
        d2.mul_assign(&b.c1);
        (d0, d1, d2)
    }

    fn relinearize(
        &self,
        d0: RnsPoly,
        d1: RnsPoly,
        d2: RnsPoly,
        a: &Ciphertext,
        b: &Ciphertext,
        rk: &RelinKey,
    ) -> Ciphertext {
        he_trace::record_relin(1);
        let _span = he_trace::span("relin", he_trace::cats::HE);
        let (u0, u1) = self.key_switch(&d2, &rk.0);
        let mut c0 = d0;
        c0.add_assign(&u0);
        let mut c1 = d1;
        c1.add_assign(&u1);
        Ciphertext {
            c0,
            c1,
            scale: a.scale * b.scale,
            level: a.level,
            slots: a.slots.max(b.slots),
        }
    }

    // ---------------------------------------------------------------
    // Key switching
    // ---------------------------------------------------------------

    /// Switches the poly `d` (NTT form, limbs `0..=ℓ`), interpreted as a
    /// coefficient multiplying the key-switching key's source key, into a
    /// pair `(u₀, u₁)` with `u₀ + u₁·s ≈ d·w`.
    pub fn key_switch(&self, d: &RnsPoly, ksk: &KeySwitchKey) -> (RnsPoly, RnsPoly) {
        he_trace::record_keyswitch(1);
        let _span = he_trace::span("keyswitch", he_trace::cats::HE);
        let level = d.num_limbs() - 1;
        let chain_len = self.ctx.poly_ctx().chain_len();
        assert!(level < chain_len);

        let mut d_coeff = d.clone();
        d_coeff.ntt_inverse();

        let ext_indices: Vec<usize> = match ksk.variant {
            KsVariant::Ghs => (0..=level)
                .chain(self.ctx.poly_ctx().special_indices())
                .collect(),
            KsVariant::Bv => (0..=level).collect(),
        };

        let mut acc0 = RnsPoly::zero(
            Arc::clone(self.ctx.poly_ctx()),
            ext_indices.clone(),
            Form::Ntt,
        );
        let mut acc1 = acc0.clone();

        for j in 0..=level {
            // Lift digit j — the residue poly [d]_{q_j} — into every limb.
            let r = d_coeff.limb(j);
            let mut t = RnsPoly::zero(
                Arc::clone(self.ctx.poly_ctx()),
                ext_indices.clone(),
                Form::Coeff,
            );
            for (li, &idx) in ext_indices.iter().enumerate() {
                let m = self.ctx.poly_ctx().moduli()[idx];
                let dst = t.limb_mut(li);
                if idx == j {
                    dst.copy_from_slice(r);
                } else {
                    kernel::barrett_reduce_slice(&m, dst, r);
                }
            }
            t.ntt_forward();
            let k0 = ksk.digits[j].0.restrict(&ext_indices);
            let k1 = ksk.digits[j].1.restrict(&ext_indices);
            acc0.mul_acc(&t, &k0);
            acc1.mul_acc(&t, &k1);
        }

        match ksk.variant {
            KsVariant::Ghs => (self.mod_down(acc0), self.mod_down(acc1)),
            KsVariant::Bv => (acc0, acc1),
        }
    }

    /// Divides by the special modulus `P` and drops its limb:
    /// `c ← (c − [c]_P) · P⁻¹ mod q_i`.
    fn mod_down(&self, mut acc: RnsPoly) -> RnsPoly {
        acc.ntt_inverse();
        let sp_li = acc.num_limbs() - 1;
        debug_assert_eq!(
            acc.limb_indices()[sp_li],
            self.ctx.poly_ctx().chain_len(),
            "expected exactly one special limb at the end"
        );
        let sp_mod = *acc.limb_modulus(sp_li);
        let p_val = sp_mod.value();
        let sp_data = acc.limb(sp_li).to_vec();
        let backend = kernel::active_backend();
        for li in 0..sp_li {
            let m = *acc.limb_modulus(li);
            let p_inv = self.ctx.p_inv_mod_qi()[li];
            let p_inv_shoup = m.shoup(p_inv);
            let dst = acc.limb_mut(li);
            // centered lift of the P-residue into q_i, fused with the
            // subtract-and-multiply by P⁻¹
            kernel::lift_sub_mul_shoup_with(backend, &m, dst, &sp_data, p_val, p_inv, p_inv_shoup);
        }
        acc.drop_last_limb();
        acc.ntt_forward();
        acc
    }

    // ---------------------------------------------------------------
    // Rescaling and level management
    // ---------------------------------------------------------------

    /// `Resc(c)`: divides by the top prime `q_ℓ`, dropping one level and
    /// dividing the scale by `q_ℓ`. Panics at level 0; use
    /// [`Evaluator::try_rescale`] for a typed error.
    pub fn rescale(&self, ct: &Ciphertext) -> Ciphertext {
        self.try_rescale(ct).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Evaluator::rescale`].
    pub fn try_rescale(&self, ct: &Ciphertext) -> Result<Ciphertext, HeError> {
        if ct.level < 1 {
            return Err(HeError::LevelExhausted {
                op: "rescale",
                level: ct.level,
                needed: 1,
            });
        }
        he_trace::record_rescale(1);
        let _span = he_trace::span("rescale", he_trace::cats::HE);
        let k = ct.level;
        let qk = self.ctx.chain_moduli()[k];
        let qk_val = qk.value();
        let inv = self.ctx.rescale_inv(k);
        let backend = kernel::active_backend();

        let rescale_poly = |poly: &RnsPoly| -> RnsPoly {
            let mut p = poly.clone();
            p.ntt_inverse();
            let last = p.limb(k).to_vec();
            for li in 0..k {
                let m = *p.limb_modulus(li);
                let qinv = inv[li];
                let qinv_shoup = m.shoup(qinv);
                let dst = p.limb_mut(li);
                // centered lift of the q_k residue, fused with the
                // subtract-and-multiply by q_k⁻¹
                kernel::lift_sub_mul_shoup_with(backend, &m, dst, &last, qk_val, qinv, qinv_shoup);
            }
            p.drop_last_limb();
            p.ntt_forward();
            p
        };

        Ok(Ciphertext {
            c0: rescale_poly(&ct.c0),
            c1: rescale_poly(&ct.c1),
            scale: ct.scale / qk_val as f64,
            level: ct.level - 1,
            slots: ct.slots,
        })
    }

    /// Drops limbs down to `level` without changing the scale (modulus
    /// switching used for level alignment before additions). Panics on an
    /// upward switch; use [`Evaluator::try_mod_switch_to_level`] for a
    /// typed error.
    pub fn mod_switch_to_level(&self, ct: &Ciphertext, level: usize) -> Ciphertext {
        self.try_mod_switch_to_level(ct, level)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Evaluator::mod_switch_to_level`].
    pub fn try_mod_switch_to_level(
        &self,
        ct: &Ciphertext,
        level: usize,
    ) -> Result<Ciphertext, HeError> {
        if level > ct.level {
            return Err(HeError::ModSwitchUpward {
                from: ct.level,
                to: level,
            });
        }
        if level == ct.level {
            return Ok(ct.clone());
        }
        let mut out = ct.clone();
        out.c0.truncate_limbs(level + 1);
        out.c1.truncate_limbs(level + 1);
        out.level = level;
        Ok(out)
    }

    /// Aligns two ciphertexts to the lower of their levels.
    pub fn align_levels(&self, a: &Ciphertext, b: &Ciphertext) -> (Ciphertext, Ciphertext) {
        let lv = a.level.min(b.level);
        (
            self.mod_switch_to_level(a, lv),
            self.mod_switch_to_level(b, lv),
        )
    }

    // ---------------------------------------------------------------
    // Rotations and conjugation
    // ---------------------------------------------------------------

    /// `Rot(c, r)`: rotates slots left by `r` (negative = right) using the
    /// appropriate Galois key. Panics when the key is absent; use
    /// [`Evaluator::try_rotate`] for a typed error naming the keys that
    /// do exist.
    pub fn rotate(&self, ct: &Ciphertext, steps: i64, gk: &GaloisKeys) -> Ciphertext {
        self.try_rotate(ct, steps, gk)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Evaluator::rotate`].
    pub fn try_rotate(
        &self,
        ct: &Ciphertext,
        steps: i64,
        gk: &GaloisKeys,
    ) -> Result<Ciphertext, HeError> {
        if steps.rem_euclid(ct.slots as i64) == 0 {
            return Ok(ct.clone());
        }
        let g = self.ctx.galois_element_for_rotation(steps);
        self.try_apply_galois(ct, g, gk)
    }

    /// Complex conjugation of every slot.
    pub fn conjugate(&self, ct: &Ciphertext, gk: &GaloisKeys) -> Ciphertext {
        self.try_conjugate(ct, gk).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Evaluator::conjugate`].
    pub fn try_conjugate(&self, ct: &Ciphertext, gk: &GaloisKeys) -> Result<Ciphertext, HeError> {
        let g = self.ctx.galois_element_conjugate();
        self.try_apply_galois(ct, g, gk)
    }

    fn try_apply_galois(
        &self,
        ct: &Ciphertext,
        g: usize,
        gk: &GaloisKeys,
    ) -> Result<Ciphertext, HeError> {
        let ksk = gk.get(g).ok_or_else(|| {
            let mut available: Vec<usize> = gk.elements().collect();
            available.sort_unstable();
            HeError::MissingGaloisKey { elem: g, available }
        })?;
        he_trace::record_rotation(1);
        let _span = he_trace::span("galois", he_trace::cats::HE);
        // σ_g over coefficient domain.
        let mut c0 = ct.c0.clone();
        c0.ntt_inverse();
        let mut c0g = c0.automorphism(g);
        c0g.ntt_forward();
        let mut c1 = ct.c1.clone();
        c1.ntt_inverse();
        let mut c1g = c1.automorphism(g);
        c1g.ntt_forward();

        let (u0, u1) = self.key_switch(&c1g, ksk);
        c0g.add_assign(&u0);
        Ok(Ciphertext {
            c0: c0g,
            c1: u1,
            scale: ct.scale,
            level: ct.level,
            slots: ct.slots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;

    struct Fixture {
        ctx: Arc<CkksContext>,
        sk: SecretKey,
        pk: PublicKey,
        rk: RelinKey,
        ev: Evaluator,
        sampler: Sampler,
    }

    fn fixture(depth: usize, seed: u64) -> Fixture {
        let ctx = CkksParams::tiny(depth).build();
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), seed);
        let sk = kg.gen_secret_key();
        let pk = kg.gen_public_key(&sk);
        let rk = kg.gen_relin_key(&sk);
        let ev = Evaluator::new(Arc::clone(&ctx));
        Fixture {
            ctx,
            sk,
            pk,
            rk,
            ev,
            sampler: Sampler::from_seed(seed + 1000),
        }
    }

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut f = fixture(2, 11);
        let vals: Vec<f64> = (0..f.ctx.slots())
            .map(|i| (i as f64 * 0.01).sin())
            .collect();
        let ct = f.ev.encrypt_real(&vals, &f.pk, &mut f.sampler);
        let back = f.ev.decrypt_to_real(&ct, &f.sk);
        assert!(
            max_err(&back, &vals) < 5e-4,
            "err {}",
            max_err(&back, &vals)
        );
    }

    #[test]
    fn homomorphic_addition() {
        let mut f = fixture(1, 12);
        let a: Vec<f64> = (0..256).map(|i| i as f64 * 0.001).collect();
        let b: Vec<f64> = (0..256).map(|i| 0.5 - i as f64 * 0.002).collect();
        let ca = f.ev.encrypt_real(&a, &f.pk, &mut f.sampler);
        let cb = f.ev.encrypt_real(&b, &f.pk, &mut f.sampler);
        let sum = f.ev.add(&ca, &cb);
        let back = f.ev.decrypt_to_real(&sum, &f.sk);
        let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert!(max_err(&back[..256], &expect) < 5e-4);
        // subtraction recovers a
        let diff = f.ev.sub(&sum, &cb);
        let back = f.ev.decrypt_to_real(&diff, &f.sk);
        assert!(max_err(&back[..256], &a) < 5e-4);
    }

    #[test]
    fn homomorphic_multiplication_with_rescale() {
        let mut f = fixture(2, 13);
        let a: Vec<f64> = (0..128).map(|i| (i as f64 * 0.05).cos()).collect();
        let b: Vec<f64> = (0..128).map(|i| (i as f64 * 0.03).sin()).collect();
        let ca = f.ev.encrypt_real(&a, &f.pk, &mut f.sampler);
        let cb = f.ev.encrypt_real(&b, &f.pk, &mut f.sampler);
        let prod = f.ev.multiply_rescale(&ca, &cb, &f.rk);
        assert_eq!(prod.level, f.ctx.max_level() - 1);
        let back = f.ev.decrypt_to_real(&prod, &f.sk);
        let expect: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        let err = max_err(&back[..128], &expect);
        assert!(err < 1e-3, "mult error {err}");
    }

    #[test]
    fn square_matches_multiply() {
        let mut f = fixture(2, 14);
        let a: Vec<f64> = (0..64).map(|i| 0.02 * i as f64 - 0.5).collect();
        let ca = f.ev.encrypt_real(&a, &f.pk, &mut f.sampler);
        let sq = f.ev.rescale(&f.ev.square(&ca, &f.rk));
        let mu = f.ev.multiply_rescale(&ca, &ca, &f.rk);
        let b1 = f.ev.decrypt_to_real(&sq, &f.sk);
        let b2 = f.ev.decrypt_to_real(&mu, &f.sk);
        assert!(max_err(&b1[..64], &b2[..64]) < 1e-4);
        let expect: Vec<f64> = a.iter().map(|x| x * x).collect();
        assert!(max_err(&b1[..64], &expect) < 1e-3);
    }

    #[test]
    fn multiplication_depth_chain() {
        // (((x * x) * x) * x) across 3 levels
        let mut f = fixture(3, 15);
        let a: Vec<f64> = (0..32).map(|i| 0.3 + 0.01 * i as f64).collect();
        let ca = f.ev.encrypt_real(&a, &f.pk, &mut f.sampler);
        let x2 = f.ev.multiply_rescale(&ca, &ca, &f.rk);
        let ca_l = f.ev.mod_switch_to_level(&ca, x2.level);
        let x3 = f.ev.multiply_rescale(&x2, &ca_l, &f.rk);
        let ca_l2 = f.ev.mod_switch_to_level(&ca, x3.level);
        let x4 = f.ev.multiply_rescale(&x3, &ca_l2, &f.rk);
        assert_eq!(x4.level, 0);
        let back = f.ev.decrypt_to_real(&x4, &f.sk);
        let expect: Vec<f64> = a.iter().map(|x| x.powi(4)).collect();
        let err = max_err(&back[..32], &expect);
        assert!(err < 5e-2, "depth-3 error {err}");
    }

    #[test]
    fn plaintext_operations() {
        let mut f = fixture(2, 16);
        let a: Vec<f64> = (0..64).map(|i| 0.1 * i as f64).collect();
        let w: Vec<f64> = (0..64).map(|i| ((i % 7) as f64 - 3.0) * 0.1).collect();
        let ca = f.ev.encrypt_real(&a, &f.pk, &mut f.sampler);
        // add_plain
        let pw = encoding::encode_real(&f.ctx, &w, ca.scale, ca.level);
        let sum = f.ev.add_plain(&ca, &pw);
        let back = f.ev.decrypt_to_real(&sum, &f.sk);
        let expect: Vec<f64> = a.iter().zip(&w).map(|(x, y)| x + y).collect();
        assert!(max_err(&back[..64], &expect) < 1e-4);
        // mul_plain + rescale
        let pw2 = encoding::encode_real(&f.ctx, &w, f.ctx.params().scale(), ca.level);
        let prod = f.ev.rescale(&f.ev.mul_plain(&ca, &pw2));
        let back = f.ev.decrypt_to_real(&prod, &f.sk);
        let expect: Vec<f64> = a.iter().zip(&w).map(|(x, y)| x * y).collect();
        assert!(max_err(&back[..64], &expect) < 1e-3);
    }

    #[test]
    fn mul_const_rescale_works() {
        let mut f = fixture(1, 17);
        let a: Vec<f64> = (0..16).map(|i| i as f64 * 0.1).collect();
        let ca = f.ev.encrypt_real(&a, &f.pk, &mut f.sampler);
        let out = f.ev.mul_const_rescale(&ca, -2.5);
        let back = f.ev.decrypt_to_real(&out, &f.sk);
        let expect: Vec<f64> = a.iter().map(|x| x * -2.5).collect();
        assert!(max_err(&back[..16], &expect) < 1e-3);
    }

    #[test]
    fn rotation() {
        let mut f = fixture(1, 18);
        let mut kg = KeyGenerator::new(Arc::clone(&f.ctx), 18);
        let _ = kg.gen_secret_key(); // re-derive same sk deterministically
        let slots = f.ctx.slots();
        let vals: Vec<f64> = (0..slots).map(|i| i as f64 / slots as f64).collect();
        let gk = {
            // need keys for the SAME secret as the fixture — regenerate with
            // a fresh generator bound to sk
            let mut kg2 = KeyGenerator::new(Arc::clone(&f.ctx), 9999);
            let _ = kg2.sampler(); // silence unused
            kg2.gen_galois_keys(&f.sk, &[1, 3, -2], true)
        };
        let ct = f.ev.encrypt_real(&vals, &f.pk, &mut f.sampler);
        for &r in &[1i64, 3, -2] {
            let rot = f.ev.rotate(&ct, r, &gk);
            let back = f.ev.decrypt_to_real(&rot, &f.sk);
            let expect: Vec<f64> = (0..slots)
                .map(|i| vals[(i as i64 + r).rem_euclid(slots as i64) as usize])
                .collect();
            let err = max_err(&back, &expect);
            assert!(err < 1e-3, "rotation {r} error {err}");
        }
        // rotation by 0 is identity
        let rot0 = f.ev.rotate(&ct, 0, &gk);
        let back = f.ev.decrypt_to_real(&rot0, &f.sk);
        assert!(max_err(&back, &vals) < 5e-4);
    }

    #[test]
    fn conjugation() {
        let mut f = fixture(1, 19);
        let gk = {
            let mut kg2 = KeyGenerator::new(Arc::clone(&f.ctx), 777);
            kg2.gen_galois_keys(&f.sk, &[], true)
        };
        let vals: Vec<Complex> = (0..64)
            .map(|i| Complex::new(0.1 * i as f64, -0.05 * i as f64))
            .collect();
        let pt = encoding::encode(&f.ctx, &vals, f.ctx.params().scale(), f.ctx.max_level());
        let ct = f.ev.encrypt(&pt, &f.pk, &mut f.sampler);
        let conj = f.ev.conjugate(&ct, &gk);
        let back = f.ev.decrypt_to_complex(&conj, &f.sk);
        for (b, v) in back.iter().zip(&vals) {
            assert!((*b - v.conj()).abs() < 1e-3, "{b:?} vs {:?}", v.conj());
        }
    }

    #[test]
    fn bv_relinearization_works_but_noisier() {
        let a: Vec<f64> = (0..32).map(|i| 0.5 + 0.01 * i as f64).collect();
        let expect: Vec<f64> = a.iter().map(|x| x * x).collect();
        // BV noise scales with q_j·N·σ and is dominated by the key
        // draw, so average over independent (key, encryption) streams
        // rather than pinning a single draw.
        const STREAMS: u64 = 12;
        let (mut sum_ghs, mut sum_bv) = (0.0f64, 0.0f64);
        for stream in 0..STREAMS {
            let f = fixture(2, 20 + stream);
            let mut kg = KeyGenerator::new(Arc::clone(&f.ctx), 555 + stream);
            let rk_bv = kg.gen_relin_key_variant(&f.sk, KsVariant::Bv);
            let mut s = Sampler::from_seed_stream(1020, stream);
            let ca = f.ev.encrypt_real(&a, &f.pk, &mut s);
            let ghs = f.ev.multiply_rescale(&ca, &ca, &f.rk);
            let bv = f.ev.multiply_rescale(&ca, &ca, &rk_bv);
            sum_ghs += max_err(&f.ev.decrypt_to_real(&ghs, &f.sk)[..32], &expect);
            sum_bv += max_err(&f.ev.decrypt_to_real(&bv, &f.sk)[..32], &expect);
        }
        let avg_ghs = sum_ghs / STREAMS as f64;
        let avg_bv = sum_bv / STREAMS as f64;
        // both correct to coarse precision, GHS strictly tighter
        assert!(avg_ghs < 1e-3, "GHS error {avg_ghs}");
        assert!(avg_bv < 0.3, "BV error {avg_bv}");
        assert!(avg_ghs < avg_bv, "GHS {avg_ghs} should beat BV {avg_bv}");
    }

    #[test]
    fn mod_switch_alignment() {
        let mut f = fixture(2, 21);
        let a: Vec<f64> = (0..16).map(|i| i as f64 * 0.01).collect();
        let ca = f.ev.encrypt_real(&a, &f.pk, &mut f.sampler);
        let cb = f.ev.encrypt_real(&a, &f.pk, &mut f.sampler);
        let prod = f.ev.multiply_rescale(&ca, &cb, &f.rk); // level L-1
        let (x, y) = f.ev.align_levels(&prod, &ca);
        assert_eq!(x.level, y.level);
        // decryption of the mod-switched fresh ct is unchanged
        let back = f.ev.decrypt_to_real(&y, &f.sk);
        assert!(max_err(&back[..16], &a) < 1e-4);
    }

    #[test]
    fn scalar_fast_paths_match_slow_paths() {
        let mut f = fixture(2, 30);
        let vals: Vec<f64> = (0..32).map(|i| 0.05 * i as f64 - 0.8).collect();
        let ct = f.ev.encrypt_real(&vals, &f.pk, &mut f.sampler);
        let scale = f.ctx.params().scale();

        // mul_scalar ≈ mul_plain with a constant vector
        let fast = f.ev.rescale(&f.ev.mul_scalar(&ct, -1.75, scale));
        let pt = encoding::encode_constant(&f.ctx, -1.75, scale, ct.level);
        let slow = f.ev.rescale(&f.ev.mul_plain(&ct, &pt));
        let bf = f.ev.decrypt_to_real(&fast, &f.sk);
        let bs = f.ev.decrypt_to_real(&slow, &f.sk);
        assert!(max_err(&bf[..32], &bs[..32]) < 1e-4);

        // add_scalar
        let added = f.ev.add_scalar(&ct, 0.33);
        let back = f.ev.decrypt_to_real(&added, &f.sk);
        let expect: Vec<f64> = vals.iter().map(|v| v + 0.33).collect();
        assert!(max_err(&back[..32], &expect) < 5e-4);
    }

    #[test]
    fn scalar_accumulate_weighted_sum() {
        // the conv inner loop: acc = Σ wᵢ·ctᵢ at scale s·Δ, then rescale
        let mut f = fixture(2, 31);
        let scale = f.ctx.params().scale();
        let xs = [vec![0.5f64; 8], vec![-0.25f64; 8], vec![0.125f64; 8]];
        let ws = [1.5f64, -2.0, 4.0];
        let cts: Vec<_> = xs
            .iter()
            .map(|v| f.ev.encrypt_real(v, &f.pk, &mut f.sampler))
            .collect();
        let mut acc =
            f.ev.zero_ciphertext(cts[0].scale * scale, cts[0].level, cts[0].slots);
        for (ct, &w) in cts.iter().zip(&ws) {
            f.ev.mul_scalar_acc(&mut acc, ct, w, scale);
        }
        f.ev.add_scalar_assign(&mut acc, 0.1);
        let out = f.ev.rescale(&acc);
        let back = f.ev.decrypt_to_real(&out, &f.sk);
        let expect = 0.5 * 1.5 + 0.25 * 2.0 + 0.125 * 4.0 + 0.1;
        assert!((back[0] - expect).abs() < 1e-3, "{} vs {expect}", back[0]);
    }

    #[test]
    fn exact_scale_degree3_polynomial() {
        // σ(x) = c0 + c1·x + c2·x² + c3·x³ with the exact-scale recipe the
        // CNN engine uses; verifies scales line up with strict adds.
        let mut f = fixture(3, 32);
        let c = [0.25f64, -0.5, 0.75, 0.125];
        let vals: Vec<f64> = (0..16).map(|i| -1.2 + 0.15 * i as f64).collect();
        let x = f.ev.encrypt_real(&vals, &f.pk, &mut f.sampler);
        let s = x.scale;
        let m = x.level;
        let q = |lvl: usize| f.ctx.chain_moduli()[lvl].value() as f64;

        let x2r = f.ev.rescale(&f.ev.square(&x, &f.rk)); // s²/q_m @ m-1
        let y3 = {
            let t = f.ev.rescale(&f.ev.mul_scalar(&x, c[3], q(m))); // s @ m-1
            f.ev.rescale(&f.ev.multiply(&t, &x2r, &f.rk)) // s³/(q_m q_{m-1}) @ m-2
        };
        let y2 = f.ev.rescale(&f.ev.mul_scalar(&x2r, c[2], s)); // s³/(q_m q_{m-1})... wait: (s²/q_m)·s/q_{m-1}
        let y1 = {
            let t = f.ev.rescale(&f.ev.mul_scalar(&x, c[1], s)); // s²/q_m @ m-1
            f.ev.rescale(&f.ev.mul_scalar(&t, 1.0, s)) // s³/(q_m q_{m-1}) @ m-2
        };
        let mut acc = f.ev.add(&y3, &y2);
        acc = f.ev.add(&acc, &y1);
        f.ev.add_scalar_assign(&mut acc, c[0]);
        let back = f.ev.decrypt_to_real(&acc, &f.sk);
        for (i, &v) in vals.iter().enumerate() {
            let want = c[0] + c[1] * v + c[2] * v * v + c[3] * v * v * v;
            assert!(
                (back[i] - want).abs() < 5e-3,
                "slot {i}: {} vs {want}",
                back[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "scale mismatch")]
    fn mismatched_scales_rejected() {
        let mut f = fixture(2, 22);
        let a = vec![0.1; 8];
        let ca = f.ev.encrypt_real(&a, &f.pk, &mut f.sampler);
        let cb = f.ev.encrypt_real(&a, &f.pk, &mut f.sampler);
        let prod = f.ev.multiply(&ca, &cb, &f.rk); // scale Δ², same level
        let _ = f.ev.add(&prod, &f.ev.mod_switch_to_level(&ca, prod.level));
    }

    #[test]
    #[should_panic(expected = "no levels left")]
    fn rescale_at_level_zero_panics() {
        let mut f = fixture(1, 23);
        let ca = f.ev.encrypt_real(&[0.5], &f.pk, &mut f.sampler);
        let r1 = f.ev.rescale(&ca);
        let _ = f.ev.rescale(&r1);
    }

    #[test]
    fn try_variants_return_typed_errors() {
        let mut f = fixture(1, 25);
        let ca = f.ev.encrypt_real(&[0.5; 8], &f.pk, &mut f.sampler);

        // rotation without any Galois keys
        let gk = GaloisKeys::default();
        match f.ev.try_rotate(&ca, 1, &gk) {
            Err(crate::error::HeError::MissingGaloisKey { elem, available }) => {
                assert_eq!(elem, f.ctx.galois_element_for_rotation(1));
                assert!(available.is_empty());
            }
            other => panic!("expected MissingGaloisKey, got {other:?}"),
        }

        // the error names the keys that DO exist
        let mut kg = KeyGenerator::new(Arc::clone(&f.ctx), 7);
        let gk = kg.gen_galois_keys(&f.sk, &[1], false);
        match f.ev.try_rotate(&ca, 3, &gk) {
            Err(crate::error::HeError::MissingGaloisKey { available, .. }) => {
                assert_eq!(available, vec![f.ctx.galois_element_for_rotation(1)]);
            }
            other => panic!("expected MissingGaloisKey, got {other:?}"),
        }

        // rescale past level 0
        let r0 = f.ev.rescale(&ca);
        assert!(matches!(
            f.ev.try_rescale(&r0),
            Err(crate::error::HeError::LevelExhausted { level: 0, .. })
        ));

        // upward mod-switch
        assert!(matches!(
            f.ev.try_mod_switch_to_level(&r0, 1),
            Err(crate::error::HeError::ModSwitchUpward { from: 0, to: 1 })
        ));

        // happy paths still work through the fallible API
        assert!(f.ev.try_rescale(&ca).is_ok());
        assert!(f.ev.try_mod_switch_to_level(&ca, 0).is_ok());
        assert!(f.ev.try_rotate(&ca, 0, &GaloisKeys::default()).is_ok());
    }

    #[test]
    fn wrong_key_decrypts_garbage() {
        let mut f = fixture(1, 24);
        let mut kg = KeyGenerator::new(Arc::clone(&f.ctx), 31337);
        let wrong_sk = kg.gen_secret_key();
        let vals = vec![0.25; 32];
        let ct = f.ev.encrypt_real(&vals, &f.pk, &mut f.sampler);
        let back = f.ev.decrypt_to_real(&ct, &wrong_sk);
        let err = max_err(&back[..32], &vals);
        assert!(err > 1.0, "wrong key should not decrypt (err {err})");
    }
}
