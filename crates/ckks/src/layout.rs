//! Packing layouts: how batches of vectors map onto CKKS slots.
//!
//! The packed (BSGS) execution path tiles one `dim`-long activation
//! vector cyclically across the slots. A [`PackLayout`] generalizes
//! that to a *batch-strided* layout holding `batch` independent lanes
//! in one ciphertext: element `j` of lane `b` lives in slot
//! `j·batch + b (mod period)`, the pattern repeating every
//! `period = dim·batch` slots. Rotating by `d·batch` shifts every
//! lane's element index by `d` while leaving the lane assignment
//! fixed, so the rotate-and-sum / diagonal-matvec algebra of
//! `ckks::linalg` carries over with every rotation step scaled by the
//! stride. `batch = 1` reduces to the classic tiled layout
//! bit-identically.
//!
//! When a batch exceeds one ciphertext's lane capacity
//! (`slots / dim`), a [`ShardPlan`] splits it across several
//! ciphertexts that share one layout. [`shard_combine`] /
//! [`shard_split`] move between the two representations
//! homomorphically — each costs one multiplicative level (a mask
//! multiplication) and a set of `±s·period` rotations that must be
//! provisioned in the Galois key set ([`combine_rotation_steps`],
//! [`split_rotation_steps`]).

use crate::ciphertext::Ciphertext;
use crate::encoding::{self, Plaintext};
use crate::error::HeError;
use crate::eval::Evaluator;
use crate::keys::GaloisKeys;
use crate::params::CkksContext;
use std::sync::Arc;

/// A batch-strided slot layout: `batch` lanes of `dim`-long vectors
/// interleaved at stride `batch`, tiled cyclically over `slots`.
///
/// Invariants (checked at construction): `dim`, `batch` and `slots`
/// are powers of two and `dim · batch ≤ slots`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackLayout {
    dim: usize,
    batch: usize,
    slots: usize,
}

impl PackLayout {
    /// Builds a layout; fails with [`HeError::BatchExceedsSlots`] when
    /// `dim · batch > slots`. `dim` and `batch` must be powers of two
    /// (the rotation algebra requires exact period divisibility).
    pub fn new(dim: usize, batch: usize, slots: usize) -> Result<Self, HeError> {
        assert!(dim.is_power_of_two(), "dim {dim} must be a power of two");
        assert!(
            batch.is_power_of_two(),
            "batch {batch} must be a power of two"
        );
        assert!(
            slots.is_power_of_two(),
            "slot count {slots} must be a power of two"
        );
        if dim * batch > slots {
            return Err(HeError::BatchExceedsSlots {
                batch,
                capacity: slots / dim,
            });
        }
        Ok(Self { dim, batch, slots })
    }

    /// The classic single-vector tiled layout (stride 1).
    pub fn tiled(dim: usize, slots: usize) -> Result<Self, HeError> {
        Self::new(dim, 1, slots)
    }

    /// Padded vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Lanes per ciphertext (equals the slot stride between consecutive
    /// elements of one lane).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Slot stride between element `j` and `j+1` of a lane.
    pub fn stride(&self) -> usize {
        self.batch
    }

    /// Slot count of the ring this layout targets.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Length of one full pattern repetition (`dim · batch`).
    pub fn period(&self) -> usize {
        self.dim * self.batch
    }

    /// Canonical slot of element `j` of lane `lane` (first repetition).
    pub fn slot_of(&self, lane: usize, j: usize) -> usize {
        debug_assert!(lane < self.batch && j < self.dim);
        j * self.batch + lane
    }

    /// The rotation step realizing a uniform element shift by
    /// `element_steps` in every lane, normalized into `[0, slots)`.
    ///
    /// The element shift is cyclic modulo `dim`, so it is reduced first
    /// — this keeps the multiplication by the stride overflow-free for
    /// any `i64` input (the old `element_steps * batch` form wrapped
    /// for `|element_steps| > i64::MAX / batch` and produced negative
    /// steps that every consumer then cast or reduced differently).
    /// The result is a canonical left-rotation count usable directly as
    /// a Galois rotation step.
    pub fn rotation_step(&self, element_steps: i64) -> i64 {
        let e = element_steps.rem_euclid(self.dim as i64);
        (e * self.batch as i64).rem_euclid(self.slots as i64)
    }

    /// Expands an element-indexed vector (length `dim`) to a full slot
    /// vector: every lane sees the same value per element. This is how
    /// diagonal and bias plaintexts are broadcast across the batch.
    pub fn expand(&self, per_element: &[f64]) -> Vec<f64> {
        assert_eq!(per_element.len(), self.dim, "expand expects a dim vector");
        let mut out = vec![0.0f64; self.slots];
        for (i, o) in out.iter_mut().enumerate() {
            *o = per_element[(i / self.batch) % self.dim];
        }
        out
    }

    /// Packs up to `batch` lanes (each of length ≤ `dim`; shorter lanes
    /// are zero-padded, missing lanes are all-zero) into a full slot
    /// vector, tiled cyclically.
    pub fn pack(&self, lanes: &[&[f64]]) -> Result<Vec<f64>, HeError> {
        if lanes.len() > self.batch {
            return Err(HeError::BatchExceedsSlots {
                batch: lanes.len(),
                capacity: self.batch,
            });
        }
        for lane in lanes {
            assert!(
                lane.len() <= self.dim,
                "lane length {} exceeds layout dim {}",
                lane.len(),
                self.dim
            );
        }
        let mut out = vec![0.0f64; self.slots];
        for (i, o) in out.iter_mut().enumerate() {
            let lane = i % self.batch;
            let j = (i / self.batch) % self.dim;
            if let Some(l) = lanes.get(lane) {
                if j < l.len() {
                    *o = l[j];
                }
            }
        }
        Ok(out)
    }

    /// Reads `lanes` lanes of `take` elements each back out of a full
    /// slot vector (inverse of [`Self::pack`] on the first repetition).
    pub fn unpack(&self, slot_vals: &[f64], lanes: usize, take: usize) -> Vec<Vec<f64>> {
        assert!(lanes <= self.batch && take <= self.dim);
        assert!(slot_vals.len() >= self.period());
        (0..lanes)
            .map(|b| (0..take).map(|j| slot_vals[self.slot_of(b, j)]).collect())
            .collect()
    }
}

/// How a logical batch of `total` vectors is distributed over
/// ciphertexts: `shards` ciphertexts, each in the same [`PackLayout`]
/// with `layout.batch()` lanes; the last shard may be partially filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    layout: PackLayout,
    total: usize,
    shards: usize,
}

impl ShardPlan {
    /// Plans a batch of `batch` `dim`-long vectors onto a ring with
    /// `slots` slots. The per-ciphertext lane count is
    /// `min(next_pow2(batch), slots/dim)`; whatever does not fit one
    /// ciphertext spills into additional shards. Fails with
    /// [`HeError::BatchExceedsSlots`] only when even a single vector
    /// does not fit (`dim > slots`).
    pub fn plan(slots: usize, dim: usize, batch: usize) -> Result<Self, HeError> {
        assert!(batch >= 1, "cannot plan an empty batch");
        if dim > slots {
            return Err(HeError::BatchExceedsSlots { batch, capacity: 0 });
        }
        let cap = slots / dim;
        let lanes = batch.next_power_of_two().min(cap);
        let layout = PackLayout::new(dim, lanes, slots)?;
        Ok(Self {
            layout,
            total: batch,
            shards: batch.div_ceil(lanes),
        })
    }

    /// [`Self::plan`], but refuses (typed) any batch that needs more
    /// than one ciphertext — for callers without sharding support.
    pub fn plan_single(slots: usize, dim: usize, batch: usize) -> Result<Self, HeError> {
        let plan = Self::plan(slots, dim, batch)?;
        if plan.shards > 1 {
            return Err(HeError::BatchExceedsSlots {
                batch,
                capacity: plan.capacity(),
            });
        }
        Ok(plan)
    }

    /// The shared per-ciphertext layout.
    pub fn layout(&self) -> PackLayout {
        self.layout
    }

    /// Total vectors in the logical batch.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Ciphertexts the batch occupies.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Lanes one ciphertext can carry (`slots / dim`).
    pub fn capacity(&self) -> usize {
        self.layout.slots() / self.layout.dim()
    }

    /// Lanes actually occupied in shard `s` (the last shard may be
    /// partial).
    pub fn lanes_in_shard(&self, s: usize) -> usize {
        assert!(s < self.shards);
        let filled = s * self.layout.batch();
        (self.total - filled).min(self.layout.batch())
    }

    /// `(shard, lane)` coordinates of global batch index `b`.
    pub fn position(&self, b: usize) -> (usize, usize) {
        assert!(b < self.total);
        (b / self.layout.batch(), b % self.layout.batch())
    }
}

/// Encodes up to `layout.batch()` lanes into one plaintext in the
/// batch-strided layout. Typed failure instead of the encoder's panic
/// when too many lanes are offered.
pub fn encode_batched(
    ctx: &Arc<CkksContext>,
    lanes: &[&[f64]],
    layout: &PackLayout,
    scale: f64,
    level: usize,
) -> Result<Plaintext, HeError> {
    if layout.slots() != ctx.slots() {
        return Err(HeError::BatchExceedsSlots {
            batch: lanes.len(),
            capacity: 0,
        });
    }
    let slot_vals = layout.pack(lanes)?;
    Ok(encoding::encode_real(ctx, &slot_vals, scale, level))
}

/// Decodes `lanes` lanes of `take` elements each from a batch-strided
/// plaintext.
pub fn decode_batched(
    ctx: &Arc<CkksContext>,
    pt: &Plaintext,
    layout: &PackLayout,
    lanes: usize,
    take: usize,
) -> Vec<Vec<f64>> {
    let slot_vals = encoding::decode_real(ctx, pt);
    layout.unpack(&slot_vals, lanes, take)
}

/// Rotation steps [`shard_combine`] applies for a `shards`-shard plan:
/// right rotations `-s·period` placing shard `s`'s first repetition at
/// slot offset `s·period`.
pub fn combine_rotation_steps(layout: &PackLayout, shards: usize) -> Vec<i64> {
    (1..shards)
        .map(|s| -((s * layout.period()) as i64))
        .collect()
}

/// Rotation steps [`shard_split`] applies: left rotations `s·period`
/// to bring each shard's repetition to the front, plus the
/// log-doubling replication steps `-period·2^t` that re-tile the
/// extracted repetition over all slots.
pub fn split_rotation_steps(layout: &PackLayout, shards: usize) -> Vec<i64> {
    let period = layout.period();
    let mut steps: Vec<i64> = (1..shards).map(|s| (s * period) as i64).collect();
    let mut span = period;
    while span < layout.slots() {
        steps.push(-(span as i64));
        span <<= 1;
    }
    steps
}

/// Indicator plaintext of slot range `[0, period)` at scale `q_m` of
/// `level` — the mask both shard ops multiply by.
fn period_mask(ev: &Evaluator, layout: &PackLayout, level: usize) -> Plaintext {
    let q_m = ev.ctx().chain_moduli()[level].value() as f64;
    let mut mask = vec![0.0f64; layout.slots()];
    for m in mask.iter_mut().take(layout.period()) {
        *m = 1.0;
    }
    encoding::encode_real(ev.ctx(), &mask, q_m, level)
}

/// Combines `shards` ciphertexts sharing one layout into a single
/// ciphertext whose slot range `[s·period, (s+1)·period)` holds shard
/// `s`'s first repetition. Consumes one multiplicative level (the mask
/// multiplication) and needs the [`combine_rotation_steps`] Galois
/// keys. Fails typed when the shards' repetitions do not all fit the
/// ring.
pub fn shard_combine(
    ev: &Evaluator,
    shards: &[Ciphertext],
    layout: &PackLayout,
    gk: &GaloisKeys,
) -> Result<Ciphertext, HeError> {
    if shards.is_empty() {
        return Err(HeError::EmptyShardList {
            op: "shard-combine",
        });
    }
    if shards.len() * layout.period() > layout.slots() {
        return Err(HeError::BatchExceedsSlots {
            batch: shards.len() * layout.batch(),
            capacity: (layout.slots() / layout.period()) * layout.batch(),
        });
    }
    let level = shards[0].level;
    if level < 1 {
        return Err(HeError::LevelExhausted {
            op: "shard-combine mask",
            level,
            needed: 1,
        });
    }
    let mask = period_mask(ev, layout, level);
    let mut acc: Option<Ciphertext> = None;
    for (s, ct) in shards.iter().enumerate() {
        let masked = ev.mul_plain(ct, &mask);
        let placed = if s == 0 {
            masked
        } else {
            ev.try_rotate(&masked, -((s * layout.period()) as i64), gk)?
        };
        acc = Some(match acc {
            None => placed,
            Some(a) => ev.add(&a, &placed),
        });
    }
    // the emptiness guard above makes the accumulator infallible here
    let acc = acc.ok_or(HeError::EmptyShardList {
        op: "shard-combine",
    })?;
    Ok(ev.rescale(&acc))
}

/// Splits a combined ciphertext (inverse of [`shard_combine`]'s
/// placement) back into `shards` ciphertexts, each re-tiled cyclically
/// so it is a valid layout ciphertext again. Consumes one
/// multiplicative level and needs the [`split_rotation_steps`] keys.
pub fn shard_split(
    ev: &Evaluator,
    ct: &Ciphertext,
    layout: &PackLayout,
    shards: usize,
    gk: &GaloisKeys,
) -> Result<Vec<Ciphertext>, HeError> {
    if shards == 0 {
        return Err(HeError::EmptyShardList { op: "shard-split" });
    }
    if shards * layout.period() > layout.slots() {
        return Err(HeError::BatchExceedsSlots {
            batch: shards * layout.batch(),
            capacity: (layout.slots() / layout.period()) * layout.batch(),
        });
    }
    if ct.level < 1 {
        return Err(HeError::LevelExhausted {
            op: "shard-split mask",
            level: ct.level,
            needed: 1,
        });
    }
    let mask = period_mask(ev, layout, ct.level);
    let period = layout.period();
    let mut out = Vec::with_capacity(shards);
    for s in 0..shards {
        let fronted = if s == 0 {
            ct.clone()
        } else {
            ev.try_rotate(ct, (s * period) as i64, gk)?
        };
        let masked = ev.mul_plain(&fronted, &mask);
        let mut shard = ev.rescale(&masked);
        // re-tile the isolated repetition over the whole ring by
        // log-doubling: after step t the pattern spans period·2^(t+1)
        let mut span = period;
        while span < layout.slots() {
            let shifted = ev.try_rotate(&shard, -(span as i64), gk)?;
            shard = ev.add(&shard, &shifted);
            span <<= 1;
        }
        out.push(shard);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use ckks_math::sampler::Sampler;

    fn ctx() -> Arc<CkksContext> {
        CkksParams::tiny(3).build()
    }

    #[test]
    fn planner_picks_lanes_and_shards() {
        // 512 slots, dim 64 → capacity 8 lanes per ciphertext
        let p = ShardPlan::plan(512, 64, 1).unwrap();
        assert_eq!((p.layout().batch(), p.shards()), (1, 1));
        let p = ShardPlan::plan(512, 64, 5).unwrap();
        assert_eq!((p.layout().batch(), p.shards()), (8, 1), "non-pow2 pads");
        let p = ShardPlan::plan(512, 64, 8).unwrap();
        assert_eq!((p.layout().batch(), p.shards()), (8, 1));
        let p = ShardPlan::plan(512, 64, 9).unwrap();
        assert_eq!((p.layout().batch(), p.shards()), (8, 2));
        assert_eq!(p.lanes_in_shard(0), 8);
        assert_eq!(p.lanes_in_shard(1), 1);
        assert_eq!(p.position(8), (1, 0));
        let p = ShardPlan::plan(512, 64, 64).unwrap();
        assert_eq!((p.layout().batch(), p.shards()), (8, 8));
    }

    #[test]
    fn planner_rejects_oversized_dim_and_single_ct_overflow() {
        let err = ShardPlan::plan(512, 1024, 1).unwrap_err();
        assert!(matches!(
            err,
            HeError::BatchExceedsSlots {
                batch: 1,
                capacity: 0
            }
        ));
        let err = ShardPlan::plan_single(512, 64, 9).unwrap_err();
        assert!(matches!(
            err,
            HeError::BatchExceedsSlots {
                batch: 9,
                capacity: 8
            }
        ));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let layout = PackLayout::new(8, 4, 64).unwrap();
        let lanes: Vec<Vec<f64>> = (0..3)
            .map(|b| (0..8).map(|j| (b * 10 + j) as f64).collect())
            .collect();
        let refs: Vec<&[f64]> = lanes.iter().map(Vec::as_slice).collect();
        let slots = layout.pack(&refs).unwrap();
        // element j of lane b sits at j·4 + b, repeating every 32 slots
        assert_eq!(slots[layout.slot_of(1, 3)], 13.0);
        assert_eq!(slots[layout.slot_of(1, 3) + layout.period()], 13.0);
        assert_eq!(slots[layout.slot_of(3, 0)], 0.0, "missing lane is zero");
        let back = layout.unpack(&slots, 3, 8);
        assert_eq!(back, lanes);
    }

    #[test]
    fn stride_one_pack_equals_plain_tiling() {
        let layout = PackLayout::tiled(8, 64).unwrap();
        let lane: Vec<f64> = (0..6).map(|j| j as f64 + 0.5).collect();
        let packed = layout.pack(&[&lane]).unwrap();
        for (i, &v) in packed.iter().enumerate() {
            let j = i % 8;
            let want = if j < 6 { j as f64 + 0.5 } else { 0.0 };
            assert_eq!(v, want, "slot {i}");
        }
    }

    #[test]
    fn expand_broadcasts_per_element_values() {
        let layout = PackLayout::new(4, 2, 16).unwrap();
        let e = layout.expand(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e[..8], [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        assert_eq!(e[8..], e[..8]);
    }

    #[test]
    fn encode_decode_batched_roundtrip() {
        let ctx = ctx();
        let layout = PackLayout::new(16, 8, ctx.slots()).unwrap();
        let lanes: Vec<Vec<f64>> = (0..8)
            .map(|b| (0..16).map(|j| ((b * 16 + j) as f64).sin() * 0.5).collect())
            .collect();
        let refs: Vec<&[f64]> = lanes.iter().map(Vec::as_slice).collect();
        let pt = encode_batched(&ctx, &refs, &layout, ctx.params().scale(), 2).unwrap();
        let back = decode_batched(&ctx, &pt, &layout, 8, 16);
        for (a, b) in back.iter().flatten().zip(lanes.iter().flatten()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn encode_batched_rejects_excess_lanes_typed() {
        let ctx = ctx();
        let layout = PackLayout::new(16, 2, ctx.slots()).unwrap();
        let lane = vec![0.5f64; 16];
        let lanes: Vec<&[f64]> = vec![&lane; 3];
        let err = encode_batched(&ctx, &lanes, &layout, ctx.params().scale(), 1).unwrap_err();
        assert!(matches!(
            err,
            HeError::BatchExceedsSlots {
                batch: 3,
                capacity: 2
            }
        ));
    }

    #[test]
    fn rotation_by_stride_shifts_elements_within_lanes() {
        let layout = PackLayout::new(8, 4, 32).unwrap();
        assert_eq!(layout.rotation_step(1), 4);
        // a left shift by −3 elements is the same cyclic shift as by
        // dim−3 = 5: the step comes back normalized into [0, slots)
        assert_eq!(layout.rotation_step(-3), 20);
        let lanes: Vec<Vec<f64>> = (0..4)
            .map(|b| (0..8).map(|j| (b * 8 + j) as f64).collect())
            .collect();
        let refs: Vec<&[f64]> = lanes.iter().map(Vec::as_slice).collect();
        let v = layout.pack(&refs).unwrap();
        // emulate a left rotation by stride·d slots
        let d = 3usize;
        let r = layout.rotation_step(d as i64) as usize;
        let rotated: Vec<f64> = (0..v.len()).map(|i| v[(i + r) % v.len()]).collect();
        let back = layout.unpack(&rotated, 4, 8);
        for (b, lane) in back.iter().enumerate() {
            for (j, &val) in lane.iter().enumerate() {
                assert_eq!(val, lanes[b][(j + d) % 8], "lane {b} elem {j}");
            }
        }
    }

    #[test]
    fn rotation_step_normalizes_boundary_shifts() {
        let layout = PackLayout::new(8, 4, 64).unwrap();
        // negative shifts map to their positive complement
        assert_eq!(layout.rotation_step(-1), layout.rotation_step(7));
        assert_eq!(layout.rotation_step(-3), 5 * 4);
        // shifts are cyclic modulo dim: a full cycle is the identity …
        assert_eq!(layout.rotation_step(8), 0);
        assert_eq!(layout.rotation_step(-8), 0);
        // … and over-long shifts reduce before scaling by the stride
        assert_eq!(layout.rotation_step(11), layout.rotation_step(3));
        assert_eq!(layout.rotation_step(8 + 5), 5 * 4);
        // extreme inputs no longer overflow the stride multiplication
        assert_eq!(layout.rotation_step(i64::MAX), layout.rotation_step(7));
        assert_eq!(layout.rotation_step(i64::MIN), layout.rotation_step(0));
        // every result is a canonical in-ring left rotation
        for e in [-17i64, -8, -1, 0, 1, 7, 8, 9, 1_000_003] {
            let s = layout.rotation_step(e);
            assert!((0..64).contains(&s), "step {s} for shift {e}");
        }
        // the stride-1 layout reduces to plain element rotation
        let tiled = PackLayout::tiled(8, 64).unwrap();
        assert_eq!(tiled.rotation_step(3), 3);
        assert_eq!(tiled.rotation_step(-3), 5);
    }

    #[test]
    fn empty_shard_lists_are_typed_errors_not_panics() {
        let ctx = ctx();
        let ev = Evaluator::new(Arc::clone(&ctx));
        let layout = PackLayout::new(16, 4, ctx.slots()).unwrap();
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), 11);
        let sk = kg.gen_secret_key();
        let gk = kg.gen_galois_keys(&sk, &[], false);

        let err = shard_combine(&ev, &[], &layout, &gk).unwrap_err();
        assert!(
            matches!(
                err,
                HeError::EmptyShardList {
                    op: "shard-combine"
                }
            ),
            "{err}"
        );

        let pk = kg.gen_public_key(&sk);
        let mut s = Sampler::from_seed(12);
        let pt = encode_batched(&ctx, &[], &layout, ctx.params().scale(), 2).unwrap();
        let ct = ev.encrypt(&pt, &pk, &mut s);
        let err = shard_split(&ev, &ct, &layout, 0, &gk).unwrap_err();
        assert!(
            matches!(err, HeError::EmptyShardList { op: "shard-split" }),
            "{err}"
        );
    }

    #[test]
    fn shard_combine_then_split_roundtrips_encrypted() {
        let ctx = ctx();
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), 7);
        let sk = kg.gen_secret_key();
        let pk = kg.gen_public_key(&sk);
        let ev = Evaluator::new(Arc::clone(&ctx));
        let mut s = Sampler::from_seed(8);

        let layout = PackLayout::new(16, 4, ctx.slots()).unwrap();
        let shards_n = 3usize;
        let mut steps = combine_rotation_steps(&layout, shards_n);
        steps.extend(split_rotation_steps(&layout, shards_n));
        let gk = kg.gen_galois_keys(&sk, &steps, false);

        let mut cts = Vec::new();
        let mut lanes_all = Vec::new();
        for sh in 0..shards_n {
            let lanes: Vec<Vec<f64>> = (0..4)
                .map(|b| {
                    (0..16)
                        .map(|j| (sh * 100 + b * 16 + j) as f64 * 1e-3)
                        .collect()
                })
                .collect();
            let refs: Vec<&[f64]> = lanes.iter().map(Vec::as_slice).collect();
            let pt = encode_batched(&ctx, &refs, &layout, ctx.params().scale(), 3).unwrap();
            cts.push(ev.encrypt(&pt, &pk, &mut s));
            lanes_all.push(lanes);
        }

        let combined = shard_combine(&ev, &cts, &layout, &gk).unwrap();
        assert_eq!(combined.level, 2, "mask consumes one level");
        // slot range [s·period, …) of the combined ct holds shard s
        let dec = ev.decrypt_to_real(&combined, &sk);
        for (sh, lanes) in lanes_all.iter().enumerate() {
            for (b, lane) in lanes.iter().enumerate() {
                for (j, want) in lane.iter().enumerate() {
                    let got = dec[sh * layout.period() + layout.slot_of(b, j)];
                    assert!((got - want).abs() < 1e-4, "shard {sh} lane {b} elem {j}");
                }
            }
        }

        let split = shard_split(&ev, &combined, &layout, shards_n, &gk).unwrap();
        assert_eq!(split.len(), shards_n);
        for (sh, ct) in split.iter().enumerate() {
            assert_eq!(ct.level, 1, "second mask consumes another level");
            let dec = ev.decrypt_to_real(ct, &sk);
            // a split shard is a valid layout ciphertext again: the
            // repetition must cover the whole ring
            for rep in 0..(ctx.slots() / layout.period()) {
                let back = layout.unpack(&dec[rep * layout.period()..], 4, 16);
                for (b, lane) in back.iter().enumerate() {
                    for (j, got) in lane.iter().enumerate() {
                        let want = lanes_all[sh][b][j];
                        assert!(
                            (got - want).abs() < 1e-3,
                            "rep {rep} shard {sh} lane {b} elem {j}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_capacity_pack_unpack_roundtrip() {
        // boundary: dim · batch == slots (one repetition fills the ring)
        let layout = PackLayout::new(16, 8, 128).unwrap();
        assert_eq!(layout.period(), layout.slots());
        let lanes: Vec<Vec<f64>> = (0..8)
            .map(|b| (0..16).map(|j| (b * 16 + j) as f64 + 0.25).collect())
            .collect();
        let refs: Vec<&[f64]> = lanes.iter().map(Vec::as_slice).collect();
        let packed = layout.pack(&refs).unwrap();
        assert_eq!(layout.unpack(&packed, 8, 16), lanes);
        // one lane more than capacity is a typed error
        let over: Vec<&[f64]> = (0..9).map(|_| refs[0]).collect();
        assert!(matches!(
            layout.pack(&over).unwrap_err(),
            HeError::BatchExceedsSlots {
                batch: 9,
                capacity: 8
            }
        ));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;
        use rand::{Rng, SeedableRng};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // pack → unpack is the identity on any lane set the layout
            // admits: non-power-of-two lane counts and lengths
            // (zero-padded), stride 1 through 8, up to the full
            // slot-capacity boundary (extra = 0 ⇒ period == slots)
            #[test]
            fn pack_unpack_roundtrip(
                dim_log in 0u32..6,
                batch_log in 0u32..4,
                extra_log in 0u32..3,
                seed in 0u64..1_000,
            ) {
                let dim = 1usize << dim_log;
                let batch = 1usize << batch_log;
                let slots = 1usize << (dim_log + batch_log + extra_log);
                let layout = PackLayout::new(dim, batch, slots).unwrap();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let lanes_n = rng.gen_range(0..=batch);
                let lanes: Vec<Vec<f64>> = (0..lanes_n)
                    .map(|_| {
                        let len = rng.gen_range(0..=dim);
                        (0..len).map(|_| rng.gen_range(-1.0f64..1.0)).collect()
                    })
                    .collect();
                let refs: Vec<&[f64]> = lanes.iter().map(Vec::as_slice).collect();
                let packed = layout.pack(&refs).unwrap();
                prop_assert_eq!(packed.len(), slots);
                let back = layout.unpack(&packed, lanes_n, dim);
                for (lane, got) in lanes.iter().zip(&back) {
                    for (j, g) in got.iter().enumerate() {
                        let want = lane.get(j).copied().unwrap_or(0.0);
                        prop_assert_eq!(*g, want);
                    }
                }
            }

            // rotation_step is the slot rotation realizing a uniform
            // per-lane element shift, for any signed shift (negative,
            // ≥ dim, extreme) — checked against a literal slot-vector
            // rotation
            #[test]
            fn rotation_step_realizes_element_shift(
                dim_log in 0u32..5,
                batch_log in 0u32..4,
                shift_idx in 0usize..12,
                seed in 0u64..1_000,
            ) {
                const SHIFTS: [i64; 12] = [
                    i64::MIN, -1_000_003, -17, -8, -1, 0, 1, 7, 8, 31, 1_000_003, i64::MAX,
                ];
                let shift = SHIFTS[shift_idx];
                let dim = 1usize << dim_log;
                let batch = 1usize << batch_log;
                let slots = (dim * batch * 2).next_power_of_two();
                let layout = PackLayout::new(dim, batch, slots).unwrap();
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let lanes: Vec<Vec<f64>> = (0..batch)
                    .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f64..1.0)).collect())
                    .collect();
                let refs: Vec<&[f64]> = lanes.iter().map(Vec::as_slice).collect();
                let v = layout.pack(&refs).unwrap();
                let r = layout.rotation_step(shift);
                prop_assert!((0..slots as i64).contains(&r), "non-canonical step {r}");
                let rotated: Vec<f64> =
                    (0..slots).map(|i| v[(i + r as usize) % slots]).collect();
                let back = layout.unpack(&rotated, batch, dim);
                // i64::MIN.rem_euclid is still well-defined — compute the
                // expected element shift the same way a caller reasons: d ≡ shift (mod dim)
                let d = shift.rem_euclid(dim as i64) as usize;
                for (b, lane) in back.iter().enumerate() {
                    for (j, got) in lane.iter().enumerate() {
                        prop_assert_eq!(*got, lanes[b][(j + d) % dim], "lane {} elem {}", b, j);
                    }
                }
            }
        }
    }

    #[test]
    fn shard_ops_report_their_rotation_needs() {
        let layout = PackLayout::new(16, 4, 512).unwrap();
        assert_eq!(combine_rotation_steps(&layout, 3), vec![-64, -128]);
        let split = split_rotation_steps(&layout, 3);
        assert_eq!(split, vec![64, 128, -64, -128, -256]);
        // combine past the ring is a typed error
        let ev_steps = combine_rotation_steps(&layout, 8);
        assert_eq!(ev_steps.len(), 7);
    }

    #[test]
    fn combine_rejects_overfull_ring() {
        let ctx = ctx();
        let ev = Evaluator::new(Arc::clone(&ctx));
        let layout = PackLayout::new(64, 4, ctx.slots()).unwrap(); // period 256, 2 reps
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), 9);
        let sk = kg.gen_secret_key();
        let gk = kg.gen_galois_keys(&sk, &[], false);
        let pk = kg.gen_public_key(&sk);
        let mut s = Sampler::from_seed(10);
        let pt = encode_batched(&ctx, &[], &layout, ctx.params().scale(), 2).unwrap();
        let ct = ev.encrypt(&pt, &pk, &mut s);
        let cts = vec![ct.clone(), ct.clone(), ct];
        let err = shard_combine(&ev, &cts, &layout, &gk).unwrap_err();
        assert!(matches!(err, HeError::BatchExceedsSlots { .. }), "{err}");
    }
}
