//! Typed errors for ciphertext-metadata violations.
//!
//! Every variant corresponds to a precondition the evaluator checks
//! before touching polynomial data: level exhaustion, scale
//! incompatibility, missing key material. The `Display` text of each
//! variant is the panic message of the corresponding infallible
//! evaluator method, so `try_*` callers and panic-path callers see the
//! same wording, and the `he-lint` static analyzer can surface the same
//! diagnostics without running the circuit.

/// A ciphertext-metadata violation detected before (or instead of)
/// polynomial arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub enum HeError {
    /// A rotation/conjugation was requested for a Galois element with no
    /// generated key-switching key.
    MissingGaloisKey {
        /// The Galois element `5^r mod 2N` (or `2N−1` for conjugation).
        elem: usize,
        /// Elements a key exists for, sorted ascending.
        available: Vec<usize>,
    },
    /// An operation needed more modulus-chain levels than the ciphertext
    /// has left.
    LevelExhausted {
        /// The operation that ran out of levels.
        op: &'static str,
        /// Current ciphertext level.
        level: usize,
        /// Levels the operation consumes.
        needed: usize,
    },
    /// `mod_switch_to_level` asked for a level above the current one.
    ModSwitchUpward { from: usize, to: usize },
    /// Two operands' scales differ beyond `SCALE_RTOL`.
    ScaleMismatch { a: f64, b: f64 },
    /// An RNS input codec's radix weights (`β_j = Π_{i<j} m_j`) overflow
    /// the i128 recomposition arithmetic — too many / too large stream
    /// moduli.
    CodecRadixOverflow {
        /// Number of streams requested.
        k: usize,
        /// The modulus whose inclusion overflowed the running product.
        modulus: u64,
    },
    /// A recomposed digit value `Σ_j β_j·d_j` exceeds the i64 output
    /// domain: the digit planes are inconsistent with the codec's
    /// declared dynamic range.
    CodecRecomposeOverflow {
        /// Index of the offending element within the planes.
        index: usize,
        /// The out-of-range recomposed value.
        value: i128,
    },
    /// A shard-level operation (`shard_combine` / `shard_split`) was
    /// handed an empty shard list — there is no ciphertext to produce.
    EmptyShardList {
        /// The operation that required at least one shard.
        op: &'static str,
    },
    /// A batched packing request asked for more lanes than the layout
    /// (or the ring) can hold — `batch` vectors were offered where at
    /// most `capacity` fit.
    BatchExceedsSlots {
        /// Lanes requested.
        batch: usize,
        /// Lanes the layout/ring can carry (`0` when even a single
        /// vector does not fit the slot count).
        capacity: usize,
    },
}

impl std::fmt::Display for HeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeError::MissingGaloisKey { elem, available } => {
                // keep the historical "missing Galois key for element {g}"
                // prefix — callers and tests match on it
                write!(f, "missing Galois key for element {elem}")?;
                if available.is_empty() {
                    write!(f, " (no Galois keys were generated)")
                } else {
                    write!(f, " (keys exist for elements {available:?})")
                }
            }
            HeError::LevelExhausted { op, level, needed } => write!(
                f,
                "no levels left to {op}: at level {level}, need {needed} more"
            ),
            HeError::ModSwitchUpward { from, to } => {
                write!(f, "cannot mod-switch upward (level {from} to {to})")
            }
            HeError::ScaleMismatch { a, b } => write!(f, "scale mismatch: {a} vs {b}"),
            // keep the historical expect-message prefixes — callers and
            // tests match on them
            HeError::CodecRadixOverflow { k, modulus } => write!(
                f,
                "radix weight overflow: product of {k} stream moduli exceeds i128 at modulus {modulus}"
            ),
            HeError::CodecRecomposeOverflow { index, value } => write!(
                f,
                "recomposed digit value exceeds i64 at index {index} (value {value})"
            ),
            HeError::EmptyShardList { op } => {
                write!(f, "{op} requires at least one shard, got an empty list")
            }
            HeError::BatchExceedsSlots { batch, capacity } => write!(
                f,
                "batch exceeds slot capacity: {batch} lanes requested, {capacity} fit"
            ),
        }
    }
}

impl std::error::Error for HeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_historical_substrings() {
        let e = HeError::MissingGaloisKey {
            elem: 25,
            available: vec![5, 2047],
        };
        let msg = e.to_string();
        assert!(msg.contains("missing Galois key for element 25"), "{msg}");
        assert!(msg.contains("[5, 2047]"), "{msg}");

        let e = HeError::LevelExhausted {
            op: "rescale",
            level: 0,
            needed: 1,
        };
        assert!(e.to_string().contains("no levels left"), "{e}");

        let e = HeError::ModSwitchUpward { from: 1, to: 3 };
        assert!(e.to_string().contains("cannot mod-switch upward"), "{e}");

        let e = HeError::ScaleMismatch { a: 2.0, b: 4.0 };
        assert!(e.to_string().contains("scale mismatch"), "{e}");

        let e = HeError::CodecRadixOverflow {
            k: 12,
            modulus: 2053,
        };
        assert!(e.to_string().contains("radix weight overflow"), "{e}");

        let e = HeError::CodecRecomposeOverflow {
            index: 3,
            value: i128::MAX,
        };
        assert!(
            e.to_string().contains("recomposed digit value exceeds i64"),
            "{e}"
        );

        let e = HeError::BatchExceedsSlots {
            batch: 12,
            capacity: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("batch exceeds slot capacity"), "{msg}");
        assert!(msg.contains("12") && msg.contains('8'), "{msg}");

        let e = HeError::EmptyShardList {
            op: "shard-combine",
        };
        let msg = e.to_string();
        assert!(msg.contains("shard-combine"), "{msg}");
        assert!(msg.contains("at least one shard"), "{msg}");
    }

    #[test]
    fn missing_key_with_empty_inventory() {
        let e = HeError::MissingGaloisKey {
            elem: 5,
            available: vec![],
        };
        assert!(e.to_string().contains("no Galois keys were generated"));
    }
}
