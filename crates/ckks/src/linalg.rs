//! SIMD slot algebra over ciphertexts: rotate-and-accumulate sums,
//! inner products and the diagonal-method matrix–vector product
//! (Halevi–Shoup), the primitives behind Lo-La-style packed linear
//! layers (related work the paper builds on).

use crate::ciphertext::Ciphertext;
use crate::encoding;
use crate::eval::Evaluator;
use crate::keys::{GaloisKeys, RelinKey};

/// Galois rotation steps needed by [`sum_slots`] over `slots` entries:
/// the powers of two below `slots`.
pub fn sum_rotation_steps(slots: usize) -> Vec<i64> {
    assert!(slots.is_power_of_two());
    let mut steps = Vec::new();
    let mut s = 1usize;
    while s < slots {
        steps.push(s as i64);
        s <<= 1;
    }
    steps
}

/// Sums all `slots` slots into every slot via log₂(slots)
/// rotate-and-add passes. Requires Galois keys for the power-of-two
/// rotations ([`sum_rotation_steps`]).
pub fn sum_slots(ev: &Evaluator, ct: &Ciphertext, slots: usize, gk: &GaloisKeys) -> Ciphertext {
    assert!(slots.is_power_of_two() && slots <= ct.slots);
    let mut acc = ct.clone();
    let mut s = 1usize;
    while s < slots {
        let rot = ev.rotate(&acc, s as i64, gk);
        acc = ev.add(&acc, &rot);
        s <<= 1;
    }
    acc
}

/// Homomorphic inner product of two packed vectors: elementwise product,
/// rescale, then slot summation. Result lands in every slot.
pub fn inner_product(
    ev: &Evaluator,
    a: &Ciphertext,
    b: &Ciphertext,
    slots: usize,
    rk: &RelinKey,
    gk: &GaloisKeys,
) -> Ciphertext {
    let prod = ev.multiply_rescale(a, b, rk);
    sum_slots(ev, &prod, slots, gk)
}

/// Plaintext-matrix × encrypted-vector via the diagonal method:
/// `y = Σ_d diag_d(M) ⊙ rot(x, d)`. `matrix` is row-major
/// `[dim × dim]`; needs Galois keys for rotations `1..dim`.
///
/// Consumes one multiplicative level. Square `dim`-power-of-two
/// matrices only (pad rectangular layers to use it).
pub fn mat_vec_diagonal(
    ev: &Evaluator,
    matrix: &[f64],
    dim: usize,
    x: &Ciphertext,
    gk: &GaloisKeys,
) -> Ciphertext {
    assert!(
        dim.is_power_of_two(),
        "diagonal method needs power-of-two dim"
    );
    assert_eq!(matrix.len(), dim * dim);
    assert!(dim <= x.slots, "vector does not fill the packing");
    let scale = ev.ctx().params().scale();
    let mut acc: Option<Ciphertext> = None;
    for d in 0..dim {
        // diagonal d: entries M[i][(i+d) mod dim]
        let diag: Vec<f64> = (0..dim).map(|i| matrix[i * dim + (i + d) % dim]).collect();
        if diag.iter().all(|&v| v == 0.0) {
            continue;
        }
        let xr = ev.rotate(x, d as i64, gk);
        let pt = encoding::encode_real(ev.ctx(), &diag, scale, xr.level);
        let term = ev.mul_plain(&xr, &pt);
        acc = Some(match acc {
            None => term,
            Some(a) => ev.add(&a, &term),
        });
    }
    ev.rescale(&acc.expect("zero matrix"))
}

/// Rotates by an arbitrary step using only power-of-two Galois keys
/// (binary decomposition of the step): a full key set for every rotation
/// costs `O(slots)` keys, the power-of-two set costs `log₂(slots)` —
/// the standard storage/latency trade-off.
pub fn rotate_by_any(
    ev: &Evaluator,
    ct: &Ciphertext,
    steps: i64,
    pow2_keys: &GaloisKeys,
) -> Ciphertext {
    let slots = ct.slots as i64;
    let mut r = steps.rem_euclid(slots) as usize;
    let mut acc = ct.clone();
    let mut bit = 0usize;
    while r != 0 {
        if r & 1 == 1 {
            acc = ev.rotate(&acc, 1i64 << bit, pow2_keys);
        }
        r >>= 1;
        bit += 1;
    }
    acc
}

/// The power-of-two rotation steps for a slot count (for
/// [`rotate_by_any`]'s key set).
pub fn pow2_rotation_steps(slots: usize) -> Vec<i64> {
    sum_rotation_steps(slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;
    use ckks_math::sampler::Sampler;
    use std::sync::Arc;

    struct Fx {
        sk: crate::keys::SecretKey,
        pk: crate::keys::PublicKey,
        rk: RelinKey,
        gk: GaloisKeys,
        ev: Evaluator,
        s: Sampler,
    }

    fn fixture(slots_needed: usize) -> Fx {
        let ctx = CkksParams::tiny(2).build();
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), 700);
        let sk = kg.gen_secret_key();
        let pk = kg.gen_public_key(&sk);
        let rk = kg.gen_relin_key(&sk);
        let mut steps = sum_rotation_steps(slots_needed);
        steps.extend(0..slots_needed as i64); // all small rotations for matvec
        let gk = kg.gen_galois_keys(&sk, &steps, false);
        Fx {
            sk,
            pk,
            rk,
            gk,
            ev: Evaluator::new(ctx),
            s: Sampler::from_seed(701),
        }
    }

    #[test]
    fn sum_slots_all_equal() {
        let mut f = fixture(8);
        let slots = f.ev.ctx().slots();
        // values in the first 8 slots, zero elsewhere (encode pads)
        let vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        // full packing so rotation semantics are the plain cyclic ones
        let mut full = vec![0.0f64; slots];
        full[..8].copy_from_slice(&vals);
        let ct = f.ev.encrypt_real(&full, &f.pk, &mut f.s);
        let summed = sum_slots(&f.ev, &ct, 8, &f.gk);
        let out = f.ev.decrypt_to_real(&summed, &f.sk);
        // slot 0 contains the sum of slots 0..8
        assert!((out[0] - 36.0).abs() < 1e-2, "{}", out[0]);
    }

    #[test]
    fn inner_product_matches_plain() {
        let mut f = fixture(8);
        let slots = f.ev.ctx().slots();
        let mut a = vec![0.0f64; slots];
        let mut b = vec![0.0f64; slots];
        let av = [0.5, -1.0, 2.0, 0.25, 1.5, -0.5, 0.0, 3.0];
        let bv = [1.0, 2.0, -1.0, 4.0, 0.5, 2.0, 9.0, -2.0];
        a[..8].copy_from_slice(&av);
        b[..8].copy_from_slice(&bv);
        let ca = f.ev.encrypt_real(&a, &f.pk, &mut f.s);
        let cb = f.ev.encrypt_real(&b, &f.pk, &mut f.s);
        let ip = inner_product(&f.ev, &ca, &cb, 8, &f.rk, &f.gk);
        let out = f.ev.decrypt_to_real(&ip, &f.sk);
        let want: f64 = av.iter().zip(&bv).map(|(x, y)| x * y).sum();
        assert!((out[0] - want).abs() < 1e-2, "{} vs {want}", out[0]);
    }

    #[test]
    fn diagonal_matvec_matches_plain() {
        let mut f = fixture(4);
        let slots = f.ev.ctx().slots();
        let dim = 4usize;
        #[rustfmt::skip]
        let m = [
            1.0, 0.5, 0.0, -1.0,
            0.0, 2.0, 1.0,  0.0,
            0.5, 0.0, 1.5,  0.5,
            1.0, 1.0, 0.0,  0.25,
        ];
        let xv = [0.5, -0.5, 1.0, 2.0];
        // the diagonal method requires the vector replicated cyclically
        // with period dim across the packing
        let mut full = vec![0.0f64; slots];
        for i in 0..slots {
            full[i] = xv[i % dim];
        }
        let x = f.ev.encrypt_real(&full, &f.pk, &mut f.s);
        let y = mat_vec_diagonal(&f.ev, &m, dim, &x, &f.gk);
        let out = f.ev.decrypt_to_real(&y, &f.sk);
        for i in 0..dim {
            let want: f64 = (0..dim).map(|j| m[i * dim + j] * xv[j]).sum();
            assert!(
                (out[i] - want).abs() < 1e-2,
                "row {i}: {} vs {want}",
                out[i]
            );
        }
    }

    #[test]
    fn rotation_steps_cover_powers_of_two() {
        assert_eq!(sum_rotation_steps(8), vec![1, 2, 4]);
        assert_eq!(sum_rotation_steps(1), Vec::<i64>::new());
    }

    #[test]
    fn arbitrary_rotation_from_pow2_keys() {
        let ctx = CkksParams::tiny(1).build();
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), 702);
        let sk = kg.gen_secret_key();
        let pk = kg.gen_public_key(&sk);
        let slots = ctx.slots();
        let gk = kg.gen_galois_keys(&sk, &pow2_rotation_steps(slots), false);
        let ev = Evaluator::new(Arc::clone(&ctx));
        let mut s = Sampler::from_seed(703);
        let vals: Vec<f64> = (0..slots).map(|i| i as f64 / slots as f64).collect();
        let ct = ev.encrypt_real(&vals, &pk, &mut s);
        for r in [0i64, 1, 5, 7, 13, -3] {
            let rot = rotate_by_any(&ev, &ct, r, &gk);
            let out = ev.decrypt_to_real(&rot, &sk);
            for i in (0..slots).step_by(slots / 8) {
                let want = vals[(i as i64 + r).rem_euclid(slots as i64) as usize];
                assert!(
                    (out[i] - want).abs() < 5e-3,
                    "rot {r} slot {i}: {} vs {want}",
                    out[i]
                );
            }
        }
    }
}
