//! Reference (non-RNS) CKKS over multiprecision integers.
//!
//! The original CKKS implementation "relies on a multi-precision library,
//! which leads to higher computational complexity" (paper §II) — this
//! module *is* that baseline: plain `BigInt` coefficient polynomials with
//! schoolbook negacyclic multiplication, sharing the exact same prime
//! chain as the RNS context so that every RNS operation can be
//! cross-validated against its bignum counterpart bit-for-bit (modulo
//! CRT composition).
//!
//! It exists for two purposes:
//! 1. correctness oracle for the double-CRT fast path (tests), and
//! 2. the "multiprecision vs RNS" microbenchmark that motivates RNS-CKKS.

use crate::params::CkksContext;
use ckks_math::bigint::BigInt;
use ckks_math::poly::{Form, RnsPoly};
use ckks_math::sampler::Sampler;
use std::sync::Arc;

/// A polynomial with multiprecision coefficients, reduced centered
/// modulo some `q`.
#[derive(Debug, Clone)]
pub struct BigPoly {
    pub coeffs: Vec<BigInt>,
}

impl BigPoly {
    pub fn zero(n: usize) -> Self {
        Self {
            coeffs: vec![BigInt::zero(); n],
        }
    }

    pub fn from_signed(coeffs: &[i64]) -> Self {
        Self {
            coeffs: coeffs.iter().map(|&c| BigInt::from_i64(c)).collect(),
        }
    }

    /// Converts an [`RnsPoly`] (any form) into a bignum polynomial with
    /// centered coefficients, via CRT composition over the poly's limbs.
    pub fn from_rns(ctx: &Arc<CkksContext>, poly: &RnsPoly) -> Self {
        let mut p = poly.clone();
        if p.form() == Form::Ntt {
            p.ntt_inverse();
        }
        let level = p.num_limbs() - 1;
        // only valid for chain-prefix polys
        assert!(
            p.limb_indices().iter().copied().eq(0..=level),
            "from_rns expects a chain-prefix limb set"
        );
        let basis = ctx.level_basis(level);
        let n = ctx.n();
        let coeffs = (0..n)
            .map(|i| basis.compose_centered(&p.coeff_residues(i)))
            .collect();
        Self { coeffs }
    }

    pub fn add(&self, other: &Self) -> Self {
        Self {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a.add(b))
                .collect(),
        }
    }

    pub fn sub(&self, other: &Self) -> Self {
        Self {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a.sub(b))
                .collect(),
        }
    }

    pub fn neg(&self) -> Self {
        Self {
            coeffs: self.coeffs.iter().map(ckks_math::BigInt::neg).collect(),
        }
    }

    /// Schoolbook negacyclic multiplication — `O(N²)` bignum products.
    /// This is deliberately the "slow multiprecision" path.
    pub fn mul(&self, other: &Self) -> Self {
        let n = self.coeffs.len();
        assert_eq!(other.coeffs.len(), n);
        let mut out = vec![BigInt::zero(); n];
        for i in 0..n {
            if self.coeffs[i].is_zero() {
                continue;
            }
            for j in 0..n {
                if other.coeffs[j].is_zero() {
                    continue;
                }
                let prod = self.coeffs[i].mul(&other.coeffs[j]);
                let k = i + j;
                if k < n {
                    out[k] = out[k].add(&prod);
                } else {
                    out[k - n] = out[k - n].sub(&prod);
                }
            }
        }
        Self { coeffs: out }
    }

    pub fn mul_scalar(&self, s: &BigInt) -> Self {
        Self {
            coeffs: self.coeffs.iter().map(|c| c.mul(s)).collect(),
        }
    }

    /// Centered reduction of every coefficient mod `q`.
    pub fn reduce_centered(&self, q: &BigInt) -> Self {
        Self {
            coeffs: self.coeffs.iter().map(|c| c.rem_centered(q)).collect(),
        }
    }

    /// Division by a scalar with rounding to nearest (for rescale and
    /// key-switch mod-down in the bignum world).
    pub fn div_round(&self, d: &BigInt) -> Self {
        let half = d.shr(1);
        Self {
            coeffs: self
                .coeffs
                .iter()
                .map(|c| {
                    // round(c/d): floor((c + d/2)/d) via truncated div_rem,
                    // correcting toward -inf when the shifted value is
                    // negative with a nonzero remainder.
                    let shifted = c.add(&half);
                    let (q, r) = shifted.div_rem(d);
                    if r.is_negative() {
                        q.sub(&BigInt::one())
                    } else {
                        q
                    }
                })
                .collect(),
        }
    }

    pub fn max_abs_f64(&self) -> f64 {
        self.coeffs
            .iter()
            .map(|c| c.to_f64().abs())
            .fold(0.0, f64::max)
    }

    /// Galois automorphism `X ↦ X^k` (k odd, < 2N) — the bignum mirror of
    /// [`RnsPoly::automorphism`]: coefficient `i` lands at `i·k mod 2N`,
    /// negated when it wraps past `N` (negacyclic ring).
    pub fn automorphism(&self, k: usize) -> Self {
        let n = self.coeffs.len();
        assert!(k % 2 == 1 && k < 2 * n, "galois element must be odd, < 2N");
        let mut out = vec![BigInt::zero(); n];
        for (i, c) in self.coeffs.iter().enumerate() {
            let j = (i * k) % (2 * n);
            if j < n {
                out[j] = out[j].add(c);
            } else {
                out[j - n] = out[j - n].sub(c);
            }
        }
        Self { coeffs: out }
    }
}

/// The bignum CKKS baseline scheme (textbook, §II of the paper).
pub struct BigCkks {
    ctx: Arc<CkksContext>,
    n: usize,
}

/// Ciphertext of the bignum scheme.
#[derive(Debug, Clone)]
pub struct BigCiphertext {
    pub c0: BigPoly,
    pub c1: BigPoly,
    pub scale: f64,
    pub level: usize,
}

/// Bignum key material (secret, public, relinearization).
pub struct BigKeys {
    pub s: BigPoly,
    pub pk: (BigPoly, BigPoly),
    /// `ek = (-a·s + e + P·s², a) mod P·Q_L`.
    pub ek: (BigPoly, BigPoly),
}

/// Bignum Galois (rotation/conjugation) keys: for each Galois element
/// `g`, a switching key from `σ_g(s)` back to `s`, over `P·Q_L`.
pub struct BigGaloisKeys {
    keys: std::collections::BTreeMap<usize, (BigPoly, BigPoly)>,
}

impl BigGaloisKeys {
    pub fn get(&self, elem: usize) -> Option<&(BigPoly, BigPoly)> {
        self.keys.get(&elem)
    }

    pub fn elements(&self) -> impl Iterator<Item = usize> + '_ {
        self.keys.keys().copied()
    }
}

impl BigCkks {
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        let n = ctx.n();
        Self { ctx, n }
    }

    /// Modulus `Q_ℓ = Π_{i≤ℓ} q_i` — same primes as the RNS context.
    pub fn modulus_at(&self, level: usize) -> BigInt {
        self.ctx.level_basis(level).big_q().clone()
    }

    pub fn keygen(&self, sampler: &mut Sampler) -> BigKeys {
        let q_l = self.modulus_at(self.ctx.max_level());
        // Textbook CKKS (paper §II, Mult): ek lives over q_L² — the
        // auxiliary modulus equals the full ciphertext modulus, which is
        // what makes single-digit key switching low-noise (and what RNS
        // hybrid switching avoids paying for).
        let p = q_l.clone();
        let pq = q_l.mul(&p);

        let s_coeffs: Vec<i64> = sampler
            .hamming_ternary(self.n, 64.min(self.n / 2))
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let s = BigPoly::from_signed(&s_coeffs);

        let a = self.uniform_poly(&q_l, sampler);
        let e = self.error_poly(sampler);
        let b = a.mul(&s).neg().add(&e).reduce_centered(&q_l);

        // relin key over P·Q_L encrypting P·s²
        let a2 = self.uniform_poly(&pq, sampler);
        let e2 = self.error_poly(sampler);
        let ps2 = s.mul(&s).mul_scalar(&p);
        let ek0 = a2.mul(&s).neg().add(&e2).add(&ps2).reduce_centered(&pq);

        BigKeys {
            s,
            pk: (b, a),
            ek: (ek0, a2),
        }
    }

    fn uniform_poly(&self, q: &BigInt, sampler: &mut Sampler) -> BigPoly {
        // Sample extra limbs then reduce: statistically close to uniform,
        // adequate for a reference implementation.
        let bits = q.bits() + 64;
        let limbs = (bits as usize).div_ceil(64);
        BigPoly {
            coeffs: (0..self.n)
                .map(|_| {
                    let raw: Vec<u64> = (0..limbs).map(|_| rand::Rng::gen(sampler.rng())).collect();
                    BigInt::from_limbs(&raw).rem_centered(q)
                })
                .collect(),
        }
    }

    fn error_poly(&self, sampler: &mut Sampler) -> BigPoly {
        let e: Vec<i64> = sampler
            .cbd_error(self.n)
            .into_iter()
            .map(|x| x as i64)
            .collect();
        BigPoly::from_signed(&e)
    }

    /// Encrypts pre-scaled integer coefficients (`m = ⌊Δ·τ⁻¹(z)⌉`).
    pub fn encrypt_coeffs(
        &self,
        m: &BigPoly,
        scale: f64,
        keys: &BigKeys,
        sampler: &mut Sampler,
    ) -> BigCiphertext {
        let level = self.ctx.max_level();
        let q = self.modulus_at(level);
        let v_coeffs: Vec<i64> = sampler
            .zo_ternary(self.n)
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let v = BigPoly::from_signed(&v_coeffs);
        let e0 = self.error_poly(sampler);
        let e1 = self.error_poly(sampler);
        let c0 = v.mul(&keys.pk.0).add(&e0).add(m).reduce_centered(&q);
        let c1 = v.mul(&keys.pk.1).add(&e1).reduce_centered(&q);
        BigCiphertext {
            c0,
            c1,
            scale,
            level,
        }
    }

    /// Decrypts to raw scaled coefficients.
    pub fn decrypt_coeffs(&self, ct: &BigCiphertext, keys: &BigKeys) -> BigPoly {
        let q = self.modulus_at(ct.level);
        ct.c0.add(&ct.c1.mul(&keys.s)).reduce_centered(&q)
    }

    pub fn add(&self, a: &BigCiphertext, b: &BigCiphertext) -> BigCiphertext {
        assert_eq!(a.level, b.level);
        let q = self.modulus_at(a.level);
        BigCiphertext {
            c0: a.c0.add(&b.c0).reduce_centered(&q),
            c1: a.c1.add(&b.c1).reduce_centered(&q),
            scale: a.scale,
            level: a.level,
        }
    }

    pub fn sub(&self, a: &BigCiphertext, b: &BigCiphertext) -> BigCiphertext {
        assert_eq!(a.level, b.level);
        let q = self.modulus_at(a.level);
        BigCiphertext {
            c0: a.c0.sub(&b.c0).reduce_centered(&q),
            c1: a.c1.sub(&b.c1).reduce_centered(&q),
            scale: a.scale,
            level: a.level,
        }
    }

    pub fn negate(&self, a: &BigCiphertext) -> BigCiphertext {
        BigCiphertext {
            c0: a.c0.neg(),
            c1: a.c1.neg(),
            scale: a.scale,
            level: a.level,
        }
    }

    /// Switches the key under `d` using a switching key over `P·Q_L`:
    /// returns `round(d · kk / P) mod Q_ℓ`.
    fn key_switch(&self, d: &BigPoly, kk: &(BigPoly, BigPoly), q: &BigInt) -> (BigPoly, BigPoly) {
        let p = self.modulus_at(self.ctx.max_level());
        let u0 = d
            .mul(&kk.0)
            .reduce_centered(&q.mul(&p))
            .div_round(&p)
            .reduce_centered(q);
        let u1 = d
            .mul(&kk.1)
            .reduce_centered(&q.mul(&p))
            .div_round(&p)
            .reduce_centered(q);
        (u0, u1)
    }

    /// Full multiplication with GHS relinearization.
    pub fn multiply(&self, a: &BigCiphertext, b: &BigCiphertext, keys: &BigKeys) -> BigCiphertext {
        assert_eq!(a.level, b.level);
        let q = self.modulus_at(a.level);

        let d0 = a.c0.mul(&b.c0).reduce_centered(&q);
        let d1 = a.c0.mul(&b.c1).add(&a.c1.mul(&b.c0)).reduce_centered(&q);
        let d2 = a.c1.mul(&b.c1).reduce_centered(&q);

        // relin: round(d2 · ek / P) mod Q
        let (u0, u1) = self.key_switch(&d2, &keys.ek, &q);

        BigCiphertext {
            c0: d0.add(&u0).reduce_centered(&q),
            c1: d1.add(&u1).reduce_centered(&q),
            scale: a.scale * b.scale,
            level: a.level,
        }
    }

    /// Galois keys for the given rotation steps (plus conjugation if
    /// requested) — mirrors [`crate::keys::KeyGenerator::gen_galois_keys`].
    pub fn gen_galois_keys(
        &self,
        keys: &BigKeys,
        steps: &[i64],
        with_conjugate: bool,
        sampler: &mut Sampler,
    ) -> BigGaloisKeys {
        let q_l = self.modulus_at(self.ctx.max_level());
        let p = q_l.clone();
        let pq = q_l.mul(&p);
        let mut elems: Vec<usize> = steps
            .iter()
            .map(|&st| self.ctx.params().galois_element_for_rotation(st))
            .collect();
        if with_conjugate {
            elems.push(self.ctx.params().galois_element_conjugate());
        }
        let mut out = std::collections::BTreeMap::new();
        for g in elems {
            // gk_g = (-a·s + e + P·σ_g(s), a) over P·Q_L
            let a = self.uniform_poly(&pq, sampler);
            let e = self.error_poly(sampler);
            let sg = keys.s.automorphism(g).mul_scalar(&p);
            let b = a.mul(&keys.s).neg().add(&e).add(&sg).reduce_centered(&pq);
            out.insert(g, (b, a));
        }
        BigGaloisKeys { keys: out }
    }

    /// Rotation by `steps` slots (the textbook Rot of paper §II): apply
    /// the Galois automorphism to both components, then switch the `c1`
    /// part from `σ_g(s)` back to `s`.
    pub fn rotate(&self, ct: &BigCiphertext, steps: i64, gk: &BigGaloisKeys) -> BigCiphertext {
        let g = self.ctx.params().galois_element_for_rotation(steps);
        self.apply_galois(ct, g, gk)
    }

    /// Complex conjugation (`X ↦ X^{2N−1}`).
    pub fn conjugate(&self, ct: &BigCiphertext, gk: &BigGaloisKeys) -> BigCiphertext {
        let g = self.ctx.params().galois_element_conjugate();
        self.apply_galois(ct, g, gk)
    }

    fn apply_galois(&self, ct: &BigCiphertext, g: usize, gk: &BigGaloisKeys) -> BigCiphertext {
        let q = self.modulus_at(ct.level);
        let kk = gk
            .get(g)
            .unwrap_or_else(|| panic!("missing bignum galois key for element {g}"));
        let c0g = ct.c0.automorphism(g).reduce_centered(&q);
        let c1g = ct.c1.automorphism(g).reduce_centered(&q);
        let (u0, u1) = self.key_switch(&c1g, kk, &q);
        BigCiphertext {
            c0: c0g.add(&u0).reduce_centered(&q),
            c1: u1,
            scale: ct.scale,
            level: ct.level,
        }
    }

    /// Encodes real slot values into a scaled coefficient polynomial
    /// (`m = ⌊Δ·τ⁻¹(z)⌉`), ready for [`Self::encrypt_coeffs`].
    pub fn encode_slots(&self, values: &[f64], scale: f64) -> BigPoly {
        let slots = self.ctx.slots();
        assert!(values.len() <= slots, "too many slots");
        let mut padded = vec![ckks_math::fft::Complex::from(0.0); slots];
        for (p, &v) in padded.iter_mut().zip(values) {
            *p = ckks_math::fft::Complex::from(v);
        }
        let coeffs = self.ctx.embedding().slots_to_coeffs(&padded);
        BigPoly {
            coeffs: coeffs
                .iter()
                .map(|&c| BigInt::from_f64_rounded(c * scale))
                .collect(),
        }
    }

    /// Decrypts and decodes back to real slot values.
    pub fn decrypt_to_real(&self, ct: &BigCiphertext, keys: &BigKeys) -> Vec<f64> {
        let m = self.decrypt_coeffs(ct, keys);
        let coeffs_f: Vec<f64> = m.coeffs.iter().map(|c| c.to_f64() / ct.scale).collect();
        self.ctx
            .embedding()
            .coeffs_to_slots(&coeffs_f, self.ctx.slots())
            .iter()
            .map(|c| c.re)
            .collect()
    }

    /// Rescale: divide by the top prime `q_ℓ`.
    pub fn rescale(&self, ct: &BigCiphertext) -> BigCiphertext {
        assert!(ct.level >= 1);
        let q_top = BigInt::from_u64(self.ctx.chain_moduli()[ct.level].value());
        let q_next = self.modulus_at(ct.level - 1);
        BigCiphertext {
            c0: ct.c0.div_round(&q_top).reduce_centered(&q_next),
            c1: ct.c1.div_round(&q_top).reduce_centered(&q_next),
            scale: ct.scale / q_top.to_f64(),
            level: ct.level - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    fn tiny_ctx() -> Arc<CkksContext> {
        CkksParams::tiny(2).build()
    }

    /// N = 256 params keep the O(N²) schoolbook paths affordable.
    fn micro_ctx() -> Arc<CkksContext> {
        CkksParams {
            n: 256,
            chain_bits: vec![40, 26, 26],
            special_bits: vec![40],
            scale_bits: 26,
            security: crate::security::SecurityLevel::None,
        }
        .build()
    }

    #[test]
    fn bigpoly_ring_axioms() {
        let a = BigPoly::from_signed(&[1, 2, 3, 4]);
        let b = BigPoly::from_signed(&[-2, 0, 1, 5]);
        let c = BigPoly::from_signed(&[7, -1, 0, 2]);
        let ab = a.mul(&b);
        let ba = b.mul(&a);
        for (x, y) in ab.coeffs.iter().zip(&ba.coeffs) {
            assert_eq!(x, y);
        }
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        for (x, y) in lhs.coeffs.iter().zip(&rhs.coeffs) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn negacyclic_identity() {
        // X^{n/2} · X^{n/2} = X^n = -1
        let n = 8;
        let mut a = vec![0i64; n];
        a[4] = 1;
        let p = BigPoly::from_signed(&a);
        let sq = p.mul(&p);
        assert_eq!(sq.coeffs[0], BigInt::from_i64(-1));
        assert!(sq.coeffs[1..].iter().all(ckks_math::BigInt::is_zero));
    }

    #[test]
    fn rns_mul_matches_bignum_mul() {
        // The core cross-validation: double-CRT product == schoolbook
        // bignum product mod Q.
        let ctx = micro_ctx();
        let mut s = Sampler::from_seed(42);
        let level = 2usize;
        let indices: Vec<usize> = (0..=level).collect();
        let mut a = RnsPoly::uniform(
            Arc::clone(ctx.poly_ctx()),
            indices.clone(),
            Form::Coeff,
            &mut s,
        );
        let mut b = RnsPoly::uniform(Arc::clone(ctx.poly_ctx()), indices, Form::Coeff, &mut s);
        let big_a = BigPoly::from_rns(&ctx, &a);
        let big_b = BigPoly::from_rns(&ctx, &b);
        let q = ctx.level_basis(level).big_q().clone();
        let expect = big_a.mul(&big_b).reduce_centered(&q);

        a.ntt_forward();
        b.ntt_forward();
        a.mul_assign(&b);
        let got = BigPoly::from_rns(&ctx, &a);
        for (x, y) in got.coeffs.iter().zip(&expect.coeffs) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn bignum_scheme_encrypt_decrypt() {
        let ctx = micro_ctx();
        let scheme = BigCkks::new(Arc::clone(&ctx));
        let mut s = Sampler::from_seed(7);
        let keys = scheme.keygen(&mut s);
        let scale = ctx.params().scale();
        let m_coeffs: Vec<i64> = (0..ctx.n() as i64).map(|i| i * 1000 - 128_000).collect();
        let m = BigPoly::from_signed(&m_coeffs);
        let ct = scheme.encrypt_coeffs(&m, scale, &keys, &mut s);
        let back = scheme.decrypt_coeffs(&ct, &keys);
        for (got, want) in back.coeffs.iter().zip(&m.coeffs) {
            let diff = got.sub(want).to_f64().abs();
            assert!(diff <= 200.0, "noise too large: {diff}");
        }
    }

    #[test]
    fn bignum_scheme_add() {
        let ctx = micro_ctx();
        let scheme = BigCkks::new(Arc::clone(&ctx));
        let mut s = Sampler::from_seed(8);
        let keys = scheme.keygen(&mut s);
        let scale = ctx.params().scale();
        let a_coeffs: Vec<i64> = (0..ctx.n() as i64).map(|i| i * 500).collect();
        let b_coeffs: Vec<i64> = (0..ctx.n() as i64).map(|i| -i * 300 + 7).collect();
        let ca = scheme.encrypt_coeffs(&BigPoly::from_signed(&a_coeffs), scale, &keys, &mut s);
        let cb = scheme.encrypt_coeffs(&BigPoly::from_signed(&b_coeffs), scale, &keys, &mut s);
        let sum = scheme.add(&ca, &cb);
        let back = scheme.decrypt_coeffs(&sum, &keys);
        for (i, got) in back.coeffs.iter().enumerate() {
            let want = a_coeffs[i] + b_coeffs[i];
            let diff = got.sub(&BigInt::from_i64(want)).to_f64().abs();
            assert!(diff <= 400.0, "coeff {i}: {diff}");
        }
    }

    #[test]
    fn bignum_multiply_and_rescale_end_to_end() {
        // Encrypt x and y as slot-encoded vectors through the embedding,
        // multiply in the bignum scheme, decode, compare to x·y.
        let ctx = micro_ctx();
        let scheme = BigCkks::new(Arc::clone(&ctx));
        let mut s = Sampler::from_seed(9);
        let keys = scheme.keygen(&mut s);
        let scale = ctx.params().scale();

        let x: Vec<f64> = (0..ctx.slots()).map(|i| 0.4 + 0.001 * i as f64).collect();
        let y: Vec<f64> = (0..ctx.slots()).map(|i| -0.3 + 0.002 * i as f64).collect();
        let enc = |v: &[f64]| -> BigPoly {
            let padded: Vec<ckks_math::fft::Complex> = v
                .iter()
                .map(|&r| ckks_math::fft::Complex::from(r))
                .collect();
            let coeffs = ctx.embedding().slots_to_coeffs(&padded);
            BigPoly {
                coeffs: coeffs
                    .iter()
                    .map(|&c| BigInt::from_f64_rounded(c * scale))
                    .collect(),
            }
        };
        let cx = scheme.encrypt_coeffs(&enc(&x), scale, &keys, &mut s);
        let cy = scheme.encrypt_coeffs(&enc(&y), scale, &keys, &mut s);
        let prod = scheme.rescale(&scheme.multiply(&cx, &cy, &keys));
        let m = scheme.decrypt_coeffs(&prod, &keys);
        let coeffs_f: Vec<f64> = m.coeffs.iter().map(|c| c.to_f64() / prod.scale).collect();
        let slots = ctx.embedding().coeffs_to_slots(&coeffs_f, ctx.slots());
        for i in 0..8 {
            let want = x[i] * y[i];
            assert!(
                (slots[i].re - want).abs() < 1e-3,
                "slot {i}: {} vs {want}",
                slots[i].re
            );
        }
    }

    #[test]
    fn bignum_rotate_and_conjugate_act_on_slots() {
        let ctx = micro_ctx();
        let scheme = BigCkks::new(Arc::clone(&ctx));
        let mut s = Sampler::from_seed(11);
        let keys = scheme.keygen(&mut s);
        let gk = scheme.gen_galois_keys(&keys, &[1, 3], true, &mut s);
        let scale = ctx.params().scale();
        let x: Vec<f64> = (0..ctx.slots()).map(|i| 0.1 + 0.01 * i as f64).collect();
        let ct = scheme.encrypt_coeffs(&scheme.encode_slots(&x, scale), scale, &keys, &mut s);
        for steps in [1usize, 3] {
            let rot = scheme.rotate(&ct, steps as i64, &gk);
            let back = scheme.decrypt_to_real(&rot, &keys);
            for i in 0..8 {
                let want = x[(i + steps) % ctx.slots()];
                assert!(
                    (back[i] - want).abs() < 1e-3,
                    "steps {steps} slot {i}: {} vs {want}",
                    back[i]
                );
            }
        }
        // conjugation of a real vector is the identity on slots
        let conj = scheme.conjugate(&ct, &gk);
        let back = scheme.decrypt_to_real(&conj, &keys);
        for i in 0..8 {
            assert!((back[i] - x[i]).abs() < 1e-3, "conj slot {i}");
        }
    }

    #[test]
    fn bignum_rotate_matches_rns_rotate() {
        // The parity that completes the differential oracle: the RNS
        // evaluator's hybrid-keyswitched rotation and the bignum
        // textbook rotation decrypt to the same slots.
        let ctx = micro_ctx();
        let scheme = BigCkks::new(Arc::clone(&ctx));
        let mut s = Sampler::from_seed(12);
        let keys = scheme.keygen(&mut s);
        let gk_big = scheme.gen_galois_keys(&keys, &[2], false, &mut s);

        let mut kg = crate::keys::KeyGenerator::new(Arc::clone(&ctx), 12);
        let sk = kg.gen_secret_key();
        let pk = kg.gen_public_key(&sk);
        let gk_rns = kg.gen_galois_keys(&sk, &[2], false);
        let ev = crate::eval::Evaluator::new(Arc::clone(&ctx));
        let mut s2 = Sampler::from_seed(13);

        let scale = ctx.params().scale();
        let x: Vec<f64> = (0..ctx.slots()).map(|i| 0.2 - 0.003 * i as f64).collect();
        let ct_big = scheme.encrypt_coeffs(&scheme.encode_slots(&x, scale), scale, &keys, &mut s);
        let ct_rns = ev.encrypt_real(&x, &pk, &mut s2);

        let big = scheme.decrypt_to_real(&scheme.rotate(&ct_big, 2, &gk_big), &keys);
        let rns = ev.decrypt_to_real(&ev.rotate(&ct_rns, 2, &gk_rns), &sk);
        for i in 0..8 {
            let want = x[(i + 2) % ctx.slots()];
            assert!((big[i] - want).abs() < 1e-3, "bignum slot {i}");
            assert!((rns[i] - want).abs() < 1e-3, "rns slot {i}");
            assert!((big[i] - rns[i]).abs() < 2e-3, "worlds diverge at {i}");
        }
    }

    #[test]
    fn bignum_sub_negate_roundtrip() {
        let ctx = micro_ctx();
        let scheme = BigCkks::new(Arc::clone(&ctx));
        let mut s = Sampler::from_seed(14);
        let keys = scheme.keygen(&mut s);
        let scale = ctx.params().scale();
        let x: Vec<f64> = (0..ctx.slots()).map(|i| 0.3 + 0.002 * i as f64).collect();
        let y: Vec<f64> = (0..ctx.slots()).map(|i| -0.1 + 0.004 * i as f64).collect();
        let cx = scheme.encrypt_coeffs(&scheme.encode_slots(&x, scale), scale, &keys, &mut s);
        let cy = scheme.encrypt_coeffs(&scheme.encode_slots(&y, scale), scale, &keys, &mut s);
        let diff = scheme.decrypt_to_real(&scheme.sub(&cx, &cy), &keys);
        let ndiff = scheme.decrypt_to_real(&scheme.negate(&scheme.sub(&cy, &cx)), &keys);
        for i in 0..8 {
            let want = x[i] - y[i];
            assert!((diff[i] - want).abs() < 1e-3, "sub slot {i}");
            assert!((ndiff[i] - want).abs() < 1e-3, "neg(sub) slot {i}");
        }
    }

    #[test]
    fn rns_rescale_matches_bignum_rescale() {
        let ctx = tiny_ctx();
        let mut s = Sampler::from_seed(10);
        let level = 2usize;
        let indices: Vec<usize> = (0..=level).collect();
        let poly = RnsPoly::uniform(Arc::clone(ctx.poly_ctx()), indices, Form::Coeff, &mut s);
        // bignum: round(x / q_top) centered mod Q_{ℓ-1}
        let big = BigPoly::from_rns(&ctx, &poly);
        let q_top = BigInt::from_u64(ctx.chain_moduli()[level].value());
        let q_next = ctx.level_basis(level - 1).big_q().clone();
        let expect = big.div_round(&q_top).reduce_centered(&q_next);

        // RNS: the evaluator's rescale arithmetic, replicated on a bare poly
        let mut p = poly.clone();
        let qk = ctx.chain_moduli()[level];
        let half = qk.value() / 2;
        let last = p.limb(level).to_vec();
        for li in 0..level {
            let m = *p.limb_modulus(li);
            let qinv = ctx.rescale_inv(level)[li];
            let dst = p.limb_mut(li);
            for (dv, &r) in dst.iter_mut().zip(&last) {
                let lifted = if r > half {
                    m.neg(m.reduce(qk.value() - r))
                } else {
                    m.reduce(r)
                };
                *dv = m.mul(m.sub(*dv, lifted), qinv);
            }
        }
        p.drop_last_limb();
        let got = BigPoly::from_rns(&ctx, &p);
        // RNS rescale computes (x - [x]_{q_top})/q_top exactly; it differs
        // from round(x/q_top) by at most 1.
        for (x, y) in got.coeffs.iter().zip(&expect.coeffs) {
            let d = x.sub(y).to_f64().abs();
            assert!(d <= 1.0, "rescale mismatch {d}");
        }
    }
}
