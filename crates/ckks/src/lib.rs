//! # ckks
//!
//! A from-scratch implementation of the RNS variant of the CKKS
//! approximate homomorphic encryption scheme (Cheon–Kim–Kim–Song 2017;
//! full-RNS variant Cheon–Han–Kim–Kim–Song 2019), as used by the paper
//! *"Efficient Privacy-Preserving Convolutional Neural Networks with
//! CKKS-RNS for Encrypted Image Classification"*.
//!
//! Provides the scheme primitives of the paper's §II — `KeyGen`,
//! `Encrypt`, `Decrypt`, `Add`, `Mult` (+ relinearization), `Resc`,
//! `Rot` — over a double-CRT (RNS × NTT) polynomial representation, with
//! GHS (special-modulus) and BV key switching, HE-standard security
//! validation, a bignum reference implementation for cross-validation,
//! and binary serialization.

#![forbid(unsafe_code)]

pub mod bigckks;
pub mod ciphertext;
pub mod encoding;
pub mod error;
pub mod eval;
pub mod keys;
pub mod layout;
pub mod linalg;
pub mod noise;
pub mod params;
pub mod security;
pub mod serialize;

pub use ciphertext::Ciphertext;
// re-exported so evaluator callers can pin or inspect the SIMD kernel
// backend without a direct ckks-math dependency
pub use ckks_math::kernel;
pub use encoding::{decode, decode_real, encode, encode_constant, encode_real, Plaintext};
pub use error::HeError;
pub use eval::{Evaluator, PreparedScalar, SCALE_RTOL};
pub use keys::{GaloisKeys, KeyGenerator, KeySwitchKey, KsVariant, PublicKey, RelinKey, SecretKey};
pub use layout::{
    combine_rotation_steps, decode_batched, encode_batched, shard_combine, shard_split,
    split_rotation_steps, PackLayout, ShardPlan,
};
pub use params::{CkksContext, CkksParams};
pub use security::SecurityLevel;
