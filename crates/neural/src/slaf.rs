//! The CNN-HE-SLAF training protocol (paper §V.D):
//!
//! 1. train the model with ReLU activations;
//! 2. freeze the learned linear weights, replace every activation with a
//!    polynomial SLAF (warm-started from a least-squares ReLU fit);
//! 3. briefly retrain so the SLAF coefficients (and the rest of the
//!    network) adapt to the polynomial shape.
//!
//! The output is an HE-compatible model: every layer is either linear or
//! a polynomial, evaluable over CKKS ciphertexts.

use crate::layers::Sequential;
use crate::mnist::Dataset;
use crate::models::swap_activations_for_slaf;
use crate::train::{evaluate, train, TrainConfig};

/// Hyperparameters of the two-phase protocol.
#[derive(Debug, Clone)]
pub struct SlafProtocol {
    /// Phase-1 (ReLU) training config.
    pub pretrain: TrainConfig,
    /// Phase-2 (SLAF) retraining config — typically shorter and with a
    /// lower learning rate.
    pub retrain: TrainConfig,
    /// SLAF degree (the paper's experiments use 3).
    pub degree: usize,
    /// Fit interval radius for the warm start.
    pub radius: f32,
}

impl Default for SlafProtocol {
    fn default() -> Self {
        Self {
            pretrain: TrainConfig::default(),
            retrain: TrainConfig {
                epochs: 3,
                max_lr: 0.004,
                grad_clip: 0.5,
                ..Default::default()
            },
            degree: 3,
            radius: 6.0,
        }
    }
}

/// Result of running the protocol.
#[derive(Debug, Clone)]
pub struct SlafOutcome {
    pub relu_train_acc: f32,
    pub slaf_train_acc: f32,
}

/// Runs the full protocol on a ReLU model in place; afterwards `model`
/// is HE-compatible.
pub fn run_protocol(model: &mut Sequential, data: &Dataset, proto: &SlafProtocol) -> SlafOutcome {
    // Phase 1: ReLU training.
    train(model, data, &proto.pretrain);
    let relu_train_acc = evaluate(model, data);

    // Phase 2: swap + retrain.
    swap_activations_for_slaf(model, proto.degree, proto.radius);
    train(model, data, &proto.retrain);
    let slaf_train_acc = evaluate(model, data);

    SlafOutcome {
        relu_train_acc,
        slaf_train_acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist;
    use crate::models::{cnn1, ActKind};

    #[test]
    fn protocol_produces_he_compatible_model_with_small_acc_drop() {
        let data = mnist::synthetic(500, 21);
        let mut model = cnn1(ActKind::Relu, 21);
        let proto = SlafProtocol {
            pretrain: TrainConfig {
                epochs: 4,
                max_lr: 0.08,
                batch_size: 32,
                ..Default::default()
            },
            retrain: TrainConfig {
                epochs: 2,
                max_lr: 0.004,
                grad_clip: 0.5,
                batch_size: 32,
                ..Default::default()
            },
            ..Default::default()
        };
        let outcome = run_protocol(&mut model, &data, &proto);
        // all activations are now polynomials
        for l in &model.layers {
            assert_ne!(l.name(), "ReLU");
        }
        assert!(outcome.relu_train_acc > 0.5);
        // SLAF accuracy within a modest drop of ReLU (the paper reports
        // parity at scale; at this tiny budget allow more slack)
        assert!(
            outcome.slaf_train_acc > outcome.relu_train_acc - 0.25,
            "SLAF {} vs ReLU {}",
            outcome.slaf_train_acc,
            outcome.relu_train_acc
        );
    }
}
