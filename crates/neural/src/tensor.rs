//! A minimal dense tensor over `f32` with NCHW conventions.
//!
//! Deliberately small: the CNNs of the paper need 2-D and 4-D tensors,
//! elementwise arithmetic, matrix–vector products and im2col-free naive
//! convolutions (implemented in the layer modules). No broadcasting, no
//! views — shapes are explicit and checked.

/// Dense row-major tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// From raw data (length must match the shape's element count).
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} incompatible with {} elements",
            data.len()
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshape (same element count).
    pub fn reshape(&self, shape: &[usize]) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.numel(),
            "cannot reshape {:?} -> {shape:?}",
            self.shape
        );
        Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// 2-D indexing.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    #[inline]
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[i * cols + j]
    }

    /// 4-D (NCHW) indexing.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        &mut self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Elementwise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise in-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Fills with zeros (gradient reset).
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Index of the maximum element (argmax over flattened data).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.numel(), 120);
        assert_eq!(t.shape(), &[2, 3, 4, 5]);
        let f = Tensor::full(&[3], 7.0);
        assert!(f.data().iter().all(|&v| v == 7.0));
    }

    #[test]
    fn indexing_2d_and_4d() {
        let mut t = Tensor::zeros(&[2, 3]);
        *t.at2_mut(1, 2) = 5.0;
        assert_eq!(t.at2(1, 2), 5.0);
        assert_eq!(t.data()[5], 5.0);

        let mut u = Tensor::zeros(&[2, 3, 4, 5]);
        *u.at4_mut(1, 2, 3, 4) = -1.0;
        assert_eq!(u.at4(1, 2, 3, 4), -1.0);
        // last element
        assert_eq!(u.data()[119], -1.0);
    }

    #[test]
    fn arithmetic() {
        let mut a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![0.5, 0.5, 0.5]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[2.5, 3.5, 4.5]);
        a.scale(2.0);
        assert_eq!(a.data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.max_abs(), 9.0);
        assert!((a.mean() - 7.0).abs() < 1e-6);
        assert_eq!(a.argmax(), 2);
        a.zero_();
        assert_eq!(a.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn reshape_checks() {
        let t = Tensor::zeros(&[2, 6]);
        let r = t.reshape(&[3, 4]);
        assert_eq!(r.shape(), &[3, 4]);
    }

    #[test]
    #[should_panic]
    fn bad_reshape_panics() {
        let t = Tensor::zeros(&[2, 6]);
        let _ = t.reshape(&[5, 5]);
    }

    #[test]
    #[should_panic]
    fn bad_from_vec_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0; 5]);
    }
}
