//! SGD with momentum and the 1-cycle learning-rate policy
//! (Smith & Topin's "super-convergence", the paper's §V.D schedule).

use crate::layers::Sequential;

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum }
    }

    /// Applies one update step: `v ← μ·v − lr·g; w ← w + v`, then clears
    /// the gradients.
    pub fn step(&self, model: &mut Sequential) {
        let (lr, mu) = (self.lr, self.momentum);
        model.visit_params(&mut |p| {
            for i in 0..p.value.numel() {
                let g = p.grad.data()[i];
                let v = mu * p.velocity.data()[i] - lr * g;
                p.velocity.data_mut()[i] = v;
                p.value.data_mut()[i] += v;
            }
            p.grad.zero_();
        });
    }
}

/// 1-cycle learning-rate schedule: linear warm-up to `max_lr` over the
/// first `pct_up` fraction of steps, then linear annealing down to
/// `max_lr / final_div`.
pub struct OneCycle {
    pub max_lr: f32,
    pub total_steps: usize,
    pub pct_up: f32,
    pub final_div: f32,
}

impl OneCycle {
    pub fn new(max_lr: f32, total_steps: usize) -> Self {
        Self {
            max_lr,
            total_steps: total_steps.max(1),
            pct_up: 0.3,
            final_div: 25.0,
        }
    }

    /// Learning rate at step `t` (0-based).
    pub fn lr_at(&self, t: usize) -> f32 {
        let t = t.min(self.total_steps - 1) as f32;
        let up = (self.total_steps as f32 * self.pct_up).max(1.0);
        let start = self.max_lr / self.final_div;
        let end = self.max_lr / self.final_div;
        if t < up {
            start + (self.max_lr - start) * (t / up)
        } else {
            let down = (self.total_steps as f32 - up).max(1.0);
            self.max_lr - (self.max_lr - end) * ((t - up) / down)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Sequential};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = Sequential::new(vec![Box::new(Dense::new(2, 1, &mut rng))]);
        // fabricate a gradient of +1 on every weight
        model.visit_params(&mut |p| {
            for g in p.grad.data_mut() {
                *g = 1.0;
            }
        });
        let mut before = Vec::new();
        model.visit_params(&mut |p| before.extend_from_slice(p.value.data()));
        Sgd::new(0.1, 0.0).step(&mut model);
        let mut after = Vec::new();
        model.visit_params(&mut |p| after.extend_from_slice(p.value.data()));
        for (b, a) in before.iter().zip(&after) {
            assert!((a - (b - 0.1)).abs() < 1e-6);
        }
        // grads cleared
        model.visit_params(&mut |p| assert!(p.grad.data().iter().all(|&g| g == 0.0)));
    }

    #[test]
    fn momentum_accumulates() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = Sequential::new(vec![Box::new(Dense::new(1, 1, &mut rng))]);
        let opt = Sgd::new(0.1, 0.9);
        let mut before = Vec::new();
        model.visit_params(&mut |p| before.extend_from_slice(p.value.data()));
        // two steps of unit gradient: Δ = -0.1 then -0.1 + 0.9·(-0.1) = -0.19
        for _ in 0..2 {
            model.visit_params(&mut |p| p.grad.data_mut().iter_mut().for_each(|g| *g = 1.0));
            opt.step(&mut model);
        }
        let mut after = Vec::new();
        model.visit_params(&mut |p| after.extend_from_slice(p.value.data()));
        for (b, a) in before.iter().zip(&after) {
            assert!((a - (b - 0.29)).abs() < 1e-5, "before {b} after {a}");
        }
    }

    #[test]
    fn one_cycle_shape() {
        let sched = OneCycle::new(1.0, 100);
        let start = sched.lr_at(0);
        let peak = sched.lr_at(30);
        let end = sched.lr_at(99);
        assert!(start < peak);
        assert!((peak - 1.0).abs() < 0.05);
        assert!(end < peak);
        assert!((start - 1.0 / 25.0).abs() < 1e-5);
        // monotone up then down
        assert!(sched.lr_at(10) < sched.lr_at(20));
        assert!(sched.lr_at(60) > sched.lr_at(90));
    }

    #[test]
    fn sgd_can_fit_a_line() {
        // y = 3x - 1 learned by a 1-1 dense layer
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = Sequential::new(vec![Box::new(Dense::new(1, 1, &mut rng))]);
        let opt = Sgd::new(0.05, 0.9);
        let xs: Vec<f32> = (0..20).map(|i| i as f32 * 0.1 - 1.0).collect();
        for _ in 0..300 {
            let x = Tensor::from_vec(&[20, 1], xs.clone());
            let y = model.forward(&x, true);
            // L2 loss against 3x-1
            let mut grad = Tensor::zeros(&[20, 1]);
            for i in 0..20 {
                let want = 3.0 * xs[i] - 1.0;
                *grad.at2_mut(i, 0) = (y.at2(i, 0) - want) / 20.0;
            }
            model.backward(&grad);
            opt.step(&mut model);
        }
        let x = Tensor::from_vec(&[1, 1], vec![0.5]);
        let y = model.forward(&x, false);
        assert!((y.at2(0, 0) - 0.5).abs() < 0.05, "{}", y.at2(0, 0));
    }
}
