//! # neural
//!
//! A compact CNN training framework supporting the paper's experimental
//! pipeline: tensors, convolution / dense / batch-norm / pooling layers,
//! ReLU and polynomial (SLAF) activations with full backpropagation, SGD
//! with momentum under a 1-cycle learning-rate policy, Kaiming
//! initialization, and an MNIST substrate (real IDX loader + procedural
//! synthetic generator).
//!
//! The HE engine in `cnn-he` consumes models trained here: it extracts
//! the frozen weights and SLAF coefficients and re-evaluates the same
//! network over CKKS ciphertexts.

#![forbid(unsafe_code)]

pub mod augment;
pub mod init;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod mnist;
pub mod models;
pub mod optim;
pub mod serialize;
pub mod slaf;
pub mod tensor;
pub mod train;

pub use layers::{Layer, Param, Sequential};
pub use models::ActKind;
pub use tensor::Tensor;
