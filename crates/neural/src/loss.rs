//! Softmax cross-entropy — the paper's training loss.

use crate::tensor::Tensor;

/// Computes mean cross-entropy loss over a batch of logits `[n, classes]`
/// with integer labels, returning `(loss, dL/dlogits)`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2);
    let n = logits.shape()[0];
    let c = logits.shape()[1];
    assert_eq!(labels.len(), n);
    let mut grad = Tensor::zeros(&[n, c]);
    let mut loss = 0.0f32;
    for i in 0..n {
        let row = &logits.data()[i * c..(i + 1) * c];
        let label = labels[i];
        assert!(label < c, "label {label} out of range");
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let log_sum = sum.ln() + max;
        loss += log_sum - row[label];
        for j in 0..c {
            let p = exps[j] / sum;
            *grad.at2_mut(i, j) = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    (loss / n as f32, grad)
}

/// Classification accuracy of logits against labels.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let n = logits.shape()[0];
    let c = logits.shape()[1];
    let mut correct = 0usize;
    for i in 0..n {
        let row = &logits.data()[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        if pred == labels[i] {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Tensor::from_vec(&[2, 3], vec![10.0, 0.0, 0.0, 0.0, 0.0, 10.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 2]);
        assert!(loss < 0.01, "loss {loss}");
        assert_eq!(accuracy(&logits, &[0, 2]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 2]), 0.5);
    }

    #[test]
    fn uniform_logits_loss_is_log_c() {
        let logits = Tensor::zeros(&[1, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[4]);
        assert!((loss - 10f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_check() {
        let logits = Tensor::from_vec(&[2, 4], vec![0.5, -1.0, 2.0, 0.1, -0.3, 0.8, 0.0, 1.5]);
        let labels = [2usize, 1];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..8 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (l1, _) = softmax_cross_entropy(&lp, &labels);
            let (l2, _) = softmax_cross_entropy(&lm, &labels);
            let numeric = (l1 - l2) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: {numeric} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(&[1, 5], vec![1.0, 2.0, 3.0, -1.0, 0.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[3]);
        let sum: f32 = grad.data().iter().sum();
        assert!(sum.abs() < 1e-6);
    }

    #[test]
    fn numerical_stability_large_logits() {
        let logits = Tensor::from_vec(&[1, 3], vec![1000.0, 999.0, -1000.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }
}
