//! Training-time data augmentation for the digit datasets: integer pixel
//! shifts, small rotations and additive noise. Augmentation regularizes
//! the small synthetic training sets the reproduction uses and is
//! exposed as an option of the training harness.

use crate::mnist::{Dataset, PIXELS, SIDE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Augmentation configuration.
#[derive(Debug, Clone, Copy)]
pub struct AugmentSpec {
    /// Max absolute shift in pixels (x and y independently).
    pub max_shift: i32,
    /// Max absolute rotation in radians.
    pub max_rotate: f32,
    /// Std-dev of additive Gaussian pixel noise.
    pub noise_std: f32,
}

impl Default for AugmentSpec {
    fn default() -> Self {
        Self {
            max_shift: 2,
            max_rotate: 0.12,
            noise_std: 0.02,
        }
    }
}

/// Applies one random augmentation to a flat 28×28 image.
pub fn augment_image(img: &[f32], spec: &AugmentSpec, rng: &mut StdRng) -> Vec<f32> {
    assert_eq!(img.len(), PIXELS);
    let dx = rng.gen_range(-spec.max_shift..=spec.max_shift);
    let dy = rng.gen_range(-spec.max_shift..=spec.max_shift);
    let theta = rng.gen_range(-spec.max_rotate..=spec.max_rotate);
    let (cos, sin) = (theta.cos(), theta.sin());
    let c = (SIDE as f32 - 1.0) / 2.0;

    let mut out = vec![0.0f32; PIXELS];
    for y in 0..SIDE {
        for x in 0..SIDE {
            // inverse map: rotate around center, then shift
            let xf = x as f32 - c - dx as f32;
            let yf = y as f32 - c - dy as f32;
            let sx = cos * xf + sin * yf + c;
            let sy = -sin * xf + cos * yf + c;
            // bilinear sample
            let x0 = sx.floor();
            let y0 = sy.floor();
            let fx = sx - x0;
            let fy = sy - y0;
            let mut acc = 0.0f32;
            for (oy, wy) in [(0i32, 1.0 - fy), (1, fy)] {
                for (ox, wx) in [(0i32, 1.0 - fx), (1, fx)] {
                    let px = x0 as i32 + ox;
                    let py = y0 as i32 + oy;
                    if (0..SIDE as i32).contains(&px) && (0..SIDE as i32).contains(&py) {
                        acc += wy * wx * img[py as usize * SIDE + px as usize];
                    }
                }
            }
            let noise = if spec.noise_std > 0.0 {
                // Box–Muller
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                spec.noise_std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            } else {
                0.0
            };
            out[y * SIDE + x] = (acc + noise).clamp(0.0, 1.0);
        }
    }
    out
}

/// Produces an augmented copy of a dataset (`factor` augmented variants
/// appended per original image).
pub fn augment_dataset(data: &Dataset, spec: &AugmentSpec, factor: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut images = data.images.clone();
    let mut labels = data.labels.clone();
    for i in 0..data.len() {
        for _ in 0..factor {
            images.extend(augment_image(data.image(i), spec, &mut rng));
            labels.push(data.labels[i]);
        }
    }
    Dataset {
        images,
        labels,
        synthetic: data.synthetic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist;

    #[test]
    fn identity_augmentation_preserves_image() {
        let ds = mnist::synthetic(5, 1);
        let spec = AugmentSpec {
            max_shift: 0,
            max_rotate: 0.0,
            noise_std: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let out = augment_image(ds.image(0), &spec, &mut rng);
        for (a, b) in out.iter().zip(ds.image(0)) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn shift_moves_mass_but_preserves_ink() {
        let ds = mnist::synthetic(3, 3);
        let spec = AugmentSpec {
            max_shift: 2,
            max_rotate: 0.0,
            noise_std: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let img = ds.image(1);
        let out = augment_image(img, &spec, &mut rng);
        let ink_in: f32 = img.iter().sum();
        let ink_out: f32 = out.iter().sum();
        // bilinear + border clipping loses a little, never gains much
        assert!(
            (ink_out - ink_in).abs() / ink_in < 0.25,
            "{ink_in} vs {ink_out}"
        );
        assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn dataset_augmentation_grows_and_labels_follow() {
        let ds = mnist::synthetic(10, 5);
        let out = augment_dataset(&ds, &AugmentSpec::default(), 2, 6);
        assert_eq!(out.len(), 30);
        for i in 0..10 {
            // originals first, then factor copies per original
            assert_eq!(out.labels[10 + 2 * i], ds.labels[i]);
            assert_eq!(out.labels[10 + 2 * i + 1], ds.labels[i]);
        }
        assert_eq!(&out.images[..10 * PIXELS], &ds.images[..]);
    }

    #[test]
    fn augmentation_is_seeded() {
        let ds = mnist::synthetic(4, 7);
        let a = augment_dataset(&ds, &AugmentSpec::default(), 1, 9);
        let b = augment_dataset(&ds, &AugmentSpec::default(), 1, 9);
        let c = augment_dataset(&ds, &AugmentSpec::default(), 1, 10);
        assert_eq!(a.images, b.images);
        assert_ne!(a.images, c.images);
    }
}
