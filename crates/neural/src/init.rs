//! Kaiming (He) weight initialization — the paper's §V.D choice for
//! convolutional layers.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Samples from N(0, std²) via Box–Muller.
fn normal(rng: &mut StdRng, std: f32) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Kaiming-normal init for a conv weight `[out, in, k, k]`:
/// `std = √(2 / fan_in)`, `fan_in = in·k·k`.
pub fn kaiming_conv(out_ch: usize, in_ch: usize, k: usize, rng: &mut StdRng) -> Tensor {
    let fan_in = (in_ch * k * k) as f32;
    let std = (2.0 / fan_in).sqrt();
    let data = (0..out_ch * in_ch * k * k)
        .map(|_| normal(rng, std))
        .collect();
    Tensor::from_vec(&[out_ch, in_ch, k, k], data)
}

/// Kaiming-normal init for a dense weight `[out, in]`.
pub fn kaiming_dense(out_dim: usize, in_dim: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / in_dim as f32).sqrt();
    let data = (0..out_dim * in_dim).map(|_| normal(rng, std)).collect();
    Tensor::from_vec(&[out_dim, in_dim], data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn conv_init_statistics() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = kaiming_conv(64, 16, 3, &mut rng);
        let n = w.numel() as f32;
        let mean = w.data().iter().sum::<f32>() / n;
        let var = w
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        let want_var = 2.0 / (16.0 * 9.0);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!(
            (var - want_var).abs() / want_var < 0.15,
            "var {var} vs {want_var}"
        );
    }

    #[test]
    fn dense_init_statistics() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = kaiming_dense(100, 400, &mut rng);
        let n = w.numel() as f32;
        let var = w.data().iter().map(|v| v * v).sum::<f32>() / n;
        let want = 2.0 / 400.0;
        assert!((var - want).abs() / want < 0.2, "var {var} vs {want}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = kaiming_dense(4, 4, &mut StdRng::seed_from_u64(9));
        let b = kaiming_dense(4, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.data(), b.data());
    }
}
