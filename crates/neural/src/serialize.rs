//! Whole-model persistence for [`Sequential`] networks: every trainable
//! parameter plus BatchNorm running statistics, in a small versioned
//! binary format. Lets the benchmark harness train once and reuse models
//! across binaries, and gives downstream users checkpointing.

use crate::layers::{BatchNorm, Sequential};
use crate::tensor::Tensor;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: u32 = 0x4e4e_4d31; // "NNM1"

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.extend_from_slice(&(t.shape().len() as u32).to_le_bytes());
    for &d in t.shape() {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_tensor(data: &[u8], pos: &mut usize) -> Option<Tensor> {
    let u32_at = |data: &[u8], pos: &mut usize| -> Option<u32> {
        let b = data.get(*pos..*pos + 4)?;
        *pos += 4;
        Some(u32::from_le_bytes(b.try_into().unwrap()))
    };
    let rank = u32_at(data, pos)? as usize;
    if rank > 8 {
        return None;
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(u32_at(data, pos)? as usize);
    }
    let numel: usize = shape.iter().product();
    let bytes = data.get(*pos..*pos + 4 * numel)?;
    *pos += 4 * numel;
    let vals: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Some(Tensor::from_vec(&shape, vals))
}

/// Serializes a model's state (parameters + BN running statistics) to
/// bytes. The *architecture* is not stored — loading requires a
/// freshly-built model of the same shape (the usual state-dict
/// convention).
pub fn state_to_bytes(model: &mut Sequential) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    // parameters in visit order
    let mut params = Vec::new();
    model.visit_params(&mut |p| params.push(p.value.clone()));
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for t in &params {
        put_tensor(&mut out, t);
    }
    // BN running stats in layer order
    let mut stats = Vec::new();
    for layer in &model.layers {
        if let Some(bn) = layer.as_any().downcast_ref::<BatchNorm>() {
            stats.push(bn.running_mean.clone());
            stats.push(bn.running_var.clone());
        }
    }
    out.extend_from_slice(&(stats.len() as u32).to_le_bytes());
    for t in &stats {
        put_tensor(&mut out, t);
    }
    out
}

/// Error type for state loading.
#[derive(Debug, PartialEq, Eq)]
pub enum LoadError {
    BadFormat,
    ShapeMismatch,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadFormat => write!(f, "unrecognized or truncated model blob"),
            LoadError::ShapeMismatch => write!(f, "parameter shapes do not match the model"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Loads a state blob into a same-architecture model.
pub fn load_state(model: &mut Sequential, data: &[u8]) -> Result<(), LoadError> {
    let mut pos = 0usize;
    let magic = data.get(0..4).ok_or(LoadError::BadFormat)?;
    if u32::from_le_bytes(magic.try_into().unwrap()) != MAGIC {
        return Err(LoadError::BadFormat);
    }
    pos += 4;
    let count_b = data.get(pos..pos + 4).ok_or(LoadError::BadFormat)?;
    let count = u32::from_le_bytes(count_b.try_into().unwrap()) as usize;
    pos += 4;
    let mut tensors = Vec::with_capacity(count);
    for _ in 0..count {
        tensors.push(get_tensor(data, &mut pos).ok_or(LoadError::BadFormat)?);
    }
    // validate shapes first so a mismatch leaves the model untouched
    let mut shapes_ok = true;
    {
        let mut i = 0usize;
        model.visit_params(&mut |p| {
            if i >= tensors.len() || tensors[i].shape() != p.value.shape() {
                shapes_ok = false;
            }
            i += 1;
        });
        if i != tensors.len() {
            shapes_ok = false;
        }
    }
    if !shapes_ok {
        return Err(LoadError::ShapeMismatch);
    }
    {
        let mut i = 0usize;
        model.visit_params(&mut |p| {
            p.value = tensors[i].clone();
            p.grad.zero_();
            p.velocity.zero_();
            i += 1;
        });
    }

    // BN stats
    let count_b = data.get(pos..pos + 4).ok_or(LoadError::BadFormat)?;
    let scount = u32::from_le_bytes(count_b.try_into().unwrap()) as usize;
    pos += 4;
    let mut stats = Vec::with_capacity(scount);
    for _ in 0..scount {
        stats.push(get_tensor(data, &mut pos).ok_or(LoadError::BadFormat)?);
    }
    let mut si = 0usize;
    for layer in model.layers.iter_mut() {
        if layer.name() == "BatchNorm" {
            if si + 1 > stats.len() {
                return Err(LoadError::ShapeMismatch);
            }
            // downcast via Any is immutable; rebuild through the public
            // fields requires a mutable downcast — use the trait object's
            // as_any + unsafe-free approach: we re-visit with a concrete
            // check below.
            si += 2;
        }
    }
    if si != scount {
        return Err(LoadError::ShapeMismatch);
    }
    // second pass with mutable access
    let mut si = 0usize;
    for layer in model.layers.iter_mut() {
        if layer.name() == "BatchNorm" {
            let any = layer.as_any_mut();
            let bn = any
                .downcast_mut::<BatchNorm>()
                .ok_or(LoadError::ShapeMismatch)?;
            if stats[si].shape() != bn.running_mean.shape() {
                return Err(LoadError::ShapeMismatch);
            }
            bn.running_mean = stats[si].clone();
            bn.running_var = stats[si + 1].clone();
            si += 2;
        }
    }
    Ok(())
}

/// Convenience: save to a file.
pub fn save_model(model: &mut Sequential, path: &Path) -> std::io::Result<()> {
    let bytes = state_to_bytes(model);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)
}

/// Convenience: load from a file.
pub fn load_model(model: &mut Sequential, path: &Path) -> Result<(), LoadError> {
    let mut data = Vec::new();
    std::fs::File::open(path)
        .map_err(|_| LoadError::BadFormat)?
        .read_to_end(&mut data)
        .map_err(|_| LoadError::BadFormat)?;
    load_state(model, &data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist;
    use crate::models::{cnn1, cnn2, ActKind};
    use crate::train::{evaluate, train, TrainConfig};

    #[test]
    fn roundtrip_preserves_behaviour() {
        let data = mnist::synthetic(120, 77);
        let mut model = cnn1(ActKind::Relu, 77);
        train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let acc_before = evaluate(&mut model, &data);
        let blob = state_to_bytes(&mut model);

        let mut fresh = cnn1(ActKind::Relu, 12345); // different init
        let acc_fresh = evaluate(&mut fresh, &data);
        load_state(&mut fresh, &blob).unwrap();
        let acc_after = evaluate(&mut fresh, &data);
        assert_eq!(acc_before, acc_after);
        assert_ne!(acc_fresh, acc_after);
    }

    #[test]
    fn bn_running_stats_roundtrip() {
        let data = mnist::synthetic(60, 78);
        let mut model = cnn2(ActKind::Relu, 78);
        train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let blob = state_to_bytes(&mut model);
        let mut fresh = cnn2(ActKind::Relu, 999);
        load_state(&mut fresh, &blob).unwrap();
        // eval-mode outputs (which use running stats) must agree exactly
        let x = data.batch(&[0, 1, 2]).0;
        let a = model.forward(&x, false);
        let b = fresh.forward(&x, false);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn mismatched_architecture_rejected() {
        let mut m1 = cnn1(ActKind::Relu, 1);
        let blob = state_to_bytes(&mut m1);
        let mut m2 = cnn2(ActKind::Relu, 1);
        assert_eq!(load_state(&mut m2, &blob), Err(LoadError::ShapeMismatch));
    }

    #[test]
    fn garbage_rejected() {
        let mut m = cnn1(ActKind::Relu, 2);
        assert_eq!(load_state(&mut m, b"nope"), Err(LoadError::BadFormat));
        assert_eq!(load_state(&mut m, &[]), Err(LoadError::BadFormat));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ckks_rns_cnn_model_io");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("m.nnm");
        let mut m = cnn1(ActKind::slaf3(), 3);
        save_model(&mut m, &path).unwrap();
        let mut fresh = cnn1(ActKind::slaf3(), 999);
        load_model(&mut fresh, &path).unwrap();
        let x = crate::tensor::Tensor::zeros(&[1, 1, 28, 28]);
        assert_eq!(m.forward(&x, false).data(), fresh.forward(&x, false).data());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
