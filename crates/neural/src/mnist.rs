//! MNIST substrate.
//!
//! The paper evaluates on MNIST (LeCun & Cortes). This container has no
//! network access to the original IDX files, so per the substitution rule
//! this module provides:
//!
//! 1. an **IDX loader** that transparently uses real MNIST when the four
//!    standard files are present under `data/mnist/`, and
//! 2. a **procedural synthetic generator** producing 28×28 grayscale
//!    handwritten-style digits: per-class vector stroke templates rendered
//!    with randomized affine distortion, stroke thickness and pixel noise.
//!
//! The synthetic distribution exercises exactly the same code paths
//! (training, SLAF retraining, encrypted inference, accuracy accounting);
//! EXPERIMENTS.md reports which source each run used.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::io::Read;
use std::path::Path;

/// Image side length.
pub const SIDE: usize = 28;
/// Pixels per image.
pub const PIXELS: usize = SIDE * SIDE;
/// Number of classes.
pub const CLASSES: usize = 10;

/// A labelled digit dataset with pixel values normalized to `[0, 1]`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Row-major `[len × 784]` pixels in `[0,1]`.
    pub images: Vec<f32>,
    pub labels: Vec<usize>,
    /// Whether this came from real IDX files or the synthetic generator.
    pub synthetic: bool,
}

impl Dataset {
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The `i`-th image as a `[1, 1, 28, 28]` tensor.
    pub fn image_tensor(&self, i: usize) -> Tensor {
        Tensor::from_vec(
            &[1, 1, SIDE, SIDE],
            self.images[i * PIXELS..(i + 1) * PIXELS].to_vec(),
        )
    }

    /// A batch `[indices.len(), 1, 28, 28]`.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(indices.len() * PIXELS);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.images[i * PIXELS..(i + 1) * PIXELS]);
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(&[indices.len(), 1, SIDE, SIDE], data),
            labels,
        )
    }

    /// Raw pixels of image `i` (length 784).
    pub fn image(&self, i: usize) -> &[f32] {
        &self.images[i * PIXELS..(i + 1) * PIXELS]
    }
}

// -------------------------------------------------------------------
// IDX loading (real MNIST, used when available)
// -------------------------------------------------------------------

fn read_u32_be(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_be_bytes(b))
}

/// Loads an IDX image/label pair. Returns `None` on any I/O or format
/// problem (the caller falls back to synthetic data).
pub fn load_idx_pair(images_path: &Path, labels_path: &Path) -> Option<Dataset> {
    let mut imf = std::fs::File::open(images_path).ok()?;
    if read_u32_be(&mut imf).ok()? != 0x0803 {
        return None;
    }
    let count = read_u32_be(&mut imf).ok()? as usize;
    let rows = read_u32_be(&mut imf).ok()? as usize;
    let cols = read_u32_be(&mut imf).ok()? as usize;
    if rows != SIDE || cols != SIDE {
        return None;
    }
    let mut raw = vec![0u8; count * PIXELS];
    imf.read_exact(&mut raw).ok()?;

    let mut lbf = std::fs::File::open(labels_path).ok()?;
    if read_u32_be(&mut lbf).ok()? != 0x0801 {
        return None;
    }
    let lcount = read_u32_be(&mut lbf).ok()? as usize;
    if lcount != count {
        return None;
    }
    let mut lraw = vec![0u8; count];
    lbf.read_exact(&mut lraw).ok()?;

    Some(Dataset {
        images: raw.iter().map(|&b| b as f32 / 255.0).collect(),
        labels: lraw.iter().map(|&b| b as usize).collect(),
        synthetic: false,
    })
}

/// Loads `(train, test)` from `dir` if the standard files exist.
pub fn load_real(dir: &Path) -> Option<(Dataset, Dataset)> {
    let train = load_idx_pair(
        &dir.join("train-images-idx3-ubyte"),
        &dir.join("train-labels-idx1-ubyte"),
    )?;
    let test = load_idx_pair(
        &dir.join("t10k-images-idx3-ubyte"),
        &dir.join("t10k-labels-idx1-ubyte"),
    )?;
    Some((train, test))
}

// -------------------------------------------------------------------
// Synthetic generator
// -------------------------------------------------------------------

type Point = (f32, f32);

/// Stroke templates per digit, in a unit box with (0,0) top-left.
/// Curves are pre-sampled into polylines.
fn digit_strokes(digit: usize) -> Vec<Vec<Point>> {
    fn arc(cx: f32, cy: f32, rx: f32, ry: f32, a0: f32, a1: f32, n: usize) -> Vec<Point> {
        (0..=n)
            .map(|i| {
                let t = a0 + (a1 - a0) * i as f32 / n as f32;
                (cx + rx * t.cos(), cy + ry * t.sin())
            })
            .collect()
    }
    use std::f32::consts::PI;
    match digit {
        0 => vec![arc(0.5, 0.5, 0.28, 0.38, 0.0, 2.0 * PI, 24)],
        1 => vec![vec![(0.35, 0.3), (0.52, 0.12), (0.52, 0.88)]],
        2 => vec![{
            let mut s = arc(0.5, 0.3, 0.24, 0.18, -PI, 0.35, 12);
            s.extend([(0.3, 0.85), (0.3, 0.88), (0.75, 0.88)]);
            s
        }],
        3 => vec![{
            let mut s = arc(0.45, 0.3, 0.22, 0.18, -PI * 0.9, PI * 0.45, 10);
            s.extend(arc(0.45, 0.68, 0.25, 0.2, -PI * 0.45, PI * 0.9, 10));
            s
        }],
        4 => vec![
            vec![(0.62, 0.1), (0.25, 0.6), (0.8, 0.6)],
            vec![(0.62, 0.35), (0.62, 0.9)],
        ],
        5 => vec![{
            let mut s = vec![(0.72, 0.12), (0.32, 0.12), (0.3, 0.45)];
            s.extend(arc(0.48, 0.65, 0.24, 0.22, -PI / 2.0, PI * 0.8, 12));
            s
        }],
        6 => vec![{
            let mut s = vec![(0.62, 0.1)];
            s.extend(arc(0.48, 0.65, 0.22, 0.24, -PI * 0.8, PI * 1.2, 16));
            s
        }],
        7 => vec![vec![(0.25, 0.14), (0.75, 0.14), (0.42, 0.88)]],
        8 => vec![
            arc(0.5, 0.3, 0.2, 0.17, 0.0, 2.0 * PI, 16),
            arc(0.5, 0.67, 0.24, 0.2, 0.0, 2.0 * PI, 16),
        ],
        9 => vec![{
            let mut s = arc(0.52, 0.33, 0.2, 0.2, 0.0, 2.0 * PI, 16);
            s.extend([(0.72, 0.33), (0.66, 0.9)]);
            s
        }],
        _ => panic!("digit out of range"),
    }
}

fn dist_to_segment(p: Point, a: Point, b: Point) -> f32 {
    let (px, py) = p;
    let (ax, ay) = a;
    let (bx, by) = b;
    let dx = bx - ax;
    let dy = by - ay;
    let len2 = dx * dx + dy * dy;
    let t = if len2 <= 1e-12 {
        0.0
    } else {
        (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0)
    };
    let cx = ax + t * dx;
    let cy = ay + t * dy;
    ((px - cx) * (px - cx) + (py - cy) * (py - cy)).sqrt()
}

/// Renders one randomized digit image into `out` (784 floats in [0,1]).
fn render_digit(digit: usize, rng: &mut StdRng, out: &mut [f32]) {
    let strokes = digit_strokes(digit);
    // random affine: rotation, anisotropic scale, shear, translation
    let theta = rng.gen_range(-0.22f32..0.22);
    let sx = rng.gen_range(0.82f32..1.12);
    let sy = rng.gen_range(0.82f32..1.12);
    let shear = rng.gen_range(-0.18f32..0.18);
    let tx = rng.gen_range(-0.06f32..0.06);
    let ty = rng.gen_range(-0.06f32..0.06);
    let (cos, sin) = (theta.cos(), theta.sin());
    let thickness = rng.gen_range(0.035f32..0.065);

    let transform = |(x, y): Point| -> Point {
        // center, shear+scale, rotate, translate back
        let (x, y) = (x - 0.5, y - 0.5);
        let (x, y) = (sx * (x + shear * y), sy * y);
        let (x, y) = (cos * x - sin * y, sin * x + cos * y);
        (x + 0.5 + tx, y + 0.5 + ty)
    };
    let strokes: Vec<Vec<Point>> = strokes
        .into_iter()
        .map(|s| s.into_iter().map(transform).collect())
        .collect();

    let aa = 0.02f32; // antialias band
    for py in 0..SIDE {
        for px in 0..SIDE {
            // pixel center in unit coords (2-pixel margin like MNIST)
            let ux = (px as f32 + 0.5) / SIDE as f32;
            let uy = (py as f32 + 0.5) / SIDE as f32;
            let mut d = f32::MAX;
            for s in &strokes {
                for w in s.windows(2) {
                    d = d.min(dist_to_segment((ux, uy), w[0], w[1]));
                }
            }
            let v = if d <= thickness {
                1.0
            } else if d <= thickness + aa {
                1.0 - (d - thickness) / aa
            } else {
                0.0
            };
            // mild intensity jitter on ink
            let noise = rng.gen_range(-0.04f32..0.04);
            out[py * SIDE + px] = (v + if v > 0.0 { noise } else { 0.0 }).clamp(0.0, 1.0);
        }
    }
}

/// Generates a synthetic dataset of `count` images with balanced classes.
pub fn synthetic(count: usize, seed: u64) -> Dataset {
    let mut images = vec![0.0f32; count * PIXELS];
    let labels: Vec<usize> = (0..count).map(|i| i % CLASSES).collect();
    images
        .par_chunks_mut(PIXELS)
        .enumerate()
        .for_each(|(i, chunk)| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            render_digit(i % CLASSES, &mut rng, chunk);
        });
    Dataset {
        images,
        labels,
        synthetic: true,
    }
}

/// Loads real MNIST from `data/mnist/` when present, otherwise generates
/// synthetic train/test sets of the requested sizes.
pub fn load_or_synthesize(train_count: usize, test_count: usize, seed: u64) -> (Dataset, Dataset) {
    for base in ["data/mnist", "../data/mnist", "../../data/mnist"] {
        if let Some((mut train, mut test)) = load_real(Path::new(base)) {
            // truncate to requested sizes for comparable runtimes
            if train.len() > train_count {
                train.images.truncate(train_count * PIXELS);
                train.labels.truncate(train_count);
            }
            if test.len() > test_count {
                test.images.truncate(test_count * PIXELS);
                test.labels.truncate(test_count);
            }
            return (train, test);
        }
    }
    (
        synthetic(train_count, seed),
        synthetic(test_count, seed.wrapping_add(0xDEAD_BEEF)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_shapes_and_ranges() {
        let ds = synthetic(50, 1);
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.images.len(), 50 * PIXELS);
        assert!(ds.images.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(ds.synthetic);
        // balanced classes
        for c in 0..CLASSES {
            assert_eq!(ds.labels.iter().filter(|&&l| l == c).count(), 5);
        }
    }

    #[test]
    fn digits_have_ink_and_background() {
        let ds = synthetic(20, 2);
        for i in 0..20 {
            let img = ds.image(i);
            let ink: f32 = img.iter().sum();
            assert!(ink > 10.0, "image {i} nearly empty (ink {ink})");
            assert!(ink < 500.0, "image {i} nearly full (ink {ink})");
        }
    }

    #[test]
    fn different_seeds_differ_same_seed_reproduces() {
        let a = synthetic(10, 7);
        let b = synthetic(10, 7);
        let c = synthetic(10, 8);
        assert_eq!(a.images, b.images);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn classes_are_visually_distinct() {
        // mean intra-class L2 distance should be well below inter-class
        let ds = synthetic(200, 3);
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>()
        };
        let mut intra = 0.0;
        let mut intra_n = 0;
        let mut inter = 0.0;
        let mut inter_n = 0;
        for i in 0..60 {
            for j in (i + 1)..60 {
                let d = dist(ds.image(i), ds.image(j));
                if ds.labels[i] == ds.labels[j] {
                    intra += d;
                    intra_n += 1;
                } else {
                    inter += d;
                    inter_n += 1;
                }
            }
        }
        let intra = intra / intra_n as f32;
        let inter = inter / inter_n as f32;
        assert!(
            intra < inter * 0.8,
            "classes not separable: intra {intra} vs inter {inter}"
        );
    }

    #[test]
    fn batch_extraction() {
        let ds = synthetic(10, 4);
        let (batch, labels) = ds.batch(&[0, 3, 7]);
        assert_eq!(batch.shape(), &[3, 1, SIDE, SIDE]);
        assert_eq!(labels, vec![0, 3, 7]);
        assert_eq!(&batch.data()[..PIXELS], ds.image(0));
    }

    #[test]
    fn idx_loader_rejects_garbage() {
        let dir = std::env::temp_dir().join("ckks_rns_cnn_test_idx");
        let _ = std::fs::create_dir_all(&dir);
        let img = dir.join("train-images-idx3-ubyte");
        std::fs::write(&img, b"not an idx file").unwrap();
        let lbl = dir.join("train-labels-idx1-ubyte");
        std::fs::write(&lbl, b"junk").unwrap();
        assert!(load_idx_pair(&img, &lbl).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
