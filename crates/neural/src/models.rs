//! The paper's two architectures (Figs. 3 and 4).
//!
//! * **CNN1** — a Lo-La variant: one convolution, two dense layers, with
//!   activations after the convolution and the first dense layer.
//! * **CNN2** — CryptoNets-based: two convolutions, each followed by a
//!   batch-normalization layer *before* its activation, then two dense
//!   layers.
//!
//! Both accept 28×28 grayscale inputs and emit 10 logits. The `ActKind`
//! parameter selects the activation family: ReLU for the initial training
//! pass, Square for the CryptoNets baseline, or a degree-`d` SLAF for the
//! HE-compatible form.

use crate::layers::{
    BatchNorm, Conv2d, Dense, Flatten, Layer, PolyActivation, Relu, Sequential, Square,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Activation family used when instantiating a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActKind {
    Relu,
    Square,
    /// SLAF of the given degree, warm-started from a least-squares ReLU
    /// fit on `[-radius, radius]`.
    Slaf {
        degree: usize,
        radius: f32,
    },
}

impl ActKind {
    /// The paper's default: degree-3 SLAF.
    pub fn slaf3() -> Self {
        ActKind::Slaf {
            degree: 3,
            radius: 4.0,
        }
    }

    fn make(&self) -> Box<dyn Layer> {
        match *self {
            ActKind::Relu => Box::new(Relu::new()),
            ActKind::Square => Box::new(Square::new()),
            ActKind::Slaf { degree, radius } => Box::new(PolyActivation::with_coeffs(
                &crate::layers::activation::relu_poly_fit(degree, radius, 512),
            )),
        }
    }
}

/// CNN1 geometry constants.
pub mod cnn1_shape {
    pub const CONV_OUT_CH: usize = 5;
    pub const CONV_K: usize = 5;
    pub const CONV_STRIDE: usize = 2;
    pub const CONV_PAD: usize = 1;
    /// 28 → (28+2−5)/2+1 = 13.
    pub const CONV_OUT_HW: usize = 13;
    pub const FLAT: usize = CONV_OUT_CH * CONV_OUT_HW * CONV_OUT_HW; // 845
    pub const HIDDEN: usize = 100;
    pub const CLASSES: usize = 10;
}

/// Builds CNN1 (Fig. 3): `Conv(1→5, 5×5, s2, p1) → act → Dense(845→100)
/// → act → Dense(100→10)`.
pub fn cnn1(act: ActKind, seed: u64) -> Sequential {
    use cnn1_shape::*;
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Box::new(Conv2d::new(
            1,
            CONV_OUT_CH,
            CONV_K,
            CONV_STRIDE,
            CONV_PAD,
            &mut rng,
        )),
        act.make(),
        Box::new(Flatten::new()),
        Box::new(Dense::new(FLAT, HIDDEN, &mut rng)),
        act.make(),
        Box::new(Dense::new(HIDDEN, CLASSES, &mut rng)),
    ])
}

/// CNN2 geometry constants.
pub mod cnn2_shape {
    pub const CONV1_OUT_CH: usize = 5;
    pub const CONV1_K: usize = 5;
    pub const CONV1_STRIDE: usize = 2;
    pub const CONV1_PAD: usize = 1;
    /// 28 → 13.
    pub const CONV1_OUT_HW: usize = 13;
    pub const CONV2_OUT_CH: usize = 50;
    pub const CONV2_K: usize = 5;
    pub const CONV2_STRIDE: usize = 2;
    pub const CONV2_PAD: usize = 0;
    /// 13 → (13−5)/2+1 = 5.
    pub const CONV2_OUT_HW: usize = 5;
    pub const FLAT: usize = CONV2_OUT_CH * CONV2_OUT_HW * CONV2_OUT_HW; // 1250
    pub const HIDDEN: usize = 100;
    pub const CLASSES: usize = 10;
}

/// Builds CNN2 (Fig. 4): `Conv(1→5) → BN → act → Conv(5→50) → BN → act →
/// Dense(1250→100) → act → Dense(100→10)` — CryptoNets' 50-map second
/// convolution.
pub fn cnn2(act: ActKind, seed: u64) -> Sequential {
    use cnn2_shape::*;
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Box::new(Conv2d::new(
            1,
            CONV1_OUT_CH,
            CONV1_K,
            CONV1_STRIDE,
            CONV1_PAD,
            &mut rng,
        )),
        Box::new(BatchNorm::new(CONV1_OUT_CH)),
        act.make(),
        Box::new(Conv2d::new(
            CONV1_OUT_CH,
            CONV2_OUT_CH,
            CONV2_K,
            CONV2_STRIDE,
            CONV2_PAD,
            &mut rng,
        )),
        Box::new(BatchNorm::new(CONV2_OUT_CH)),
        act.make(),
        Box::new(Flatten::new()),
        Box::new(Dense::new(FLAT, HIDDEN, &mut rng)),
        act.make(),
        Box::new(Dense::new(HIDDEN, CLASSES, &mut rng)),
    ])
}

/// Replaces every activation layer in `model` with a fresh SLAF of the
/// given degree (warm-started from the ReLU fit) — step 2 of the
/// CNN-HE-SLAF protocol. Other layers (and their trained weights) are
/// kept as-is.
pub fn swap_activations_for_slaf(model: &mut Sequential, degree: usize, radius: f32) {
    for layer in model.layers.iter_mut() {
        let is_act = matches!(layer.name(), "ReLU" | "Square" | "SLAF");
        if is_act {
            *layer = Box::new(PolyActivation::with_coeffs(
                &crate::layers::activation::relu_poly_fit(degree, radius, 512),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn cnn1_shapes() {
        let mut m = cnn1(ActKind::Relu, 1);
        let x = Tensor::zeros(&[2, 1, 28, 28]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[2, 10]);
        // parameter count: conv 5·1·25+5=130; dense1 845·100+100=84600;
        // dense2 100·10+10=1010 → 85740
        assert_eq!(m.num_params(), 130 + 84_600 + 1_010);
    }

    #[test]
    fn cnn2_shapes() {
        let mut m = cnn2(ActKind::slaf3(), 2);
        let x = Tensor::zeros(&[1, 1, 28, 28]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn describe_mentions_structure() {
        let m = cnn2(ActKind::slaf3(), 3);
        let d = m.describe();
        assert!(d.contains("Conv2d(1→5"));
        assert!(d.contains("BatchNorm(5)"));
        assert!(d.contains("SLAF(degree 3)"));
        assert!(d.contains("Dense(1250 → 100)"));
    }

    #[test]
    fn swap_preserves_weights() {
        let mut m = cnn1(ActKind::Relu, 4);
        let x = Tensor::from_vec(
            &[1, 1, 28, 28],
            (0..784).map(|i| (i % 7) as f32 * 0.1).collect(),
        );
        // conv output before swap (first layer only)
        let before = m.layers[0].forward(&x, false);
        swap_activations_for_slaf(&mut m, 3, 4.0);
        let after = m.layers[0].forward(&x, false);
        assert_eq!(before.data(), after.data(), "conv weights must survive");
        assert_eq!(m.layers[1].name(), "SLAF");
        assert_eq!(m.layers[4].name(), "SLAF");
    }

    #[test]
    fn cnn1_trains_one_step_without_panic() {
        let mut m = cnn1(ActKind::slaf3(), 5);
        let x = Tensor::zeros(&[4, 1, 28, 28]);
        let y = m.forward(&x, true);
        let g = Tensor::full(y.shape(), 0.1);
        let _ = m.backward(&g);
    }
}
