//! 2-D convolution (NCHW), naive direct loops parallelized with rayon.

use super::{Layer, Param};
use crate::init::kaiming_conv;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rayon::prelude::*;

/// `Conv2d(in_ch → out_ch, k×k, stride, pad)` with bias.
pub struct Conv2d {
    pub in_ch: usize,
    pub out_ch: usize,
    pub k: usize,
    pub stride: usize,
    pub pad: usize,
    pub weight: Param,
    pub bias: Param,
    cache_input: Option<Tensor>,
}

impl Conv2d {
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(k >= 1 && stride >= 1);
        let weight = kaiming_conv(out_ch, in_ch, k, rng);
        Self {
            in_ch,
            out_ch,
            k,
            stride,
            pad,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_ch])),
            cache_input: None,
        }
    }

    /// Output spatial size for an input of size `h`.
    pub fn out_size(&self, h: usize) -> usize {
        (h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Direct-loop forward used by both training and (with frozen weights)
    /// the plaintext reference path of the HE engine.
    pub fn forward_raw(&self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.in_ch, "channel mismatch");
        let oh = self.out_size(h);
        let ow = self.out_size(w);
        let mut out = Tensor::zeros(&[n, self.out_ch, oh, ow]);
        let wt = &self.weight.value;
        let bias = &self.bias.value;
        let (k, s, p) = (self.k, self.stride, self.pad);
        let out_plane = oh * ow;
        let per_image = self.out_ch * out_plane;

        out.data_mut()
            .par_chunks_mut(per_image)
            .enumerate()
            .for_each(|(ni, img)| {
                for o in 0..self.out_ch {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = bias.data()[o];
                            for ci in 0..c {
                                for ky in 0..k {
                                    let iy = oy * s + ky;
                                    if iy < p || iy - p >= h {
                                        continue;
                                    }
                                    for kx in 0..k {
                                        let ix = ox * s + kx;
                                        if ix < p || ix - p >= w {
                                            continue;
                                        }
                                        acc +=
                                            wt.at4(o, ci, ky, kx) * x.at4(ni, ci, iy - p, ix - p);
                                    }
                                }
                            }
                            img[o * out_plane + oy * ow + ox] = acc;
                        }
                    }
                }
            });
        out
    }
}

impl Layer for Conv2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let out = self.forward_raw(x);
        if train {
            self.cache_input = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_input
            .take()
            .expect("backward called before forward(train=true)");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let oh = self.out_size(h);
        let ow = self.out_size(w);
        let (k, s, p) = (self.k, self.stride, self.pad);

        // dW: each output channel's slice is independent → parallel over o.
        let wt_shape = self.weight.value.shape().to_vec();
        let dw_per_o = c * k * k;
        {
            let dw = &mut self.weight.grad;
            dw.data_mut()
                .par_chunks_mut(dw_per_o)
                .enumerate()
                .for_each(|(o, dwo)| {
                    for ci in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let mut acc = 0.0f32;
                                for ni in 0..n {
                                    for oy in 0..oh {
                                        let iy = oy * s + ky;
                                        if iy < p || iy - p >= h {
                                            continue;
                                        }
                                        for ox in 0..ow {
                                            let ix = ox * s + kx;
                                            if ix < p || ix - p >= w {
                                                continue;
                                            }
                                            acc += grad_out.at4(ni, o, oy, ox)
                                                * x.at4(ni, ci, iy - p, ix - p);
                                        }
                                    }
                                }
                                dwo[(ci * k + ky) * k + kx] += acc;
                            }
                        }
                    }
                });
        }
        let _ = wt_shape;

        // db
        for o in 0..self.out_ch {
            let mut acc = 0.0f32;
            for ni in 0..n {
                for oy in 0..oh {
                    for ox in 0..ow {
                        acc += grad_out.at4(ni, o, oy, ox);
                    }
                }
            }
            self.bias.grad.data_mut()[o] += acc;
        }

        // dX: parallel over batch images.
        let mut dx = Tensor::zeros(&[n, c, h, w]);
        let per_image_in = c * h * w;
        let wt = &self.weight.value;
        dx.data_mut()
            .par_chunks_mut(per_image_in)
            .enumerate()
            .for_each(|(ni, dimg)| {
                for o in 0..self.out_ch {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = grad_out.at4(ni, o, oy, ox);
                            if g == 0.0 {
                                continue;
                            }
                            for ci in 0..c {
                                for ky in 0..k {
                                    let iy = oy * s + ky;
                                    if iy < p || iy - p >= h {
                                        continue;
                                    }
                                    for kx in 0..k {
                                        let ix = ox * s + kx;
                                        if ix < p || ix - p >= w {
                                            continue;
                                        }
                                        dimg[(ci * h + (iy - p)) * w + (ix - p)] +=
                                            g * wt.at4(o, ci, ky, kx);
                                    }
                                }
                            }
                        }
                    }
                }
            });
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn describe(&self) -> String {
        format!(
            "Conv2d({}→{}, {}×{}, stride {}, pad {})",
            self.in_ch, self.out_ch, self.k, self.k, self.stride, self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn identity_kernel_passthrough() {
        // 1×1 kernel with weight 1 reproduces the input.
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng());
        conv.weight.value = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_convolution_value() {
        // 3×3 all-ones kernel over a 3×3 all-ones image, no pad → sums 9.
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, &mut rng());
        conv.weight.value = Tensor::full(&[1, 1, 3, 3], 1.0);
        conv.bias.value = Tensor::from_vec(&[1], vec![0.5]);
        let x = Tensor::full(&[1, 1, 3, 3], 1.0);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert!((y.data()[0] - 9.5).abs() < 1e-6);
    }

    #[test]
    fn stride_and_padding_shapes() {
        let conv = Conv2d::new(1, 5, 5, 2, 1, &mut rng());
        // 28×28, k=5, s=2, p=1 → (28+2-5)/2+1 = 13
        assert_eq!(conv.out_size(28), 13);
        let x = Tensor::zeros(&[2, 1, 28, 28]);
        let y = conv.forward_raw(&x);
        assert_eq!(y.shape(), &[2, 5, 13, 13]);
    }

    #[test]
    fn gradient_check_weights() {
        // finite-difference check on a tiny conv
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng());
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            (0..16).map(|i| (i as f32 - 8.0) * 0.1).collect(),
        );
        let y = conv.forward(&x, true);
        // loss = sum(y); dL/dy = ones
        let ones = Tensor::full(y.shape(), 1.0);
        let _ = conv.backward(&ones);

        let eps = 1e-3f32;
        for idx in [0usize, 5, 10, 17] {
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let lp: f32 = conv.forward_raw(&x).data().iter().sum();
            conv.weight.value.data_mut()[idx] = orig - eps;
            let lm: f32 = conv.forward_raw(&x).data().iter().sum();
            conv.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = conv.weight.grad.data()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut conv = Conv2d::new(2, 1, 3, 2, 1, &mut rng());
        let x = Tensor::from_vec(
            &[1, 2, 4, 4],
            (0..32).map(|i| ((i * 7) % 13) as f32 * 0.05).collect(),
        );
        let y = conv.forward(&x, true);
        let ones = Tensor::full(y.shape(), 1.0);
        let dx = conv.backward(&ones);

        let eps = 1e-3f32;
        for idx in [0usize, 9, 20, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let lp: f32 = conv.forward_raw(&xp).data().iter().sum();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lm: f32 = conv.forward_raw(&xm).data().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - dx.data()[idx]).abs() < 1e-2,
                "idx {idx}: {numeric} vs {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn batch_independence() {
        // processing a batch equals processing images separately
        let conv = Conv2d::new(1, 3, 3, 1, 0, &mut rng());
        let a = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| i as f32).collect());
        let b = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| -(i as f32)).collect());
        let mut both_data = a.data().to_vec();
        both_data.extend_from_slice(b.data());
        let both = Tensor::from_vec(&[2, 1, 4, 4], both_data);
        let ya = conv.forward_raw(&a);
        let yb = conv.forward_raw(&b);
        let yboth = conv.forward_raw(&both);
        let half = ya.numel();
        assert_eq!(&yboth.data()[..half], ya.data());
        assert_eq!(&yboth.data()[half..], yb.data());
    }
}
