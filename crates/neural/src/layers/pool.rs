//! Average pooling — the HE-compatible pooling (max has no polynomial
//! form; CryptoNets-style networks use mean/scaled-mean pooling).

use super::Layer;
use crate::tensor::Tensor;

/// `AvgPool2d(k, stride)`, no padding.
pub struct AvgPool2d {
    pub k: usize,
    pub stride: usize,
    cache_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    pub fn new(k: usize, stride: usize) -> Self {
        assert!(k >= 1 && stride >= 1);
        Self {
            k,
            stride,
            cache_shape: None,
        }
    }

    pub fn out_size(&self, h: usize) -> usize {
        (h - self.k) / self.stride + 1
    }
}

impl Layer for AvgPool2d {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let oh = self.out_size(h);
        let ow = self.out_size(w);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let inv = 1.0 / (self.k * self.k) as f32;
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                acc += x.at4(ni, ci, oy * self.stride + ky, ox * self.stride + kx);
                            }
                        }
                        *out.at4_mut(ni, ci, oy, ox) = acc * inv;
                    }
                }
            }
        }
        if train {
            self.cache_shape = Some(x.shape().to_vec());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cache_shape.take().expect("backward before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let oh = self.out_size(h);
        let ow = self.out_size(w);
        let inv = 1.0 / (self.k * self.k) as f32;
        let mut dx = Tensor::zeros(&shape);
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.at4(ni, ci, oy, ox) * inv;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                *dx.at4_mut(
                                    ni,
                                    ci,
                                    oy * self.stride + ky,
                                    ox * self.stride + kx,
                                ) += g;
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }

    fn describe(&self) -> String {
        format!("AvgPool2d({}×{}, stride {})", self.k, self.k, self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_windows() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|i| i as f32).collect());
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // window (0,0): 0,1,4,5 → 2.5
        assert!((y.at4(0, 0, 0, 0) - 2.5).abs() < 1e-6);
        assert!((y.at4(0, 0, 1, 1) - 12.5).abs() < 1e-6);
    }

    #[test]
    fn backward_distributes_evenly() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let _ = p.forward(&x, true);
        let g = Tensor::full(&[1, 1, 2, 2], 4.0);
        let dx = p.backward(&g);
        // every input cell receives 4/4 = 1
        assert!(dx.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn overlapping_windows_accumulate() {
        let mut p = AvgPool2d::new(2, 1);
        let x = Tensor::zeros(&[1, 1, 3, 3]);
        let _ = p.forward(&x, true);
        let g = Tensor::full(&[1, 1, 2, 2], 1.0);
        let dx = p.backward(&g);
        // center cell is in all 4 windows → 4 * 0.25 = 1.0
        assert!((dx.at4(0, 0, 1, 1) - 1.0).abs() < 1e-6);
        // corner cell is in 1 window → 0.25
        assert!((dx.at4(0, 0, 0, 0) - 0.25).abs() < 1e-6);
    }
}
