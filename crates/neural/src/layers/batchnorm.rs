//! Batch normalization (the paper's CNN2 inserts one before each
//! activation to keep SLAF inputs inside the approximated interval).
//!
//! Works on 4-D NCHW inputs (per-channel statistics over N×H×W) and 2-D
//! `[n, features]` inputs (per-feature statistics). At inference the
//! running statistics are used, which lets the HE engine *fold* the
//! normalization into the preceding linear layer (an affine map per
//! channel).

use super::{Layer, Param};
use crate::tensor::Tensor;

/// Batch normalization with learnable scale `γ` and shift `β`.
pub struct BatchNorm {
    pub features: usize,
    pub eps: f32,
    pub momentum: f32,
    pub gamma: Param,
    pub beta: Param,
    pub running_mean: Tensor,
    pub running_var: Tensor,
    // training-time caches
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor,
    batch_var: Vec<f32>,
    batch_mean: Vec<f32>,
    shape: Vec<usize>,
}

impl BatchNorm {
    pub fn new(features: usize) -> Self {
        Self {
            features,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new(Tensor::full(&[features], 1.0)),
            beta: Param::new(Tensor::zeros(&[features])),
            running_mean: Tensor::zeros(&[features]),
            running_var: Tensor::full(&[features], 1.0),
            cache: None,
        }
    }

    /// Per-feature element count and an indexer: maps flat index → feature.
    fn feature_of(shape: &[usize], idx: usize) -> usize {
        match shape.len() {
            2 => idx % shape[1],
            4 => (idx / (shape[2] * shape[3])) % shape[1],
            _ => panic!("BatchNorm supports 2-D and 4-D inputs"),
        }
    }

    /// The inference-time affine form: `y = a_c·x + b_c` with
    /// `a_c = γ_c/√(σ²_c+ε)`, `b_c = β_c − a_c·μ_c`. The HE engine uses
    /// these to fold BN into convolution weights.
    pub fn affine_params(&self) -> (Vec<f32>, Vec<f32>) {
        let mut a = Vec::with_capacity(self.features);
        let mut b = Vec::with_capacity(self.features);
        for c in 0..self.features {
            let scale = self.gamma.value.data()[c] / (self.running_var.data()[c] + self.eps).sqrt();
            a.push(scale);
            b.push(self.beta.value.data()[c] - scale * self.running_mean.data()[c]);
        }
        (a, b)
    }
}

impl Layer for BatchNorm {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let shape = x.shape().to_vec();
        let f = self.features;
        let count_per_feature = x.numel() / f;
        let mut out = Tensor::zeros(&shape);

        if train {
            // batch statistics
            let mut mean = vec![0.0f32; f];
            let mut var = vec![0.0f32; f];
            for (i, &v) in x.data().iter().enumerate() {
                mean[Self::feature_of(&shape, i)] += v;
            }
            for m in mean.iter_mut() {
                *m /= count_per_feature as f32;
            }
            for (i, &v) in x.data().iter().enumerate() {
                let c = Self::feature_of(&shape, i);
                var[c] += (v - mean[c]) * (v - mean[c]);
            }
            for v in var.iter_mut() {
                *v /= count_per_feature as f32;
            }
            // update running stats
            for c in 0..f {
                self.running_mean.data_mut()[c] =
                    (1.0 - self.momentum) * self.running_mean.data()[c] + self.momentum * mean[c];
                self.running_var.data_mut()[c] =
                    (1.0 - self.momentum) * self.running_var.data()[c] + self.momentum * var[c];
            }
            let mut x_hat = Tensor::zeros(&shape);
            for (i, &v) in x.data().iter().enumerate() {
                let c = Self::feature_of(&shape, i);
                let xh = (v - mean[c]) / (var[c] + self.eps).sqrt();
                x_hat.data_mut()[i] = xh;
                out.data_mut()[i] = self.gamma.value.data()[c] * xh + self.beta.value.data()[c];
            }
            self.cache = Some(BnCache {
                x_hat,
                batch_var: var,
                batch_mean: mean,
                shape,
            });
        } else {
            for (i, &v) in x.data().iter().enumerate() {
                let c = Self::feature_of(&shape, i);
                let xh = (v - self.running_mean.data()[c])
                    / (self.running_var.data()[c] + self.eps).sqrt();
                out.data_mut()[i] = self.gamma.value.data()[c] * xh + self.beta.value.data()[c];
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward before forward");
        let shape = cache.shape;
        let f = self.features;
        let m = grad_out.numel() / f; // elements per feature

        // parameter grads
        let mut dgamma = vec![0.0f32; f];
        let mut dbeta = vec![0.0f32; f];
        for (i, &g) in grad_out.data().iter().enumerate() {
            let c = Self::feature_of(&shape, i);
            dgamma[c] += g * cache.x_hat.data()[i];
            dbeta[c] += g;
        }
        for c in 0..f {
            self.gamma.grad.data_mut()[c] += dgamma[c];
            self.beta.grad.data_mut()[c] += dbeta[c];
        }

        // input grad (standard BN backward):
        // dx = γ/√(σ²+ε) · ( g − mean(g) − x̂·mean(g·x̂) )
        let mut dx = Tensor::zeros(&shape);
        for (i, &g) in grad_out.data().iter().enumerate() {
            let c = Self::feature_of(&shape, i);
            let inv_std = 1.0 / (cache.batch_var[c] + self.eps).sqrt();
            let term = g - dbeta[c] / m as f32 - cache.x_hat.data()[i] * dgamma[c] / m as f32;
            dx.data_mut()[i] = self.gamma.value.data()[c] * inv_std * term;
        }
        let _ = cache.batch_mean;
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "BatchNorm"
    }

    fn describe(&self) -> String {
        format!("BatchNorm({})", self.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm::new(2);
        // [n=4, c=2]: feature 0 has mean 10, feature 1 mean -5
        let x = Tensor::from_vec(&[4, 2], vec![9.0, -6.0, 11.0, -4.0, 10.0, -5.0, 10.0, -5.0]);
        let y = bn.forward(&x, true);
        // per-feature mean ≈ 0, var ≈ 1 (γ=1, β=0)
        let mut m0 = 0.0;
        let mut m1 = 0.0;
        for i in 0..4 {
            m0 += y.at2(i, 0);
            m1 += y.at2(i, 1);
        }
        assert!(m0.abs() < 1e-4 && m1.abs() < 1e-4);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        let x = Tensor::from_vec(&[4, 1], vec![2.0, 4.0, 6.0, 8.0]);
        // train several times to converge the running stats
        for _ in 0..200 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        // running mean ≈ 5, var ≈ 5 → y ≈ (x-5)/√5
        for i in 0..4 {
            let want = (x.at2(i, 0) - 5.0) / 5.0f32.sqrt();
            assert!(
                (y.at2(i, 0) - want).abs() < 0.05,
                "{} vs {want}",
                y.at2(i, 0)
            );
        }
    }

    #[test]
    fn affine_fold_matches_eval_forward() {
        let mut bn = BatchNorm::new(3);
        let x = Tensor::from_vec(&[2, 3], vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0]);
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        bn.gamma.value = Tensor::from_vec(&[3], vec![1.5, 0.5, -1.0]);
        bn.beta.value = Tensor::from_vec(&[3], vec![0.1, -0.2, 0.3]);
        let y = bn.forward(&x, false);
        let (a, b) = bn.affine_params();
        for i in 0..2 {
            for c in 0..3 {
                let want = a[c] * x.at2(i, c) + b[c];
                assert!((y.at2(i, c) - want).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gradient_check_4d() {
        let mut bn = BatchNorm::new(2);
        let x = Tensor::from_vec(
            &[2, 2, 2, 2],
            (0..16).map(|i| ((i * 5) % 11) as f32 * 0.3 - 1.0).collect(),
        );
        let y = bn.forward(&x, true);
        // loss = Σ y² / 2 → dL/dy = y
        let g = y.clone();
        let dx = bn.backward(&g);

        let eps = 1e-2f32;
        let loss = |bn: &mut BatchNorm, x: &Tensor| -> f32 {
            let y = bn.forward(x, true);
            let _ = bn.cache.take();
            y.data().iter().map(|v| v * v * 0.5).sum()
        };
        for idx in [0usize, 7, 15] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let lp = loss(&mut bn, &xp);
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lm = loss(&mut bn, &xm);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - dx.data()[idx]).abs() < 0.05,
                "idx {idx}: {numeric} vs {}",
                dx.data()[idx]
            );
        }
    }
}
