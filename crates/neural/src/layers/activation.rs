//! Activation functions: ReLU (pre-training), the CryptoNets square, and
//! the paper's Self-Learning Activation Function — a polynomial
//! `f(x) = a₀ + a₁x + … + a_d x^d` whose coefficients are trained by
//! backpropagation together with the model weights (Eq. 2).

use super::{Layer, Param};
use crate::tensor::Tensor;

/// Rectified linear unit. Used for the initial (non-HE-compatible)
/// training phase of the SLAF protocol.
#[derive(Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut out = x.clone();
        let mut mask = Vec::new();
        if train {
            mask.reserve(x.numel());
        }
        for v in out.data_mut() {
            let pos = *v > 0.0;
            if !pos {
                *v = 0.0;
            }
            if train {
                mask.push(pos);
            }
        }
        if train {
            self.mask = Some(mask);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("backward before forward");
        let mut dx = grad_out.clone();
        for (g, &m) in dx.data_mut().iter_mut().zip(&mask) {
            if !m {
                *g = 0.0;
            }
        }
        dx
    }

    fn name(&self) -> &'static str {
        "ReLU"
    }
}

/// `f(x) = x²` — CryptoNets' activation, the simplest HE-compatible
/// nonlinearity. Kept as a baseline.
#[derive(Default)]
pub struct Square {
    cache: Option<Tensor>,
}

impl Square {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Square {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut out = x.clone();
        for v in out.data_mut() {
            *v *= *v;
        }
        if train {
            self.cache = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.take().expect("backward before forward");
        let mut dx = grad_out.clone();
        for (g, &xi) in dx.data_mut().iter_mut().zip(x.data()) {
            *g *= 2.0 * xi;
        }
        dx
    }

    fn name(&self) -> &'static str {
        "Square"
    }
}

/// Self-Learning Activation Function (SLAF): a degree-`d` polynomial with
/// trainable coefficients, shared across the layer.
///
/// The paper initializes all coefficients to zero and lets SGD find the
/// shape; in the CNN-HE-SLAF protocol the model is first trained with
/// ReLU, then activations are swapped for SLAFs and the network is
/// briefly retrained.
pub struct PolyActivation {
    pub degree: usize,
    /// `coeffs.value.data()[k]` = aₖ.
    pub coeffs: Param,
    cache: Option<Tensor>,
}

impl PolyActivation {
    /// All-zero coefficients (the paper's initialization).
    pub fn new(degree: usize) -> Self {
        assert!(degree >= 1);
        Self {
            degree,
            coeffs: Param::new(Tensor::zeros(&[degree + 1])),
            cache: None,
        }
    }

    /// Starts from given coefficients (e.g. a least-squares ReLU fit used
    /// to warm-start SLAF retraining).
    pub fn with_coeffs(coeffs: &[f32]) -> Self {
        assert!(coeffs.len() >= 2);
        Self {
            degree: coeffs.len() - 1,
            coeffs: Param::new(Tensor::from_vec(&[coeffs.len()], coeffs.to_vec())),
            cache: None,
        }
    }

    /// Evaluates the polynomial on a scalar (Horner).
    pub fn eval_scalar(&self, x: f32) -> f32 {
        let c = self.coeffs.value.data();
        let mut acc = c[self.degree];
        for k in (0..self.degree).rev() {
            acc = acc * x + c[k];
        }
        acc
    }

    /// The polynomial coefficients as f64 (consumed by the HE engine).
    pub fn coeffs_f64(&self) -> Vec<f64> {
        self.coeffs.value.data().iter().map(|&c| c as f64).collect()
    }
}

impl Layer for PolyActivation {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut out = Tensor::zeros(x.shape());
        for (o, &xi) in out.data_mut().iter_mut().zip(x.data()) {
            *o = self.eval_scalar(xi);
        }
        if train {
            self.cache = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.take().expect("backward before forward");
        let c = self.coeffs.value.data().to_vec();
        let d = self.degree;

        // coefficient grads: dL/daₖ = Σ_i g_i · x_i^k
        let mut dc = vec![0.0f32; d + 1];
        // input grads: dL/dx_i = g_i · Σ_k k·aₖ·x^{k-1}
        let mut dx = grad_out.clone();
        for (i, (&g, &xi)) in grad_out.data().iter().zip(x.data()).enumerate() {
            let mut pow = 1.0f32;
            let mut deriv = 0.0f32;
            for (k, dck) in dc.iter_mut().enumerate() {
                *dck += g * pow;
                if k < d {
                    deriv += (k + 1) as f32 * c[k + 1] * pow;
                }
                pow *= xi;
            }
            dx.data_mut()[i] = g * deriv;
        }
        for (k, &v) in dc.iter().enumerate() {
            self.coeffs.grad.data_mut()[k] += v;
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.coeffs);
    }

    fn name(&self) -> &'static str {
        "SLAF"
    }

    fn describe(&self) -> String {
        format!("SLAF(degree {})", self.degree)
    }
}

/// Least-squares fit of a degree-`d` polynomial to ReLU on `[-r, r]` —
/// used to warm-start SLAF coefficients before retraining.
pub fn relu_poly_fit(degree: usize, radius: f32, samples: usize) -> Vec<f32> {
    // Solve the normal equations A^T A c = A^T y over `samples` points.
    let n = samples.max(degree * 4);
    let m = degree + 1;
    let mut ata = vec![0.0f64; m * m];
    let mut aty = vec![0.0f64; m];
    for i in 0..n {
        let x = -radius as f64 + 2.0 * radius as f64 * i as f64 / (n - 1) as f64;
        let y = x.max(0.0);
        let mut pows = vec![1.0f64; m];
        for k in 1..m {
            pows[k] = pows[k - 1] * x;
        }
        for r in 0..m {
            aty[r] += pows[r] * y;
            for c2 in 0..m {
                ata[r * m + c2] += pows[r] * pows[c2];
            }
        }
    }
    // Gaussian elimination with partial pivoting.
    let mut aug = vec![0.0f64; m * (m + 1)];
    for r in 0..m {
        for c2 in 0..m {
            aug[r * (m + 1) + c2] = ata[r * m + c2];
        }
        aug[r * (m + 1) + m] = aty[r];
    }
    for col in 0..m {
        let piv = (col..m)
            .max_by(|&a, &b| {
                aug[a * (m + 1) + col]
                    .abs()
                    .partial_cmp(&aug[b * (m + 1) + col].abs())
                    .unwrap()
            })
            .unwrap();
        if piv != col {
            for k in 0..=m {
                aug.swap(col * (m + 1) + k, piv * (m + 1) + k);
            }
        }
        let p = aug[col * (m + 1) + col];
        assert!(p.abs() > 1e-12, "singular normal equations");
        for r in 0..m {
            if r == col {
                continue;
            }
            let f = aug[r * (m + 1) + col] / p;
            for k in col..=m {
                aug[r * (m + 1) + k] -= f * aug[col * (m + 1) + k];
            }
        }
    }
    (0..m)
        .map(|r| (aug[r * (m + 1) + m] / aug[r * (m + 1) + r]) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[5], vec![-2.0, -0.5, 0.0, 0.5, 2.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 0.5, 2.0]);
        let g = Tensor::full(&[5], 1.0);
        let dx = relu.backward(&g);
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn square_forward_backward() {
        let mut sq = Square::new();
        let x = Tensor::from_vec(&[3], vec![-2.0, 0.5, 3.0]);
        let y = sq.forward(&x, true);
        assert_eq!(y.data(), &[4.0, 0.25, 9.0]);
        let g = Tensor::full(&[3], 1.0);
        let dx = sq.backward(&g);
        assert_eq!(dx.data(), &[-4.0, 1.0, 6.0]);
    }

    #[test]
    fn poly_evaluates_horner() {
        // f(x) = 1 + 2x + 3x² at x = 2 → 1 + 4 + 12 = 17
        let p = PolyActivation::with_coeffs(&[1.0, 2.0, 3.0]);
        assert!((p.eval_scalar(2.0) - 17.0).abs() < 1e-6);
        assert!((p.eval_scalar(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn poly_gradient_check() {
        let mut p = PolyActivation::with_coeffs(&[0.1, -0.5, 0.3, 0.02]);
        let x = Tensor::from_vec(&[4], vec![-1.0, -0.2, 0.4, 1.3]);
        let y = p.forward(&x, true);
        let g = y.clone(); // loss = Σ y²/2
        let dx = p.backward(&g);

        let eps = 1e-3f32;
        let loss = |p: &mut PolyActivation, x: &Tensor| -> f32 {
            let y = p.forward(x, false);
            y.data().iter().map(|v| v * v * 0.5).sum()
        };
        // input grads
        for idx in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (loss(&mut p, &xp) - loss(&mut p, &xm)) / (2.0 * eps);
            assert!(
                (numeric - dx.data()[idx]).abs() < 1e-2,
                "dx[{idx}]: {numeric} vs {}",
                dx.data()[idx]
            );
        }
        // coefficient grads
        for k in 0..4 {
            let orig = p.coeffs.value.data()[k];
            p.coeffs.value.data_mut()[k] = orig + eps;
            let lp = loss(&mut p, &x);
            p.coeffs.value.data_mut()[k] = orig - eps;
            let lm = loss(&mut p, &x);
            p.coeffs.value.data_mut()[k] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - p.coeffs.grad.data()[k]).abs() < 1e-2,
                "dc[{k}]: {numeric} vs {}",
                p.coeffs.grad.data()[k]
            );
        }
    }

    #[test]
    fn zero_init_poly_is_zero_function() {
        let mut p = PolyActivation::new(3);
        let x = Tensor::from_vec(&[3], vec![-1.0, 0.0, 2.0]);
        let y = p.forward(&x, false);
        assert!(y.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn relu_fit_is_decent() {
        let c = relu_poly_fit(3, 4.0, 200);
        assert_eq!(c.len(), 4);
        let p = PolyActivation::with_coeffs(&c);
        // check approximation quality at a few points
        let mut worst: f32 = 0.0;
        for i in 0..=20 {
            let x = -4.0 + 0.4 * i as f32;
            let err = (p.eval_scalar(x) - x.max(0.0)).abs();
            worst = worst.max(err);
        }
        assert!(worst < 0.6, "degree-3 ReLU fit too loose: {worst}");
        // and that it's convex-ish around 0 (positive x² coefficient)
        assert!(c[2] > 0.0);
    }
}
