//! NCHW → `[n, c·h·w]` flattening.

use super::Layer;
use crate::tensor::Tensor;

/// Flattens all non-batch dimensions.
#[derive(Default)]
pub struct Flatten {
    cache_shape: Option<Vec<usize>>,
}

impl Flatten {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        if train {
            self.cache_shape = Some(x.shape().to_vec());
        }
        x.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cache_shape.take().expect("backward before forward");
        grad_out.reshape(&shape)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(&[2, 3, 2, 2], (0..24).map(|i| i as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 12]);
        assert_eq!(y.data(), x.data());
        let back = f.backward(&y);
        assert_eq!(back.shape(), x.shape());
        assert_eq!(back.data(), x.data());
    }
}
