//! Fully-connected layer.

use super::{Layer, Param};
use crate::init::kaiming_dense;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rayon::prelude::*;

/// `Dense(in → out)`: `y = W·x + b`, weight shape `[out, in]`.
pub struct Dense {
    pub in_dim: usize,
    pub out_dim: usize,
    pub weight: Param,
    pub bias: Param,
    cache_input: Option<Tensor>,
}

impl Dense {
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            in_dim,
            out_dim,
            weight: Param::new(kaiming_dense(out_dim, in_dim, rng)),
            bias: Param::new(Tensor::zeros(&[out_dim])),
            cache_input: None,
        }
    }

    /// `y = W x + b` for a batch `[n, in]`.
    pub fn forward_raw(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Dense expects a 2-D input");
        let n = x.shape()[0];
        assert_eq!(x.shape()[1], self.in_dim, "input dim mismatch");
        let mut out = Tensor::zeros(&[n, self.out_dim]);
        let w = &self.weight.value;
        let b = &self.bias.value;
        out.data_mut()
            .par_chunks_mut(self.out_dim)
            .enumerate()
            .for_each(|(ni, row)| {
                let xrow = &x.data()[ni * self.in_dim..(ni + 1) * self.in_dim];
                for (o, r) in row.iter_mut().enumerate() {
                    let wrow = &w.data()[o * self.in_dim..(o + 1) * self.in_dim];
                    let mut acc = b.data()[o];
                    for (wi, xi) in wrow.iter().zip(xrow) {
                        acc += wi * xi;
                    }
                    *r = acc;
                }
            });
        out
    }
}

impl Layer for Dense {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let out = self.forward_raw(x);
        if train {
            self.cache_input = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_input
            .take()
            .expect("backward called before forward(train=true)");
        let n = x.shape()[0];

        // dW[o][i] = Σ_n g[n][o]·x[n][i] — parallel over output rows.
        {
            let dw = &mut self.weight.grad;
            let in_dim = self.in_dim;
            dw.data_mut()
                .par_chunks_mut(in_dim)
                .enumerate()
                .for_each(|(o, dwrow)| {
                    for ni in 0..n {
                        let g = grad_out.at2(ni, o);
                        if g == 0.0 {
                            continue;
                        }
                        let xrow = &x.data()[ni * in_dim..(ni + 1) * in_dim];
                        for (d, xi) in dwrow.iter_mut().zip(xrow) {
                            *d += g * xi;
                        }
                    }
                });
        }
        // db
        for o in 0..self.out_dim {
            let mut acc = 0.0;
            for ni in 0..n {
                acc += grad_out.at2(ni, o);
            }
            self.bias.grad.data_mut()[o] += acc;
        }
        // dX[n][i] = Σ_o g[n][o]·W[o][i] — parallel over batch.
        let mut dx = Tensor::zeros(&[n, self.in_dim]);
        let w = &self.weight.value;
        let in_dim = self.in_dim;
        let out_dim = self.out_dim;
        dx.data_mut()
            .par_chunks_mut(in_dim)
            .enumerate()
            .for_each(|(ni, dxrow)| {
                for o in 0..out_dim {
                    let g = grad_out.at2(ni, o);
                    if g == 0.0 {
                        continue;
                    }
                    let wrow = &w.data()[o * in_dim..(o + 1) * in_dim];
                    for (d, wi) in dxrow.iter_mut().zip(wrow) {
                        *d += g * wi;
                    }
                }
            });
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn describe(&self) -> String {
        format!("Dense({} → {})", self.in_dim, self.out_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2)
    }

    #[test]
    fn known_matvec() {
        let mut d = Dense::new(3, 2, &mut rng());
        d.weight.value = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5]);
        d.bias.value = Tensor::from_vec(&[2], vec![0.1, -0.1]);
        let x = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        let y = d.forward(&x, false);
        // row0: 1-3+0.1 = -1.9 ; row1: 2+2+1.5-0.1 = 5.4
        assert!((y.at2(0, 0) + 1.9).abs() < 1e-6);
        assert!((y.at2(0, 1) - 5.4).abs() < 1e-6);
    }

    #[test]
    fn gradient_check() {
        let mut d = Dense::new(4, 3, &mut rng());
        let x = Tensor::from_vec(&[2, 4], (0..8).map(|i| i as f32 * 0.25 - 1.0).collect());
        let y = d.forward(&x, true);
        let ones = Tensor::full(y.shape(), 1.0);
        let dx = d.backward(&ones);

        let eps = 1e-3f32;
        // weights
        for idx in [0usize, 5, 11] {
            let orig = d.weight.value.data()[idx];
            d.weight.value.data_mut()[idx] = orig + eps;
            let lp: f32 = d.forward_raw(&x).data().iter().sum();
            d.weight.value.data_mut()[idx] = orig - eps;
            let lm: f32 = d.forward_raw(&x).data().iter().sum();
            d.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - d.weight.grad.data()[idx]).abs() < 1e-2);
        }
        // inputs
        for idx in [0usize, 3, 7] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let lp: f32 = d.forward_raw(&xp).data().iter().sum();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lm: f32 = d.forward_raw(&xm).data().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - dx.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn bias_gradient_is_batch_sum() {
        let mut d = Dense::new(2, 2, &mut rng());
        let x = Tensor::from_vec(&[3, 2], vec![1.0; 6]);
        let _ = d.forward(&x, true);
        let g = Tensor::from_vec(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let _ = d.backward(&g);
        assert!((d.bias.grad.data()[0] - 9.0).abs() < 1e-6);
        assert!((d.bias.grad.data()[1] - 12.0).abs() < 1e-6);
    }
}
