//! Layer abstraction and the sequential container.

pub mod activation;
pub mod batchnorm;
pub mod conv;
pub mod dense;
pub mod flatten;
pub mod pool;

pub use activation::{PolyActivation, Relu, Square};
pub use batchnorm::BatchNorm;
pub use conv::Conv2d;
pub use dense::Dense;
pub use flatten::Flatten;
pub use pool::AvgPool2d;

use crate::tensor::Tensor;

/// A trainable parameter: value, gradient accumulator and SGD momentum
/// buffer, updated together by the optimizer.
#[derive(Debug, Clone)]
pub struct Param {
    pub value: Tensor,
    pub grad: Tensor,
    pub velocity: Tensor,
}

impl Param {
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        let velocity = Tensor::zeros(value.shape());
        Self {
            value,
            grad,
            velocity,
        }
    }
}

/// A differentiable layer. `forward` caches whatever `backward` needs;
/// `backward` consumes the cache, accumulates parameter gradients and
/// returns the gradient w.r.t. its input.
pub trait Layer: Send {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;
    /// Downcasting hook — the HE engine extracts trained weights through it.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable downcasting hook (model state loading).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;
    /// Visits every trainable parameter (default: none).
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
    fn name(&self) -> &'static str;
    /// One-line architecture description (used by the Fig. 3/4 printers).
    fn describe(&self) -> String {
        self.name().to_string()
    }
}

/// A stack of layers applied in order.
pub struct Sequential {
    pub layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in self.layers.iter_mut() {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in self.layers.iter_mut() {
            layer.visit_params(f);
        }
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.grad.zero_());
    }

    /// Total number of trainable scalars.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.numel());
        n
    }

    /// Multi-line architecture summary (regenerates the paper's Fig. 3/4
    /// in text form).
    pub fn describe(&self) -> String {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| format!("  [{i}] {}", l.describe()))
            .collect::<Vec<_>>()
            .join("\n")
    }
}
