//! Training loop: SGD + momentum, 1-cycle learning rate, mini-batches —
//! the paper's §V.D recipe (batch 64, momentum 0.9, cross-entropy).

use crate::layers::Sequential;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::mnist::Dataset;
use crate::optim::{OneCycle, Sgd};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub max_lr: f32,
    pub momentum: f32,
    pub seed: u64,
    /// Per-element gradient clip (polynomial activations make gradients
    /// explosive when inputs stray outside the fitted interval).
    pub grad_clip: f32,
    /// Print a progress line per epoch.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 64,
            max_lr: 0.05,
            momentum: 0.9,
            seed: 0,
            grad_clip: 1.0,
            verbose: false,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone)]
pub struct EpochStats {
    pub epoch: usize,
    pub train_loss: f32,
    pub train_acc: f32,
}

/// Trains `model` on `data`; returns per-epoch stats.
pub fn train(model: &mut Sequential, data: &Dataset, cfg: &TrainConfig) -> Vec<EpochStats> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let n = data.len();
    let steps_per_epoch = n.div_ceil(cfg.batch_size);
    let schedule = OneCycle::new(cfg.max_lr, cfg.epochs * steps_per_epoch);
    let mut stats = Vec::with_capacity(cfg.epochs);
    let mut step = 0usize;

    for epoch in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        let mut acc_sum = 0.0f32;
        let mut batches = 0usize;

        for chunk in order.chunks(cfg.batch_size) {
            let (x, labels) = data.batch(chunk);
            let logits = model.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            loss_sum += loss;
            acc_sum += accuracy(&logits, &labels);
            batches += 1;
            model.backward(&grad);
            if cfg.grad_clip > 0.0 {
                let c = cfg.grad_clip;
                model.visit_params(&mut |p| {
                    for g in p.grad.data_mut() {
                        if !g.is_finite() {
                            *g = 0.0;
                        } else {
                            *g = g.clamp(-c, c);
                        }
                    }
                });
            }
            let opt = Sgd::new(schedule.lr_at(step), cfg.momentum);
            opt.step(model);
            step += 1;
        }

        let s = EpochStats {
            epoch,
            train_loss: loss_sum / batches as f32,
            train_acc: acc_sum / batches as f32,
        };
        if cfg.verbose {
            eprintln!(
                "epoch {:>2}: loss {:.4} acc {:.2}%",
                s.epoch,
                s.train_loss,
                s.train_acc * 100.0
            );
        }
        stats.push(s);
    }
    stats
}

/// Evaluates classification accuracy on a dataset.
pub fn evaluate(model: &mut Sequential, data: &Dataset) -> f32 {
    let n = data.len();
    let mut correct = 0usize;
    for chunk in (0..n).collect::<Vec<_>>().chunks(128) {
        let (x, labels) = data.batch(chunk);
        let logits = model.forward(&x, false);
        for (i, &label) in labels.iter().enumerate() {
            let row = &logits.data()[i * 10..(i + 1) * 10];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            if pred == label {
                correct += 1;
            }
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist;
    use crate::models::{cnn1, ActKind};

    #[test]
    fn training_reduces_loss_and_learns() {
        // small but real: CNN1+ReLU on 400 synthetic digits
        let data = mnist::synthetic(400, 11);
        let mut model = cnn1(ActKind::Relu, 11);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 32,
            max_lr: 0.08,
            ..Default::default()
        };
        let stats = train(&mut model, &data, &cfg);
        assert!(stats.last().unwrap().train_loss < stats[0].train_loss * 0.7);
        let acc = evaluate(&mut model, &data);
        assert!(acc > 0.5, "training accuracy too low: {acc}");
    }

    #[test]
    fn evaluate_on_untrained_is_chance_level() {
        let data = mnist::synthetic(200, 12);
        let mut model = cnn1(ActKind::Relu, 999);
        let acc = evaluate(&mut model, &data);
        assert!(acc < 0.35, "untrained model should be near 10%: {acc}");
    }
}
