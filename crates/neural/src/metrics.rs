//! Classification evaluation metrics: confusion matrix, per-class
//! precision/recall, and top-k accuracy — the reporting layer behind the
//! accuracy columns of Tables I/III/V.

/// A `classes × classes` confusion matrix (`rows = true`,
/// `cols = predicted`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    pub fn new(classes: usize) -> Self {
        Self {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Records one `(true, predicted)` observation.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.classes && predicted < self.classes);
        self.counts[truth * self.classes + predicted] += 1;
    }

    /// Builds from parallel label/prediction slices.
    pub fn from_predictions(classes: usize, truths: &[usize], preds: &[usize]) -> Self {
        assert_eq!(truths.len(), preds.len());
        let mut m = Self::new(classes);
        for (&t, &p) in truths.iter().zip(preds) {
            m.record(t, p);
        }
        m
    }

    #[inline]
    pub fn count(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth * self.classes + predicted]
    }

    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.classes).map(|c| self.count(c, c)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision of one class (`NaN` when the class is never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.count(class, class) as f64;
        let predicted: usize = (0..self.classes).map(|t| self.count(t, class)).sum();
        tp / predicted as f64
    }

    /// Recall of one class (`NaN` when the class never occurs).
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.count(class, class) as f64;
        let actual: usize = (0..self.classes).map(|p| self.count(class, p)).sum();
        tp / actual as f64
    }

    /// The most confused (true, predicted) off-diagonal pair.
    pub fn worst_confusion(&self) -> Option<(usize, usize, usize)> {
        let mut best = None;
        for t in 0..self.classes {
            for p in 0..self.classes {
                if t != p && self.count(t, p) > 0 {
                    let c = self.count(t, p);
                    if best.is_none_or(|(_, _, bc)| c > bc) {
                        best = Some((t, p, c));
                    }
                }
            }
        }
        best
    }

    /// Compact text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("      ");
        for p in 0..self.classes {
            out.push_str(&format!("{p:>5}"));
        }
        out.push('\n');
        for t in 0..self.classes {
            out.push_str(&format!("  {t:>2} |"));
            for p in 0..self.classes {
                out.push_str(&format!("{:>5}", self.count(t, p)));
            }
            out.push('\n');
        }
        out
    }
}

/// Top-k accuracy from raw logits (`[n × classes]`, row-major).
pub fn top_k_accuracy(logits: &[f64], classes: usize, labels: &[usize], k: usize) -> f64 {
    assert!(k >= 1 && k <= classes);
    let n = labels.len();
    assert_eq!(logits.len(), n * classes);
    let mut hits = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits[i * classes..(i + 1) * classes];
        let mut idx: Vec<usize> = (0..classes).collect();
        idx.sort_unstable_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap());
        if idx[..k].contains(&label) {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let m = ConfusionMatrix::from_predictions(3, &[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(1), 1.0);
        assert_eq!(m.recall(1), 1.0);
        assert!(m.worst_confusion().is_none());
    }

    #[test]
    fn known_confusions() {
        // class 0 always predicted as 1
        let m = ConfusionMatrix::from_predictions(2, &[0, 0, 1, 1], &[1, 1, 1, 1]);
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.recall(0), 0.0);
        assert_eq!(m.recall(1), 1.0);
        assert_eq!(m.precision(1), 0.5);
        assert_eq!(m.worst_confusion(), Some((0, 1, 2)));
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn render_contains_counts() {
        let m = ConfusionMatrix::from_predictions(2, &[0, 1], &[0, 0]);
        let r = m.render();
        assert!(r.contains('1'));
        assert!(r.lines().count() >= 3);
    }

    #[test]
    fn top_k() {
        // rows: [5,1,9] (argmax 2, top-2 {2,0}) and [0,3,2] (argmax 1)
        let logits = vec![5.0, 1.0, 9.0, 0.0, 3.0, 2.0];
        assert_eq!(top_k_accuracy(&logits, 3, &[0, 1], 1), 0.5); // row 1 hits
        assert_eq!(top_k_accuracy(&logits, 3, &[0, 1], 2), 1.0); // both hit
        assert_eq!(top_k_accuracy(&logits, 3, &[2, 1], 1), 1.0); // both argmax
        assert_eq!(top_k_accuracy(&logits, 3, &[1, 0], 1), 0.0); // both miss
    }

    #[test]
    #[should_panic]
    fn record_out_of_range() {
        let mut m = ConfusionMatrix::new(2);
        m.record(2, 0);
    }
}
