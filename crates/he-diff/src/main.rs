//! `he-diff` — differential oracle runner.
//!
//! ```text
//! he-diff run [--seed S] [--ops N] [--preset NAME|all] [--safety F] [--minimize] [--ir] [--compiled]
//! he-diff presets
//! ```
//!
//! Exits 0 when every checked sequence agrees within the analytic
//! bound, 1 on a divergence (printing a replay line), 2 on bad usage.

#![forbid(unsafe_code)]

use he_diff::oracle::Harness;
use he_diff::{generate, minimize, presets, DiffConfig, Divergence};
use std::sync::Arc;

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut it = args.into_iter();
    let Some(cmd) = it.next() else {
        eprintln!("{USAGE}");
        return 2;
    };
    match cmd.as_str() {
        "presets" => {
            for p in presets() {
                println!(
                    "{:8} n={:5} chain={:?} scale=2^{}",
                    p.name, p.params.n, p.params.chain_bits, p.params.scale_bits
                );
            }
            0
        }
        "run" => run_cmd(it.collect()),
        "-h" | "--help" => {
            eprintln!("{USAGE}");
            0
        }
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            2
        }
    }
}

fn run_cmd(args: Vec<String>) -> i32 {
    let mut seed = 1u64;
    let mut ops_count = 100usize;
    let mut preset_name = "all".to_string();
    let mut cfg = DiffConfig::default();
    let mut shrink = false;
    let mut ir = false;
    let mut compiled = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let num = |name: &str, it: &mut dyn Iterator<Item = String>| {
            it.next()
                .and_then(|s| s.parse::<f64>().ok())
                .ok_or_else(|| eprintln!("{name} needs a number"))
        };
        match arg.as_str() {
            "--seed" => match num("--seed", &mut it) {
                Ok(v) => seed = v as u64,
                Err(()) => return 2,
            },
            "--ops" => match num("--ops", &mut it) {
                Ok(v) => ops_count = v as usize,
                Err(()) => return 2,
            },
            "--safety" => match num("--safety", &mut it) {
                Ok(v) => cfg.safety = v,
                Err(()) => return 2,
            },
            "--preset" => {
                let Some(v) = it.next() else {
                    eprintln!("--preset needs a name (or `all`)");
                    return 2;
                };
                preset_name = v;
            }
            "--minimize" => shrink = true,
            "--ir" => ir = true,
            "--compiled" => compiled = true,
            _ => {
                eprintln!("unknown flag `{arg}`\n{USAGE}");
                return 2;
            }
        }
    }

    let selected: Vec<_> = if preset_name == "all" {
        presets()
    } else {
        match he_diff::preset(&preset_name) {
            Some(p) => vec![p],
            None => {
                eprintln!(
                    "unknown preset `{preset_name}` (have: {})",
                    presets()
                        .iter()
                        .map(|p| p.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return 2;
            }
        }
    };

    let mut failed = false;
    for p in &selected {
        let ctx = p.params.clone().build();
        let ops = generate(&ctx, seed, ops_count);
        let mut harness = Harness::new(Arc::clone(&ctx), seed);
        match harness.run(&ops, &cfg) {
            Ok(report) => println!(
                "{:8} seed={seed} ops={} checks={} worst_ratio={:.3} ok",
                p.name, report.ops, report.checks, report.worst_ratio
            ),
            Err(div) => {
                failed = true;
                report_divergence(p.name, seed, ops_count, &div);
                if shrink {
                    let min = minimize(&ctx, &ops, div.op_index, |candidate| {
                        Harness::new(Arc::clone(&ctx), seed)
                            .run(candidate, &cfg)
                            .is_err()
                    });
                    println!("minimal reproducing sequence ({} op(s)):", min.len());
                    for op in &min {
                        println!("    {}", op.render());
                    }
                }
            }
        }
        if ir {
            match he_diff::run_ir_vs_eager(&ctx, seed, ops_count) {
                Ok(r) => println!(
                    "{:8} ir: {} register write(s) bit-identical across {} IR node(s) ok",
                    p.name, r.compares, r.nodes
                ),
                Err(e) => {
                    failed = true;
                    println!("{:8} IR DIVERGENCE: {e}", p.name);
                    println!(
                        "replay: he-diff run --seed {seed} --ops {ops_count} --preset {} --ir",
                        p.name
                    );
                }
            }
        }
        if compiled {
            match he_diff::run_compiled_vs_eager(&ctx, seed, ops_count, cfg.safety) {
                Ok(r) => println!(
                    "{:8} compiled: {} output(s) within bound (worst {:.3}), {} → {} node(s), rotations {} → {} ok",
                    p.name,
                    r.outputs,
                    r.worst_ratio,
                    r.nodes_before,
                    r.nodes_after,
                    r.rotations_before,
                    r.rotations_after
                ),
                Err(e) => {
                    failed = true;
                    println!("{:8} COMPILED DIVERGENCE: {e}", p.name);
                    println!(
                        "replay: he-diff run --seed {seed} --ops {ops_count} --preset {} --compiled",
                        p.name
                    );
                }
            }
        }
    }
    i32::from(failed)
}

fn report_divergence(preset: &str, seed: u64, ops: usize, div: &Divergence) {
    println!("{preset:8} DIVERGENCE: {div}");
    println!("replay: he-diff run --seed {seed} --ops {ops} --preset {preset} --minimize");
}

const USAGE: &str = "usage: he-diff <command>

commands:
    run [--seed S] [--ops N] [--preset NAME|all] [--safety F] [--minimize] [--ir] [--compiled]
        Generate a seeded op sequence and execute it on the production
        RNS evaluator and the bignum CKKS reference simultaneously,
        checking both against the analytic noise bound after every op.
        With --minimize, a divergence is shrunk to a minimal
        reproducing op list before reporting. With --ir, the sequence
        is additionally lowered to the he-ir circuit IR and interpreted
        with the same keys, demanding bit-identical ciphertexts at
        every register write. With --compiled, the lowered circuit is
        run through the optimizing pass pipeline first and every live
        output must stay within the analytic noise bound of the exact
        reference (and within twice it of the eager world).
    presets
        List the oracle's parameter presets.

Exit status: 0 all sequences agree, 1 divergence, 2 bad input.";
