//! Metadata simulation of an op sequence — the feasibility rules shared
//! by the generator (to only emit valid sequences) and the minimizer
//! (to only propose candidates the evaluator will accept).
//!
//! Tracks per-register `(level, scale, magnitude)` exactly as the two
//! execution worlds compute them; nothing here touches polynomial data.

use crate::gen::DiffOp;
use ckks::params::CkksContext;
use ckks::SCALE_RTOL;
use std::sync::Arc;

/// Number of ciphertext registers an op sequence addresses.
pub const NUM_REGS: usize = 5;

/// Message-magnitude ceiling: with the paper chain (`q_0 = 2^40`,
/// Δ = 2^26) a level-0 ciphertext holds ~13 bits of message headroom,
/// so the generator keeps |m| ≤ 8 and stays far from wraparound.
pub const MAG_CAP: f64 = 8.0;

/// Simulated register metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReg {
    pub level: usize,
    pub scale: f64,
    pub mag: f64,
}

/// Sequence-level metadata simulator.
pub struct SimState {
    ctx: Arc<CkksContext>,
    pub regs: [Option<SimReg>; NUM_REGS],
}

impl SimState {
    pub fn new(ctx: Arc<CkksContext>) -> Self {
        Self {
            ctx,
            regs: [None; NUM_REGS],
        }
    }

    fn compatible(a: &SimReg, b: &SimReg) -> bool {
        a.level == b.level && (a.scale / b.scale - 1.0).abs() < SCALE_RTOL
    }

    /// log₂(Q_ℓ) for headroom checks.
    fn log_q(&self, level: usize) -> f64 {
        self.ctx.chain_moduli()[..=level]
            .iter()
            .map(|m| (m.value() as f64).log2())
            .sum()
    }

    /// Result register of a feasible op, or `None` when the op violates
    /// a precondition (dead operand, level/scale mismatch, level
    /// exhaustion, magnitude or headroom overflow).
    pub fn result_of(&self, op: &DiffOp) -> Option<Option<SimReg>> {
        let live = |r: usize| self.regs.get(r).copied().flatten();
        match *op {
            DiffOp::Encrypt { .. } => Some(Some(SimReg {
                level: self.ctx.max_level(),
                scale: self.ctx.params().scale(),
                mag: 1.0,
            })),
            DiffOp::Add { a, b, .. } | DiffOp::Sub { a, b, .. } => {
                let (ra, rb) = (live(a)?, live(b)?);
                if !Self::compatible(&ra, &rb) {
                    return None;
                }
                let mag = ra.mag + rb.mag;
                if mag > MAG_CAP {
                    return None;
                }
                Some(Some(SimReg { mag, ..ra }))
            }
            DiffOp::Negate { src, .. } => Some(Some(live(src)?)),
            DiffOp::MulRelin { a, b, .. } => {
                let (ra, rb) = (live(a)?, live(b)?);
                if !Self::compatible(&ra, &rb) || ra.level < 1 {
                    return None;
                }
                let scale = ra.scale * rb.scale;
                let mag = (ra.mag * rb.mag).max(1e-3);
                if ra.mag * rb.mag > MAG_CAP {
                    return None;
                }
                // product must stay ≥2 bits under Q_ℓ
                if scale.log2() + mag.log2().max(0.0) + 2.0 > self.log_q(ra.level) {
                    return None;
                }
                Some(Some(SimReg {
                    level: ra.level,
                    scale,
                    mag: ra.mag * rb.mag,
                }))
            }
            DiffOp::Rescale { src, .. } => {
                let r = live(src)?;
                if r.level < 1 {
                    return None;
                }
                let q_top = self.ctx.chain_moduli()[r.level].value() as f64;
                let new_scale = r.scale / q_top;
                // don't rescale precision away: keep ≥ Δ/4
                if new_scale.log2() < f64::from(self.ctx.params().scale_bits) - 2.0 {
                    return None;
                }
                Some(Some(SimReg {
                    level: r.level - 1,
                    scale: new_scale,
                    mag: r.mag,
                }))
            }
            DiffOp::Rotate { src, steps, .. } => {
                if !crate::ROTATE_STEPS.contains(&steps) {
                    return None;
                }
                Some(Some(live(src)?))
            }
            // plain-integer codec ops don't touch ciphertext registers
            DiffOp::CrtRoundTrip { .. } => Some(None),
        }
    }

    /// Applies a feasible op; returns false (state unchanged) when the
    /// op is infeasible.
    pub fn apply(&mut self, op: &DiffOp) -> bool {
        match self.result_of(op) {
            Some(Some(reg)) => {
                self.regs[op.dst().expect("register op has a dst")] = Some(reg);
                true
            }
            Some(None) => true,
            None => false,
        }
    }
}

/// True when every op in the sequence is feasible in order — the
/// evaluator will accept it without panicking.
pub fn validate_sequence(ctx: &Arc<CkksContext>, ops: &[DiffOp]) -> bool {
    let mut sim = SimState::new(Arc::clone(ctx));
    ops.iter().all(|op| sim.apply(op))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_ctx() -> Arc<CkksContext> {
        crate::preset("micro2").unwrap().params.build()
    }

    #[test]
    fn encrypt_then_ops_validate() {
        let ctx = micro_ctx();
        let ops = vec![
            DiffOp::Encrypt {
                dst: 0,
                value_seed: 1,
            },
            DiffOp::Encrypt {
                dst: 1,
                value_seed: 2,
            },
            DiffOp::Add { dst: 2, a: 0, b: 1 },
            DiffOp::MulRelin { dst: 3, a: 2, b: 0 },
            DiffOp::Rescale { dst: 3, src: 3 },
            DiffOp::Rotate {
                dst: 4,
                src: 3,
                steps: 1,
            },
        ];
        assert!(validate_sequence(&ctx, &ops));
    }

    #[test]
    fn dead_register_and_mismatch_rejected() {
        let ctx = micro_ctx();
        // read of a never-written register
        assert!(!validate_sequence(
            &ctx,
            &[DiffOp::Add { dst: 0, a: 1, b: 2 }]
        ));
        // add across a scale mismatch (fresh Δ vs rescaled Δ²/q)
        let ops = vec![
            DiffOp::Encrypt {
                dst: 0,
                value_seed: 1,
            },
            DiffOp::MulRelin { dst: 1, a: 0, b: 0 },
            DiffOp::Rescale { dst: 1, src: 1 },
            DiffOp::Add { dst: 2, a: 0, b: 1 },
        ];
        assert!(!validate_sequence(&ctx, &ops));
    }

    #[test]
    fn rescale_at_level_zero_rejected() {
        let ctx = micro_ctx();
        let mut ops = vec![DiffOp::Encrypt {
            dst: 0,
            value_seed: 1,
        }];
        // micro2 has 2 levels of depth; a fresh ct at scale Δ cannot
        // rescale even once without destroying precision
        ops.push(DiffOp::Rescale { dst: 0, src: 0 });
        assert!(!validate_sequence(&ctx, &ops));
    }
}
