//! Shrinks a failing op sequence to a minimal reproducing one.
//!
//! Two phases, both deterministic:
//!
//! 1. **Truncate** to the failing prefix — ops after the op whose check
//!    fired cannot contribute.
//! 2. **Greedy dependency-aware removal** — repeatedly try deleting one
//!    op together with the downstream ops its removal orphans (reads of
//!    a register no longer defined), keeping any candidate that is
//!    still metadata-feasible *and* still fails. Feasibility is checked
//!    with the cheap [`sim`](crate::sim) before paying for dual-world
//!    execution.
//!
//! The result is 1-minimal under this removal move: deleting any single
//! remaining op (plus its orphan closure) no longer reproduces.

use crate::gen::DiffOp;
use crate::sim::{validate_sequence, NUM_REGS};
use ckks::params::CkksContext;
use std::sync::Arc;

/// Removes `ops[idx]` and every later op left with an undefined operand.
fn remove_with_orphans(ops: &[DiffOp], idx: usize) -> Vec<DiffOp> {
    let mut defined = [false; NUM_REGS];
    let mut out = Vec::with_capacity(ops.len() - 1);
    for (i, op) in ops.iter().enumerate() {
        if i == idx || !op.srcs().iter().all(|&r| defined[r]) {
            continue;
        }
        if let Some(dst) = op.dst() {
            defined[dst] = true;
        }
        out.push(op.clone());
    }
    out
}

/// Generic shrinker: `valid` gates candidates cheaply, `still_fails`
/// is the (expensive) reproduction check. `ops` itself must fail.
pub fn minimize_with(
    ops: &[DiffOp],
    valid: impl Fn(&[DiffOp]) -> bool,
    mut still_fails: impl FnMut(&[DiffOp]) -> bool,
) -> Vec<DiffOp> {
    let mut cur = ops.to_vec();
    loop {
        let mut shrunk = false;
        // backward so removing late ops (cheap to re-check) goes first
        let mut i = cur.len();
        while i > 0 {
            i -= 1;
            let candidate = remove_with_orphans(&cur, i);
            if candidate.len() < cur.len() && valid(&candidate) && still_fails(&candidate) {
                cur = candidate;
                shrunk = true;
                i = i.min(cur.len());
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

/// Shrinks a sequence that diverged at `fail_index` when executed by
/// `still_fails` (typically a [`Harness`](crate::oracle::Harness) run
/// with a fixed seed). Truncates to the failing prefix first.
pub fn minimize(
    ctx: &Arc<CkksContext>,
    ops: &[DiffOp],
    fail_index: usize,
    mut still_fails: impl FnMut(&[DiffOp]) -> bool,
) -> Vec<DiffOp> {
    let prefix = &ops[..(fail_index + 1).min(ops.len())];
    // the prefix should reproduce by construction; if the failure is
    // flaky enough that it doesn't, fall back to the full sequence
    let base: Vec<DiffOp> = if still_fails(prefix) {
        prefix.to_vec()
    } else {
        ops.to_vec()
    };
    minimize_with(&base, |c| validate_sequence(ctx, c), still_fails)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(dst: usize) -> DiffOp {
        DiffOp::Encrypt {
            dst,
            value_seed: dst as u64,
        }
    }

    /// Structural validity only: every read sees a prior write.
    fn deps_ok(ops: &[DiffOp]) -> bool {
        let mut defined = [false; NUM_REGS];
        for op in ops {
            if !op.srcs().iter().all(|&r| defined[r]) {
                return false;
            }
            if let Some(dst) = op.dst() {
                defined[dst] = true;
            }
        }
        true
    }

    #[test]
    fn shrinks_to_the_two_culprit_ops() {
        // synthetic bug: sequences "fail" iff they still contain the
        // mul of r0 with itself (which needs enc r0 to stay defined)
        let ops = vec![
            enc(0),
            enc(1),
            enc(2),
            DiffOp::Add { dst: 3, a: 1, b: 2 },
            DiffOp::MulRelin { dst: 4, a: 0, b: 0 },
            DiffOp::Negate { dst: 3, src: 3 },
        ];
        let fails = |c: &[DiffOp]| {
            c.iter()
                .any(|op| matches!(op, DiffOp::MulRelin { a: 0, b: 0, .. }))
        };
        assert!(fails(&ops));
        let min = minimize_with(&ops, deps_ok, fails);
        assert_eq!(
            min,
            vec![enc(0), DiffOp::MulRelin { dst: 4, a: 0, b: 0 }],
            "only the culprit and its dependency survive"
        );
    }

    #[test]
    fn orphan_closure_cascades() {
        // removing enc r0 must also drop everything transitively fed by r0
        let ops = vec![
            enc(0),
            DiffOp::Negate { dst: 1, src: 0 },
            DiffOp::Add { dst: 2, a: 1, b: 1 },
            enc(3),
        ];
        let out = remove_with_orphans(&ops, 0);
        assert_eq!(out, vec![enc(3)]);
    }

    #[test]
    fn redefinition_keeps_later_readers() {
        // r0 is written twice; deleting the first write must not orphan
        // a read that the second write still covers
        let ops = vec![enc(0), enc(1), enc(0), DiffOp::Negate { dst: 2, src: 0 }];
        let out = remove_with_orphans(&ops, 0);
        assert_eq!(out, vec![enc(1), enc(0), DiffOp::Negate { dst: 2, src: 0 }]);
    }

    #[test]
    fn minimize_truncates_to_failing_prefix() {
        let ctx = crate::preset("micro2").unwrap().params.build();
        let ops = vec![
            enc(0),
            enc(1),
            DiffOp::Sub { dst: 2, a: 0, b: 1 },
            DiffOp::Rotate {
                dst: 3,
                src: 2,
                steps: 1,
            },
        ];
        // "fails" at op 2 whenever a sub of r0,r1 is present
        let fails = |c: &[DiffOp]| c.iter().any(|op| matches!(op, DiffOp::Sub { .. }));
        let min = minimize(&ctx, &ops, 2, fails);
        assert_eq!(min.len(), 3, "rotate after the failure is gone: {min:?}");
        assert!(matches!(min.last(), Some(DiffOp::Sub { .. })));
    }
}
