//! # he-diff
//!
//! Differential correctness and fault-injection harness for the
//! RNS-CKKS stack.
//!
//! The paper's central soundness claim is that the RNS decomposition is
//! *exactly* equivalent to the monolithic pipeline — the speed-up is
//! pure parallelism, never approximation. This crate checks that claim
//! mechanically:
//!
//! * [`oracle`] — a seeded op-sequence generator ([`gen`]) whose every
//!   sequence is executed twice: once on the production RNS
//!   [`ckks::Evaluator`] and once on the arbitrary-precision
//!   [`ckks::bigckks::BigCkks`] reference. Decrypted outputs of both
//!   worlds must agree with the exact plaintext reference within an
//!   *analytically derived* bound composed from
//!   [`he_lint::NoiseModel`] — never a hand-tuned epsilon.
//! * [`ir`] — the third world: every sequence is also lowered to the
//!   `he-ir` circuit IR and interpreted with the same keys, and each
//!   register write must match the eager ciphertext **bit for bit**
//!   (limb for limb, zero tolerance), with the lowered circuit passing
//!   the full static-analysis suite. The fourth world
//!   ([`ir::run_compiled_vs_eager`], CLI `--compiled`) sends the same
//!   circuit through the optimizing pass pipeline first; optimization
//!   may legally change rounding (rescale sinking reorders divisions),
//!   so its contract is the analytic noise bound, not bit-equality.
//! * [`mod@minimize`] — failing sequences shrink to a minimal
//!   reproducing op list, reported with the replayable seed.
//! * `fault` (feature `fault-inject`) — deterministic corruption
//!   hooks plus guard wrappers proving that he-lint admission,
//!   ciphertext validation, and the noise/headroom telemetry each
//!   detect the fault class they claim to guard against.
//!
//! Full two-world execution needs schoolbook-affordable rings, so the
//! harness ships its own `micro*` presets (N = 256 / 512 sharing the
//! paper's chain shape `[40, 26×L]`, Δ = 2²⁶); the workspace-level
//! `CkksParams` presets (including N = 2¹⁴) are covered by the
//! decryption-parity property tests in `tests/`, which cross-check the
//! RNS decryption path against bignum CRT arithmetic without paying for
//! schoolbook ciphertext ops.

#![forbid(unsafe_code)]

pub mod gen;
pub mod ir;
pub mod minimize;
pub mod oracle;
pub mod sim;

#[cfg(feature = "fault-inject")]
pub mod fault;

pub use gen::{generate, DiffOp};
pub use ir::{lower_ops, run_compiled_vs_eager, run_ir_vs_eager, CompiledReport, IrReport};
pub use minimize::{minimize, minimize_with};
pub use oracle::{run_sequence, DiffConfig, Divergence, RunReport};

use ckks::{CkksParams, SecurityLevel};

/// A named parameter preset the differential oracle runs against.
#[derive(Debug, Clone)]
pub struct Preset {
    pub name: &'static str,
    pub params: CkksParams,
}

/// Every oracle preset: micro rings where the O(N²) bignum reference is
/// affordable, covering depths 2 and 3 and two ring degrees.
pub fn presets() -> Vec<Preset> {
    vec![
        Preset {
            name: "micro2",
            params: CkksParams {
                n: 256,
                chain_bits: vec![40, 26, 26],
                special_bits: vec![40],
                scale_bits: 26,
                security: SecurityLevel::None,
            },
        },
        Preset {
            name: "micro3",
            params: CkksParams {
                n: 256,
                chain_bits: vec![40, 26, 26, 26],
                special_bits: vec![40],
                scale_bits: 26,
                security: SecurityLevel::None,
            },
        },
        Preset {
            name: "small3",
            params: CkksParams {
                n: 512,
                chain_bits: vec![40, 26, 26, 26],
                special_bits: vec![40],
                scale_bits: 26,
                security: SecurityLevel::None,
            },
        },
    ]
}

/// Looks up a preset by name.
pub fn preset(name: &str) -> Option<Preset> {
    presets().into_iter().find(|p| p.name == name)
}

/// Rotation steps the harness generates Galois keys for (both worlds).
pub const ROTATE_STEPS: [i64; 3] = [1, 2, 4];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_resolvable() {
        let all = presets();
        assert!(all.len() >= 3);
        for p in &all {
            assert!(preset(p.name).is_some());
            assert_eq!(p.params.scale_bits, 26, "paper scale");
            assert_eq!(p.params.chain_bits[0], 40, "paper chain head");
        }
        assert!(preset("nope").is_none());
    }
}
