//! IR-vs-eager differential: the third world.
//!
//! The oracle already proves RNS ≡ bignum within the analytic bound.
//! This module adds a *bit-exact* leg: every generated op sequence is
//! lowered to the `he-ir` circuit IR and interpreted against the same
//! evaluator and keys, and each register write must match the eager
//! ciphertext **limb for limb** — same level, same slots, same scale
//! bits, identical RNS residues. There is no tolerance at all: the IR
//! interpreter claims to replay the exact evaluator call sequence, so
//! any difference, down to one u64, is a lowering or interpretation
//! bug.
//!
//! The lowered circuit also runs through the full standard pass suite
//! (with the harness's real Galois-key inventory declared), so every
//! fuzzed sequence doubles as a feasibility check on the static
//! analyses: a generator-accepted sequence must never produce an error
//! diagnostic.

use crate::gen::DiffOp;
use crate::sim::NUM_REGS;
use ckks::params::CkksContext;
use ckks::{Ciphertext, Evaluator, KeyGenerator};
use ckks_math::sampler::Sampler;
use he_ir::{GraphBuilder, Interpreter, KeyInventory, Layout, PassManager};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// Name of the IR input node fed by the `Encrypt` at op index `i`.
pub fn input_name(i: usize) -> String {
    format!("enc{i}")
}

/// Lowers a generated op sequence to a circuit. Returns the circuit
/// plus, per op, the node id the op wrote (`None` for ops with no
/// ciphertext effect). Every register live at the end is an output.
pub fn lower_ops(ops: &[DiffOp], mut b: GraphBuilder) -> (he_ir::Circuit, Vec<Option<usize>>) {
    let top = b.params().depth();
    let mut regs: [Option<usize>; NUM_REGS] = [None; NUM_REGS];
    let mut writes = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let reg = |r: usize| regs[r].expect("generator guarantees operands are initialized");
        let node = match *op {
            DiffOp::Encrypt { .. } => Some(b.input(&input_name(i), top, Layout::BatchSlots)),
            DiffOp::Add { a, b: rb, .. } => Some(b.add(reg(a), reg(rb))),
            DiffOp::Sub { a, b: rb, .. } => Some(b.sub(reg(a), reg(rb))),
            DiffOp::Negate { src, .. } => Some(b.negate(reg(src))),
            DiffOp::MulRelin { a, b: rb, .. } => Some(b.mul(reg(a), reg(rb))),
            DiffOp::Rescale { src, .. } => Some(b.rescale(reg(src))),
            DiffOp::Rotate { src, steps, .. } => Some(b.rotate(reg(src), steps)),
            DiffOp::CrtRoundTrip { .. } => None,
        };
        if let (Some(n), Some(dst)) = (node, op.dst()) {
            regs[dst] = Some(n);
        }
        writes.push(node);
    }
    for id in regs.into_iter().flatten() {
        b.output(id);
    }
    let elements = crate::ROTATE_STEPS.map(|s| b.params().galois_element_for_rotation(s));
    (b.finish(KeyInventory::with_galois(true, elements)), writes)
}

/// Summary of a clean IR differential run.
#[derive(Debug, Clone, Copy)]
pub struct IrReport {
    /// Ops executed.
    pub ops: usize,
    /// Register writes compared limb for limb.
    pub compares: usize,
    /// Circuit size.
    pub nodes: usize,
}

/// Generates the `(seed, count)` sequence, executes it eagerly on the
/// production evaluator, lowers it to IR, interprets the circuit with
/// the same keys, and demands **bit-identical** ciphertexts at every
/// register write. Also runs the standard pass suite over the lowered
/// circuit and fails on any error diagnostic.
pub fn run_ir_vs_eager(
    ctx: &Arc<CkksContext>,
    seed: u64,
    count: usize,
) -> Result<IrReport, String> {
    let ops = crate::generate(ctx, seed, count);
    let slots = ctx.slots();

    // the RNS world of `oracle::Harness`, key for key
    let mut kg = KeyGenerator::new(Arc::clone(ctx), seed ^ 0xA11C_E5ED);
    let sk = kg.gen_secret_key();
    let pk = kg.gen_public_key(&sk);
    let rk = kg.gen_relin_key(&sk);
    let gk = kg.gen_galois_keys(&sk, &crate::ROTATE_STEPS, false);
    let ev = Evaluator::new(Arc::clone(ctx));
    let mut enc = Sampler::from_seed_stream(seed, 1);

    // eager leg: execute, capturing fresh encryptions as IR inputs
    // (re-encrypting would draw different randomness — the IR world
    // must start from the *same* ciphertexts)
    let mut regs: [Option<Ciphertext>; NUM_REGS] = Default::default();
    let mut inputs: HashMap<String, Ciphertext> = HashMap::new();
    let mut eager: Vec<Option<Ciphertext>> = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let reg = |r: usize| regs[r].as_ref().expect("operand initialized");
        let ct = match *op {
            DiffOp::Encrypt { value_seed, .. } => {
                let mut vs = Sampler::from_seed_stream(value_seed, 0);
                let vals: Vec<f64> = (0..slots).map(|_| vs.rng().gen_range(-1.0..1.0)).collect();
                let ct = ev.encrypt_real(&vals, &pk, &mut enc);
                inputs.insert(input_name(i), ct.clone());
                Some(ct)
            }
            DiffOp::Add { a, b, .. } => Some(ev.add(reg(a), reg(b))),
            DiffOp::Sub { a, b, .. } => Some(ev.sub(reg(a), reg(b))),
            DiffOp::Negate { src, .. } => Some(ev.negate(reg(src))),
            DiffOp::MulRelin { a, b, .. } => Some(ev.multiply(reg(a), reg(b), &rk)),
            DiffOp::Rescale { src, .. } => Some(ev.rescale(reg(src))),
            DiffOp::Rotate { src, steps, .. } => Some(ev.rotate(reg(src), steps, &gk)),
            DiffOp::CrtRoundTrip { .. } => None,
        };
        if let (Some(ct), Some(dst)) = (ct.clone(), op.dst()) {
            regs[dst] = Some(ct);
        }
        eager.push(ct);
    }

    // IR leg: lower over the real chain primes, check, interpret
    let (circuit, writes) = lower_ops(&ops, GraphBuilder::for_context(ctx));
    let report = PassManager::standard().run(&circuit);
    if report.has_errors() {
        return Err(format!(
            "generated sequence fails static analysis:\n{}",
            report.render()
        ));
    }
    let values = Interpreter::new(&ev)
        .with_relin(&rk)
        .with_galois(&gk)
        .run_all(&circuit, &inputs)?;

    let mut compares = 0usize;
    for (i, (node, want)) in writes.iter().zip(&eager).enumerate() {
        let (Some(node), Some(want)) = (node, want) else {
            continue;
        };
        let got = values[*node]
            .as_ct()
            .ok_or_else(|| format!("op #{i}: IR node {node} is not a ciphertext"))?;
        let diff = |what: &str| {
            format!(
                "op #{i} ({}): IR and eager worlds differ in {what}",
                ops[i].render()
            )
        };
        if got.level != want.level {
            return Err(diff("level"));
        }
        if got.slots != want.slots {
            return Err(diff("slots"));
        }
        if got.scale.to_bits() != want.scale.to_bits() {
            return Err(diff("scale bits"));
        }
        for li in 0..=got.level {
            if got.c0.limb(li) != want.c0.limb(li) || got.c1.limb(li) != want.c1.limb(li) {
                return Err(diff(&format!("limb {li}")));
            }
        }
        compares += 1;
    }
    Ok(IrReport {
        ops: ops.len(),
        compares,
        nodes: circuit.nodes.len(),
    })
}

/// Summary of a clean compiled differential run.
#[derive(Debug, Clone, Copy)]
pub struct CompiledReport {
    /// Ops executed eagerly.
    pub ops: usize,
    /// Live end-of-sequence registers compared.
    pub outputs: usize,
    /// Circuit size before / after optimization.
    pub nodes_before: usize,
    pub nodes_after: usize,
    /// Keyswitching rotations before / after optimization.
    pub rotations_before: u64,
    pub rotations_after: u64,
    /// Worst observed `measured / bound` over the compared outputs.
    pub worst_ratio: f64,
}

/// The compiled-vs-eager differential: the generated sequence runs
/// eagerly on the production evaluator, then its lowered circuit is put
/// through the full optimizing pipeline
/// ([`PassManager::optimizer`]) and interpreted. Optimization is
/// allowed to change rounding (rescale sinking reorders divisions), so
/// the contract is *not* bit-equality: every live output must stay
/// within `safety ×` the composed [`he_lint::NoiseModel`] bound of the
/// exact plaintext reference — the oracle's own admission criterion —
/// and within twice that bound of the eager ciphertext.
pub fn run_compiled_vs_eager(
    ctx: &Arc<CkksContext>,
    seed: u64,
    count: usize,
    safety: f64,
) -> Result<CompiledReport, String> {
    let ops = crate::generate(ctx, seed, count);
    let slots = ctx.slots();
    let scale = ctx.params().scale();
    let model = he_lint::NoiseModel::new(ctx.params());

    let mut kg = KeyGenerator::new(Arc::clone(ctx), seed ^ 0xA11C_E5ED);
    let sk = kg.gen_secret_key();
    let pk = kg.gen_public_key(&sk);
    let rk = kg.gen_relin_key(&sk);
    let gk = kg.gen_galois_keys(&sk, &crate::ROTATE_STEPS, false);
    let ev = Evaluator::new(Arc::clone(ctx));
    let mut enc = Sampler::from_seed_stream(seed, 1);

    // eager leg, tracking the plaintext reference and the composed
    // analytic error bound per register (the oracle's trajectory,
    // single-world)
    struct Reg {
        ct: Ciphertext,
        refv: Vec<f64>,
        err: f64,
    }
    let mag = |r: &Reg| r.refv.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let mut regs: [Option<Reg>; NUM_REGS] = Default::default();
    let mut inputs: HashMap<String, Ciphertext> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        let reg = |r: usize| regs[r].as_ref().expect("operand initialized");
        let state = match *op {
            DiffOp::Encrypt { value_seed, .. } => {
                let mut vs = Sampler::from_seed_stream(value_seed, 0);
                let refv: Vec<f64> = (0..slots).map(|_| vs.rng().gen_range(-1.0..1.0)).collect();
                let ct = ev.encrypt_real(&refv, &pk, &mut enc);
                inputs.insert(input_name(i), ct.clone());
                Some(Reg {
                    ct,
                    refv,
                    err: model.fresh_value(scale),
                })
            }
            DiffOp::Add { a, b, .. } | DiffOp::Sub { a, b, .. } => {
                let sub = matches!(op, DiffOp::Sub { .. });
                let (ra, rb) = (reg(a), reg(b));
                Some(Reg {
                    ct: if sub {
                        ev.sub(&ra.ct, &rb.ct)
                    } else {
                        ev.add(&ra.ct, &rb.ct)
                    },
                    refv: ra
                        .refv
                        .iter()
                        .zip(&rb.refv)
                        .map(|(x, y)| if sub { x - y } else { x + y })
                        .collect(),
                    err: model.add_value(ra.err, rb.err),
                })
            }
            DiffOp::Negate { src, .. } => {
                let r = reg(src);
                Some(Reg {
                    ct: ev.negate(&r.ct),
                    refv: r.refv.iter().map(|v| -v).collect(),
                    err: r.err,
                })
            }
            DiffOp::MulRelin { a, b, .. } => {
                let (ra, rb) = (reg(a), reg(b));
                let err =
                    model.mul_value(mag(ra), ra.err, mag(rb), rb.err, ra.ct.scale * rb.ct.scale);
                Some(Reg {
                    ct: ev.multiply(&ra.ct, &rb.ct, &rk),
                    refv: ra.refv.iter().zip(&rb.refv).map(|(x, y)| x * y).collect(),
                    err,
                })
            }
            DiffOp::Rescale { src, .. } => {
                let r = reg(src);
                let ct = ev.rescale(&r.ct);
                let err = model.rescale_value(r.err, ct.scale);
                Some(Reg {
                    ct,
                    refv: r.refv.clone(),
                    err,
                })
            }
            DiffOp::Rotate { src, steps, .. } => {
                let r = reg(src);
                let shift = steps.rem_euclid(slots as i64) as usize;
                let err = model.rotate_value(r.err, r.ct.scale);
                Some(Reg {
                    ct: ev.rotate(&r.ct, steps, &gk),
                    refv: (0..slots).map(|j| r.refv[(j + shift) % slots]).collect(),
                    err,
                })
            }
            DiffOp::CrtRoundTrip { .. } => None,
        };
        if let (Some(state), Some(dst)) = (state, op.dst()) {
            regs[dst] = Some(state);
        }
    }

    // compiled leg: lower, optimize (re-validated at every pass
    // boundary), interpret
    let (mut circuit, _) = lower_ops(&ops, GraphBuilder::for_context(ctx));
    let nodes_before = circuit.nodes.len();
    let counts_before = circuit.op_counts();
    let report = PassManager::optimizer()
        .optimize(&mut circuit)
        .map_err(|e| format!("optimizer rejected the lowered sequence: {e}"))?;
    let outs = Interpreter::new(&ev)
        .with_relin(&rk)
        .with_galois(&gk)
        .run(&circuit, &inputs)?;

    // live registers in ascending index order — the order lower_ops
    // declared the outputs in (optimization preserves output order)
    let live: Vec<&Reg> = regs.iter().flatten().collect();
    if live.len() != outs.len() {
        return Err(format!(
            "output arity changed under optimization: {} live registers, {} circuit outputs",
            live.len(),
            outs.len()
        ));
    }
    let mut worst = 0.0f64;
    for (k, (want, got)) in live.iter().zip(&outs).enumerate() {
        let bound = safety * want.err;
        let dec_eager = ev.decrypt_to_real(&want.ct, &sk);
        let dec_comp = ev.decrypt_to_real(got, &sk);
        let d_ref = dec_comp[..slots]
            .iter()
            .zip(&want.refv)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        let d_cross = dec_comp[..slots]
            .iter()
            .zip(&dec_eager[..slots])
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        if d_ref > bound {
            return Err(format!(
                "output #{k}: compiled error {d_ref:.3e} exceeds noise bound {bound:.3e}"
            ));
        }
        // eager is itself within `bound` of the reference, so the two
        // worlds may drift at most twice the bound apart
        if d_cross > 2.0 * bound {
            return Err(format!(
                "output #{k}: compiled and eager worlds {d_cross:.3e} apart (bound {:.3e})",
                2.0 * bound
            ));
        }
        worst = worst.max(d_ref / bound);
    }
    Ok(CompiledReport {
        ops: ops.len(),
        outputs: outs.len(),
        nodes_before,
        nodes_after: report.nodes_after,
        rotations_before: counts_before.rotations,
        rotations_after: circuit.op_counts().rotations,
        worst_ratio: worst,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ir_matches_eager_bit_for_bit_on_every_preset() {
        for p in crate::presets() {
            let ctx = p.params.build();
            let report =
                run_ir_vs_eager(&ctx, 21, 50).unwrap_or_else(|e| panic!("preset {}: {e}", p.name));
            assert_eq!(report.ops, 50);
            assert!(report.compares >= 40, "most ops write a register");
            assert!(report.nodes >= report.compares);
        }
    }

    #[test]
    fn compiled_agrees_within_the_noise_bound_on_every_preset() {
        for p in crate::presets() {
            let ctx = p.params.build();
            for seed in [1u64, 7] {
                let r = run_compiled_vs_eager(&ctx, seed, 80, 64.0)
                    .unwrap_or_else(|e| panic!("preset {} seed {seed}: {e}", p.name));
                assert_eq!(r.ops, 80);
                assert!(r.outputs >= 1);
                assert!(r.worst_ratio <= 1.0);
                // dead register chains and duplicate work exist in any
                // long random sequence; the optimizer must shrink it
                assert!(r.nodes_after <= r.nodes_before);
                assert!(r.rotations_after <= r.rotations_before);
            }
        }
    }

    #[test]
    fn lowered_sequences_are_pass_clean_with_the_harness_keys() {
        let ctx = crate::preset("micro3").unwrap().params.build();
        let ops = crate::generate(&ctx, 4, 120);
        let (circuit, writes) = lower_ops(&ops, GraphBuilder::for_context(&ctx));
        assert_eq!(writes.len(), ops.len());
        circuit.validate().expect("well-formed");
        let report = PassManager::standard().run(&circuit);
        assert!(!report.has_errors(), "{}", report.render());
    }

    #[test]
    fn a_tampered_op_stream_is_caught() {
        // lower a *different* sequence than the one executed eagerly:
        // the limb comparison must fire (same seed ⇒ same inputs, but
        // sub where eager ran add diverges immediately)
        let ctx = crate::preset("micro2").unwrap().params.build();
        let ops = vec![
            DiffOp::Encrypt {
                dst: 0,
                value_seed: 3,
            },
            DiffOp::Encrypt {
                dst: 1,
                value_seed: 4,
            },
            DiffOp::Add { dst: 2, a: 0, b: 1 },
        ];
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), 77);
        let sk = kg.gen_secret_key();
        let pk = kg.gen_public_key(&sk);
        let ev = Evaluator::new(Arc::clone(&ctx));
        let mut enc = Sampler::from_seed_stream(77, 1);
        let vals = vec![0.5; ctx.slots()];
        let c0 = ev.encrypt_real(&vals, &pk, &mut enc);
        let c1 = ev.encrypt_real(&vals, &pk, &mut enc);
        let want = ev.add(&c0, &c1);

        let mut tampered = ops;
        tampered[2] = DiffOp::Sub { dst: 2, a: 0, b: 1 };
        let (circuit, writes) = lower_ops(&tampered, GraphBuilder::for_context(&ctx));
        let mut inputs = HashMap::new();
        inputs.insert(input_name(0), c0);
        inputs.insert(input_name(1), c1);
        let values = Interpreter::new(&ev)
            .run_all(&circuit, &inputs)
            .expect("interpretable");
        let got = values[writes[2].unwrap()].as_ct().unwrap();
        let same = (0..=got.level)
            .all(|li| got.c0.limb(li) == want.c0.limb(li) && got.c1.limb(li) == want.c1.limb(li));
        assert!(!same, "sub vs add must differ in the limbs");
    }
}
