//! Deterministic fault injection (feature `fault-inject`).
//!
//! Each injector corrupts exactly one thing, deterministically, and
//! bumps the he-trace fault counter. The guards below are thin wrappers
//! over *existing* defenses — nothing here detects anything on its own;
//! the point of the fault tests is to prove that the guards the
//! workspace already ships catch the corruption class they claim to:
//!
//! | fault                      | guard                                   |
//! |----------------------------|-----------------------------------------|
//! | residue-limb flip          | noise telemetry (`measured_error_bits`) |
//! | modulus drop (consistent)  | he-lint level admission                 |
//! | modulus drop (mismatched)  | [`Ciphertext::validate`]                |
//! | scale metadata skew        | headroom sampler (`headroom_bits`)      |
//! | relin-key digit truncation | noise telemetry after multiply          |

use ckks::noise::{headroom_bits, measured_error_bits};
use ckks::params::CkksContext;
use ckks::{Ciphertext, CkksParams, Evaluator, KeySwitchKey, RelinKey, SecretKey};
use ckks_math::fft::Complex;
use ckks_math::poly::RnsPoly;
use he_lint::{analyze, CircuitOp, CircuitPlan};
use std::sync::Arc;

// ---------------------------------------------------------------------
// injectors
// ---------------------------------------------------------------------

/// Flips one residue: adds ⌊q_i/2⌋ to a single coefficient of `c0` in
/// limb `limb` — a large error in one CRT component, invisible to all
/// metadata (level, scale, limb counts all stay consistent).
pub fn flip_residue_coeff(ct: &mut Ciphertext, limb: usize, coeff: usize) {
    let q = ct.c0.limb_modulus(limb).value();
    let data = ct.c0.limb_mut(limb);
    data[coeff] = (data[coeff] + q / 2) % q;
    he_trace::record_fault_injected(1);
}

/// Drops the top chain modulus *consistently*: limbs and level both
/// shrink, scale untouched. Structurally this is a silent modulus
/// switch — the ciphertext still validates and decrypts, but it has
/// lost a level the downstream circuit was counting on.
pub fn drop_modulus(ct: &mut Ciphertext) {
    assert!(ct.level >= 1, "cannot drop below level 0");
    ct.c0.drop_last_limb();
    ct.c1.drop_last_limb();
    ct.level -= 1;
    he_trace::record_fault_injected(1);
}

/// Drops the top limb of both polynomials but *leaves the level
/// metadata alone* — the kind of inconsistency a buggy serializer or a
/// truncated network read would produce.
pub fn drop_modulus_inconsistent(ct: &mut Ciphertext) {
    assert!(ct.level >= 1, "cannot drop below level 0");
    ct.c0.drop_last_limb();
    ct.c1.drop_last_limb();
    he_trace::record_fault_injected(1);
}

/// Skews the scale metadata by `factor` without touching polynomial
/// data: the payload silently decodes `factor`× off.
pub fn skew_scale(ct: &mut Ciphertext, factor: f64) {
    ct.scale *= factor;
    he_trace::record_fault_injected(1);
}

/// Returns a relin key whose *top* digit is zeroed — as if the last
/// key-switch digit was truncated in storage. Key-switching silently
/// ignores the contribution of the top decomposition digit, which
/// injects an error proportional to that digit's share of `d₂·s²`.
pub fn truncate_relin_digit(rk: &RelinKey) -> RelinKey {
    let mut digits: Vec<(RnsPoly, RnsPoly)> = rk.0.digits().to_vec();
    let last = digits.len() - 1;
    let zero_like =
        |p: &RnsPoly| RnsPoly::zero(Arc::clone(p.ctx()), p.limb_indices().to_vec(), p.form());
    digits[last] = (zero_like(&digits[last].0), zero_like(&digits[last].1));
    he_trace::record_fault_injected(1);
    RelinKey(KeySwitchKey::from_parts(digits, rk.0.variant))
}

// ---------------------------------------------------------------------
// guard wrappers (existing defenses, instrumented)
// ---------------------------------------------------------------------

/// Noise-telemetry guard: fires when the measured error exceeds the
/// analytic value-domain bound `bound` (same budget the differential
/// oracle enforces). Wraps [`measured_error_bits`].
pub fn noise_guard(
    ev: &Evaluator,
    ct: &Ciphertext,
    sk: &SecretKey,
    reference: &[Complex],
    bound: f64,
) -> bool {
    let detected = measured_error_bits(ev, ct, sk, reference) > bound.log2();
    if detected {
        he_trace::record_fault_detected(1);
    }
    detected
}

/// Headroom guard: fires when the structural headroom sampled from
/// ciphertext metadata drops below `min_bits`. Wraps [`headroom_bits`].
pub fn headroom_guard(ctx: &Arc<CkksContext>, ct: &Ciphertext, min_bits: f64) -> bool {
    let detected = headroom_bits(ctx, ct) < min_bits;
    if detected {
        he_trace::record_fault_detected(1);
    }
    detected
}

/// Structural guard: fires when [`Ciphertext::validate`] panics on a
/// metadata/limb inconsistency.
pub fn validate_guard(ct: &Ciphertext) -> bool {
    let detected =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ct.validate())).is_err();
    if detected {
        he_trace::record_fault_detected(1);
    }
    detected
}

/// Admission guard: fires when he-lint rejects running a circuit that
/// consumes `needed_levels` multiplicative levels from a ciphertext at
/// `start_level` — the check that catches a consistent modulus drop
/// before any polynomial math runs.
pub fn admission_guard(params: &CkksParams, needed_levels: usize, start_level: usize) -> bool {
    let ops: Vec<CircuitOp> = (0..needed_levels)
        .map(|i| CircuitOp::Linear {
            name: format!("layer{i}"),
            output_units: 1,
        })
        .collect();
    let plan = CircuitPlan::new(params.clone(), ops).with_start_level(start_level);
    let detected = analyze(&plan).has_errors();
    if detected {
        he_trace::record_fault_detected(1);
    }
    detected
}
