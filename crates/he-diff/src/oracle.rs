//! The differential oracle: dual-world execution with an analytic
//! error budget.
//!
//! Every op executes in two independent worlds sharing only the
//! parameter set and the plaintext reference:
//!
//! * **RNS world** — the production [`Evaluator`] over double-CRT
//!   polynomials with GHS hybrid key switching (keys from
//!   [`KeyGenerator`]).
//! * **Bignum world** — [`BigCkks`], textbook CKKS over multiprecision
//!   coefficients with schoolbook multiplication and `P = Q_L` relin
//!   (keys from [`BigCkks::keygen`]).
//!
//! After each register write, both worlds decrypt and are compared
//! against the exact plaintext reference. The admissible error is the
//! [`NoiseModel`] bound composed along the executed sequence ("the
//! lint noise trajectory"), times one fixed safety factor
//! ([`DiffConfig::safety`], default 64 ≈ 6 bits: the model is an
//! average-case heuristic, while genuine divergences — a wrong limb, a
//! dropped digit, a scale slip — miss by orders of magnitude). No
//! per-op epsilon is ever tuned to observations.

use crate::gen::DiffOp;
use crate::sim::NUM_REGS;
use ckks::bigckks::{BigCiphertext, BigCkks, BigGaloisKeys, BigKeys};
use ckks::params::CkksContext;
use ckks::{Ciphertext, Evaluator, GaloisKeys, KeyGenerator, PublicKey, RelinKey, SecretKey};
use ckks_math::sampler::Sampler;
use cnn_he::rns_input::SignalDecomposition;
use he_lint::NoiseModel;
use rand::Rng;
use std::sync::Arc;

/// Oracle configuration.
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Multiplier on the composed analytic bound. Fixed and documented,
    /// never fitted: 64 (≈6 bits) of slack over the average-case
    /// heuristic model.
    pub safety: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self { safety: 64.0 }
    }
}

/// A detected disagreement between the worlds (or with the reference).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the op whose check failed.
    pub op_index: usize,
    /// The op itself.
    pub op: DiffOp,
    /// Which comparison failed: `"rns"`, `"bigckks"`, `"cross"`, `"crt"`.
    pub world: &'static str,
    /// Measured max-abs error.
    pub measured: f64,
    /// The bound it had to stay under.
    pub bound: f64,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "op #{} ({}): {} error {:.3e} exceeds bound {:.3e}",
            self.op_index,
            self.op.render(),
            self.world,
            self.measured,
            self.bound
        )
    }
}

/// Summary of a clean run.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Ops executed.
    pub ops: usize,
    /// Decrypt-and-compare checks performed.
    pub checks: usize,
    /// Worst observed `measured / bound` over all checks (≤ 1 when the
    /// run passes; how close the model came to firing).
    pub worst_ratio: f64,
}

struct RegState {
    rns: Ciphertext,
    big: BigCiphertext,
    refv: Vec<f64>,
    /// Composed analytic per-slot error bound (value domain).
    err: f64,
}

impl RegState {
    fn mag(&self) -> f64 {
        self.refv.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

/// The two key worlds plus the shared model, reusable across sequences
/// (key generation dominates short runs).
pub struct Harness {
    ctx: Arc<CkksContext>,
    model: NoiseModel,
    // RNS world
    ev: Evaluator,
    sk: SecretKey,
    pk: PublicKey,
    rk: RelinKey,
    gk: GaloisKeys,
    rns_enc: Sampler,
    // bignum world
    scheme: BigCkks,
    big_keys: BigKeys,
    big_gk: BigGaloisKeys,
    big_enc: Sampler,
}

impl Harness {
    /// Builds both worlds from independent substreams of `seed`.
    pub fn new(ctx: Arc<CkksContext>, seed: u64) -> Self {
        let model = NoiseModel::new(ctx.params());
        let mut kg = KeyGenerator::new(Arc::clone(&ctx), seed ^ 0xA11C_E5ED);
        let sk = kg.gen_secret_key();
        let pk = kg.gen_public_key(&sk);
        let rk = kg.gen_relin_key(&sk);
        let gk = kg.gen_galois_keys(&sk, &crate::ROTATE_STEPS, false);
        let ev = Evaluator::new(Arc::clone(&ctx));

        let scheme = BigCkks::new(Arc::clone(&ctx));
        let mut big_sampler = Sampler::from_seed_stream(seed, 2);
        let big_keys = scheme.keygen(&mut big_sampler);
        let big_gk =
            scheme.gen_galois_keys(&big_keys, &crate::ROTATE_STEPS, false, &mut big_sampler);

        Self {
            ctx,
            model,
            ev,
            sk,
            pk,
            rk,
            gk,
            rns_enc: Sampler::from_seed_stream(seed, 1),
            scheme,
            big_keys,
            big_gk,
            big_enc: big_sampler,
        }
    }

    /// Executes a sequence, checking both worlds after every register
    /// write. Returns the divergence of the first failed check.
    pub fn run(&mut self, ops: &[DiffOp], cfg: &DiffConfig) -> Result<RunReport, Box<Divergence>> {
        let slots = self.ctx.slots();
        let scale = self.ctx.params().scale();
        let mut regs: [Option<RegState>; NUM_REGS] = Default::default();
        let mut checks = 0usize;
        let mut worst = 0.0f64;

        for (i, op) in ops.iter().enumerate() {
            let fail = |world, measured, bound| {
                Box::new(Divergence {
                    op_index: i,
                    op: op.clone(),
                    world,
                    measured,
                    bound,
                })
            };
            let new_state: Option<RegState> = match *op {
                DiffOp::Encrypt { value_seed, .. } => {
                    let mut vs = Sampler::from_seed_stream(value_seed, 0);
                    let refv: Vec<f64> =
                        (0..slots).map(|_| vs.rng().gen_range(-1.0..1.0)).collect();
                    let rns = self.ev.encrypt_real(&refv, &self.pk, &mut self.rns_enc);
                    let big = self.scheme.encrypt_coeffs(
                        &self.scheme.encode_slots(&refv, scale),
                        scale,
                        &self.big_keys,
                        &mut self.big_enc,
                    );
                    Some(RegState {
                        rns,
                        big,
                        refv,
                        err: self.model.fresh_value(scale),
                    })
                }
                DiffOp::Add { a, b, .. } | DiffOp::Sub { a, b, .. } => {
                    let sub = matches!(op, DiffOp::Sub { .. });
                    let (ra, rb) = (regs[a].as_ref().unwrap(), regs[b].as_ref().unwrap());
                    let rns = if sub {
                        self.ev.sub(&ra.rns, &rb.rns)
                    } else {
                        self.ev.add(&ra.rns, &rb.rns)
                    };
                    let big = if sub {
                        self.scheme.sub(&ra.big, &rb.big)
                    } else {
                        self.scheme.add(&ra.big, &rb.big)
                    };
                    let refv: Vec<f64> = ra
                        .refv
                        .iter()
                        .zip(&rb.refv)
                        .map(|(x, y)| if sub { x - y } else { x + y })
                        .collect();
                    Some(RegState {
                        rns,
                        big,
                        refv,
                        err: self.model.add_value(ra.err, rb.err),
                    })
                }
                DiffOp::Negate { src, .. } => {
                    let r = regs[src].as_ref().unwrap();
                    Some(RegState {
                        rns: self.ev.negate(&r.rns),
                        big: self.scheme.negate(&r.big),
                        refv: r.refv.iter().map(|v| -v).collect(),
                        err: r.err,
                    })
                }
                DiffOp::MulRelin { a, b, .. } => {
                    let (ra, rb) = (regs[a].as_ref().unwrap(), regs[b].as_ref().unwrap());
                    let rns = self.ev.multiply(&ra.rns, &rb.rns, &self.rk);
                    let big = self.scheme.multiply(&ra.big, &rb.big, &self.big_keys);
                    let refv: Vec<f64> = ra.refv.iter().zip(&rb.refv).map(|(x, y)| x * y).collect();
                    let err = self.model.mul_value(
                        ra.mag(),
                        ra.err,
                        rb.mag(),
                        rb.err,
                        ra.rns.scale * rb.rns.scale,
                    );
                    Some(RegState {
                        rns,
                        big,
                        refv,
                        err,
                    })
                }
                DiffOp::Rescale { src, .. } => {
                    let r = regs[src].as_ref().unwrap();
                    let rns = self.ev.rescale(&r.rns);
                    let big = self.scheme.rescale(&r.big);
                    let err = self.model.rescale_value(r.err, rns.scale);
                    Some(RegState {
                        rns,
                        big,
                        refv: r.refv.clone(),
                        err,
                    })
                }
                DiffOp::Rotate { src, steps, .. } => {
                    let r = regs[src].as_ref().unwrap();
                    let rns = self.ev.rotate(&r.rns, steps, &self.gk);
                    let big = self.scheme.rotate(&r.big, steps, &self.big_gk);
                    let shift = steps.rem_euclid(slots as i64) as usize;
                    let refv: Vec<f64> = (0..slots).map(|j| r.refv[(j + shift) % slots]).collect();
                    let err = self.model.rotate_value(r.err, r.rns.scale);
                    Some(RegState {
                        rns,
                        big,
                        refv,
                        err,
                    })
                }
                DiffOp::CrtRoundTrip {
                    streams,
                    max_abs,
                    value_seed,
                } => {
                    if let Err(measured) = crt_round_trip(streams, max_abs, value_seed) {
                        return Err(fail("crt", measured, 0.0));
                    }
                    checks += 1;
                    None
                }
            };

            if let Some(state) = new_state {
                let bound = cfg.safety * state.err;
                let dec_rns = self.ev.decrypt_to_real(&state.rns, &self.sk);
                let dec_big = self.scheme.decrypt_to_real(&state.big, &self.big_keys);
                let d_rns = max_abs_diff(&dec_rns[..slots], &state.refv);
                let d_big = max_abs_diff(&dec_big[..slots], &state.refv);
                let d_cross = max_abs_diff(&dec_rns[..slots], &dec_big[..slots]);
                checks += 1;
                if d_rns > bound {
                    return Err(fail("rns", d_rns, bound));
                }
                if d_big > bound {
                    return Err(fail("bigckks", d_big, bound));
                }
                // each world is within `bound` of the reference, so
                // their mutual distance must stay under twice that
                if d_cross > 2.0 * bound {
                    return Err(fail("cross", d_cross, 2.0 * bound));
                }
                worst = worst.max(d_rns / bound).max(d_big / bound);
                regs[op.dst().expect("register op")] = Some(state);
            }
        }

        Ok(RunReport {
            ops: ops.len(),
            checks,
            worst_ratio: worst,
        })
    }
}

/// Plain-integer CRT codec split→recompose, both forms, bit-exact.
/// Returns `Err(count_of_mismatches)` on any round-trip defect.
fn crt_round_trip(streams: usize, max_abs: i64, value_seed: u64) -> Result<(), f64> {
    let Ok(codec) = SignalDecomposition::try_new(streams, max_abs) else {
        return Err(f64::INFINITY);
    };
    let mut vs = Sampler::from_seed_stream(value_seed, 1);
    let signed: Vec<i64> = (0..64)
        .map(|_| vs.rng().gen_range(-max_abs..=max_abs))
        .collect();
    let unsigned: Vec<i64> = signed.iter().map(|v| v.abs()).collect();

    let residues = codec.decompose_residues(&signed);
    let back = codec.recompose_residues(&residues);
    let residue_bad = back.iter().zip(&signed).filter(|(a, b)| a != b).count();

    let digits = codec.decompose_digits(&unsigned);
    let digit_bad = match codec.try_recompose_digits(&digits) {
        Ok(v) => v.iter().zip(&unsigned).filter(|(a, b)| a != b).count(),
        Err(_) => unsigned.len(),
    };

    if residue_bad + digit_bad > 0 {
        return Err((residue_bad + digit_bad) as f64);
    }
    Ok(())
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Generates and runs one seeded sequence against a fresh harness.
pub fn run_sequence(
    ctx: &Arc<CkksContext>,
    seed: u64,
    count: usize,
    cfg: &DiffConfig,
) -> Result<RunReport, Box<Divergence>> {
    let ops = crate::generate(ctx, seed, count);
    Harness::new(Arc::clone(ctx), seed).run(&ops, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_sequences_pass_on_micro2() {
        let ctx = crate::preset("micro2").unwrap().params.build();
        for seed in [1u64, 2, 3] {
            let report = run_sequence(&ctx, seed, 40, &DiffConfig::default())
                .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            assert_eq!(report.ops, 40);
            assert!(report.checks >= 40);
            assert!(report.worst_ratio <= 1.0);
        }
    }

    #[test]
    fn depth3_sequences_pass_on_micro3() {
        let ctx = crate::preset("micro3").unwrap().params.build();
        let report =
            run_sequence(&ctx, 5, 60, &DiffConfig::default()).unwrap_or_else(|d| panic!("{d}"));
        assert!(report.worst_ratio > 0.0, "checks actually measured error");
    }

    #[test]
    fn tampered_world_is_caught() {
        // sanity that the comparison has teeth: corrupt the reference
        // world mid-run by executing mismatched sequences
        let ctx = crate::preset("micro2").unwrap().params.build();
        let mut h = Harness::new(Arc::clone(&ctx), 9);
        let ops = vec![
            DiffOp::Encrypt {
                dst: 0,
                value_seed: 11,
            },
            // claim the register holds its double (add) while checking
            // against a reference computed for a different op shape is
            // impossible through the public API — instead check that a
            // deliberately wrong op stream (sub vs add) diverges.
            DiffOp::Sub { dst: 1, a: 0, b: 0 },
        ];
        // r0 − r0 = 0 exactly; both worlds agree, reference agrees: pass
        assert!(h.run(&ops, &DiffConfig::default()).is_ok());
        // an absurd safety factor makes any fresh noise a "divergence",
        // proving the bound comparison is live
        let tiny = DiffConfig { safety: 1e-12 };
        let err = Harness::new(ctx, 9).run(&ops, &tiny).unwrap_err();
        assert_eq!(err.op_index, 0);
        assert!(err.measured > err.bound);
    }
}
