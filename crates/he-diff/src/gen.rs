//! Seeded op-sequence generator.
//!
//! Sequences are fully determined by `(params, seed, count)`: the op
//! stream, operand choices, and every encrypted value derive from
//! independent substreams of the seed
//! ([`Sampler::from_seed_stream`]), so a failure report's seed replays
//! the exact sequence anywhere. Encrypt/codec ops carry their own
//! `value_seed`, which keeps an op's payload stable when the minimizer
//! deletes ops around it.

use crate::sim::{SimState, NUM_REGS};
use ckks::params::CkksContext;
use ckks_math::sampler::Sampler;
use rand::Rng;
use std::sync::Arc;

/// One differential-oracle operation over the register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOp {
    /// Encrypt a fresh register; slot values derive from `value_seed`.
    Encrypt {
        dst: usize,
        value_seed: u64,
    },
    Add {
        dst: usize,
        a: usize,
        b: usize,
    },
    Sub {
        dst: usize,
        a: usize,
        b: usize,
    },
    Negate {
        dst: usize,
        src: usize,
    },
    /// Tensor product + relinearization (no rescale).
    MulRelin {
        dst: usize,
        a: usize,
        b: usize,
    },
    Rescale {
        dst: usize,
        src: usize,
    },
    Rotate {
        dst: usize,
        src: usize,
        steps: i64,
    },
    /// Plain-integer CRT codec split→recompose over `streams` moduli,
    /// checked bit-exact (residue and digit forms).
    CrtRoundTrip {
        streams: usize,
        max_abs: i64,
        value_seed: u64,
    },
}

impl DiffOp {
    /// Destination register, if the op writes one.
    pub fn dst(&self) -> Option<usize> {
        match *self {
            DiffOp::Encrypt { dst, .. }
            | DiffOp::Add { dst, .. }
            | DiffOp::Sub { dst, .. }
            | DiffOp::Negate { dst, .. }
            | DiffOp::MulRelin { dst, .. }
            | DiffOp::Rescale { dst, .. }
            | DiffOp::Rotate { dst, .. } => Some(dst),
            DiffOp::CrtRoundTrip { .. } => None,
        }
    }

    /// Registers the op reads.
    pub fn srcs(&self) -> Vec<usize> {
        match *self {
            DiffOp::Encrypt { .. } | DiffOp::CrtRoundTrip { .. } => vec![],
            DiffOp::Add { a, b, .. } | DiffOp::Sub { a, b, .. } | DiffOp::MulRelin { a, b, .. } => {
                vec![a, b]
            }
            DiffOp::Negate { src, .. }
            | DiffOp::Rescale { src, .. }
            | DiffOp::Rotate { src, .. } => {
                vec![src]
            }
        }
    }

    /// Compact single-line rendering (`add r2 <- r0, r1`).
    pub fn render(&self) -> String {
        match *self {
            DiffOp::Encrypt { dst, value_seed } => format!("enc r{dst} <- seed {value_seed:#x}"),
            DiffOp::Add { dst, a, b } => format!("add r{dst} <- r{a}, r{b}"),
            DiffOp::Sub { dst, a, b } => format!("sub r{dst} <- r{a}, r{b}"),
            DiffOp::Negate { dst, src } => format!("neg r{dst} <- r{src}"),
            DiffOp::MulRelin { dst, a, b } => format!("mul r{dst} <- r{a}, r{b}"),
            DiffOp::Rescale { dst, src } => format!("rescale r{dst} <- r{src}"),
            DiffOp::Rotate { dst, src, steps } => format!("rot({steps}) r{dst} <- r{src}"),
            DiffOp::CrtRoundTrip {
                streams,
                max_abs,
                value_seed,
            } => format!("crt k={streams} max={max_abs} seed {value_seed:#x}"),
        }
    }
}

/// Generates a feasible `count`-op sequence for the context, seeded.
///
/// The first ops always encrypt three registers so every kind has
/// operands; thereafter kinds are drawn by weight and infeasible draws
/// are retried (the sim guarantees the evaluator accepts the result).
pub fn generate(ctx: &Arc<CkksContext>, seed: u64, count: usize) -> Vec<DiffOp> {
    let mut chooser = Sampler::from_seed_stream(seed, 0xD1FF);
    // payload seeds are drawn once at generation time and stored inline
    // in the op, so deleting neighbours during minimization never shifts
    // a surviving op's values
    let next_value_seed = |chooser: &mut Sampler| chooser.rng().gen::<u64>();

    let mut sim = SimState::new(Arc::clone(ctx));
    let mut ops = Vec::with_capacity(count);
    for dst in 0..3.min(count) {
        let op = DiffOp::Encrypt {
            dst,
            value_seed: next_value_seed(&mut chooser),
        };
        sim.apply(&op);
        ops.push(op);
    }

    while ops.len() < count {
        let r = chooser.rng().gen_range(0..13u32);
        let dst = chooser.rng().gen_range(0..NUM_REGS);
        let pick = |c: &mut Sampler| c.rng().gen_range(0..NUM_REGS);
        let candidate = match r {
            0 => DiffOp::Encrypt {
                dst,
                value_seed: next_value_seed(&mut chooser),
            },
            1 | 2 => DiffOp::Add {
                dst,
                a: pick(&mut chooser),
                b: pick(&mut chooser),
            },
            3 | 4 => DiffOp::Sub {
                dst,
                a: pick(&mut chooser),
                b: pick(&mut chooser),
            },
            5 => DiffOp::Negate {
                dst,
                src: pick(&mut chooser),
            },
            6 | 7 => DiffOp::MulRelin {
                dst,
                a: pick(&mut chooser),
                b: pick(&mut chooser),
            },
            8 | 9 => DiffOp::Rescale {
                dst,
                src: pick(&mut chooser),
            },
            10 | 11 => DiffOp::Rotate {
                dst,
                src: pick(&mut chooser),
                steps: crate::ROTATE_STEPS[chooser.rng().gen_range(0..crate::ROTATE_STEPS.len())],
            },
            _ => DiffOp::CrtRoundTrip {
                streams: chooser.rng().gen_range(1..=6usize),
                max_abs: [255i64, 1 << 15, 1 << 30][chooser.rng().gen_range(0..3usize)],
                value_seed: next_value_seed(&mut chooser),
            },
        };
        if sim.apply(&candidate) {
            ops.push(candidate);
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::validate_sequence;

    #[test]
    fn generated_sequences_are_deterministic_and_valid() {
        let ctx = crate::preset("micro2").unwrap().params.build();
        let a = generate(&ctx, 7, 60);
        let b = generate(&ctx, 7, 60);
        assert_eq!(a, b, "same seed must reproduce the sequence");
        assert_eq!(a.len(), 60);
        assert!(validate_sequence(&ctx, &a));
        let c = generate(&ctx, 8, 60);
        assert_ne!(a, c, "different seed should differ");
    }

    #[test]
    fn generator_covers_every_op_kind() {
        let ctx = crate::preset("micro3").unwrap().params.build();
        let ops = generate(&ctx, 1, 300);
        let kind = |op: &DiffOp| match op {
            DiffOp::Encrypt { .. } => 0usize,
            DiffOp::Add { .. } => 1,
            DiffOp::Sub { .. } => 2,
            DiffOp::Negate { .. } => 3,
            DiffOp::MulRelin { .. } => 4,
            DiffOp::Rescale { .. } => 5,
            DiffOp::Rotate { .. } => 6,
            DiffOp::CrtRoundTrip { .. } => 7,
        };
        let mut seen = [false; 8];
        for op in &ops {
            seen[kind(op)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "300 ops should exercise all kinds: {seen:?}"
        );
    }
}
