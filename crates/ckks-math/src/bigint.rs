//! A small signed arbitrary-precision integer.
//!
//! The RNS stack needs big integers only off the hot path: CRT composition
//! when decoding, centered reduction modulo the full `q = Π qᵢ`, the
//! bignum reference CKKS used for cross-validation, and tests. Schoolbook
//! algorithms are therefore perfectly adequate — operands are a few
//! hundred bits.
//!
//! Representation: sign + little-endian `u64` magnitude with no trailing
//! zero limbs (zero is the empty magnitude with `neg = false`).

use std::cmp::Ordering;
use std::fmt;

/// Signed arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BigInt {
    neg: bool,
    mag: Vec<u64>, // little-endian, normalized (no trailing zeros)
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self.to_decimal_string())
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal_string())
    }
}

fn normalize(mag: &mut Vec<u64>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            o => return o,
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let s = long[i] as u128 + *short.get(i).unwrap_or(&0) as u128 + carry as u128;
        out.push(s as u64);
        carry = (s >> 64) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// a - b, requires a >= b (magnitudes).
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let bi = *b.get(i).unwrap_or(&0);
        let (d1, o1) = a[i].overflowing_sub(bi);
        let (d2, o2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (o1 as u64) + (o2 as u64);
    }
    debug_assert_eq!(borrow, 0);
    normalize(&mut out);
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let t = out[i + j] as u128 + x as u128 * y as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    normalize(&mut out);
    out
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// One.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    pub fn from_u64(v: u64) -> Self {
        let mut mag = vec![v];
        normalize(&mut mag);
        Self { neg: false, mag }
    }

    pub fn from_i64(v: i64) -> Self {
        let mut b = Self::from_u64(v.unsigned_abs());
        b.neg = v < 0 && !b.is_zero();
        b
    }

    pub fn from_u128(v: u128) -> Self {
        let mut mag = vec![v as u64, (v >> 64) as u64];
        normalize(&mut mag);
        Self { neg: false, mag }
    }

    /// Builds from little-endian u64 limbs (unsigned).
    pub fn from_limbs(limbs: &[u64]) -> Self {
        let mut mag = limbs.to_vec();
        normalize(&mut mag);
        Self { neg: false, mag }
    }

    #[inline]
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    #[inline]
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// Number of significant bits of the magnitude (0 for zero).
    pub fn bits(&self) -> u32 {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    pub fn neg(&self) -> Self {
        if self.is_zero() {
            self.clone()
        } else {
            Self {
                neg: !self.neg,
                mag: self.mag.clone(),
            }
        }
    }

    pub fn abs(&self) -> Self {
        Self {
            neg: false,
            mag: self.mag.clone(),
        }
    }

    pub fn add(&self, other: &Self) -> Self {
        if self.neg == other.neg {
            Self {
                neg: self.neg,
                mag: mag_add(&self.mag, &other.mag),
            }
        } else {
            match mag_cmp(&self.mag, &other.mag) {
                Ordering::Equal => Self::zero(),
                Ordering::Greater => Self {
                    neg: self.neg,
                    mag: mag_sub(&self.mag, &other.mag),
                },
                Ordering::Less => Self {
                    neg: other.neg,
                    mag: mag_sub(&other.mag, &self.mag),
                },
            }
        }
    }

    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    pub fn mul(&self, other: &Self) -> Self {
        let mag = mag_mul(&self.mag, &other.mag);
        let neg = self.neg != other.neg && !mag.is_empty();
        Self { neg, mag }
    }

    pub fn mul_u64(&self, v: u64) -> Self {
        self.mul(&Self::from_u64(v))
    }

    pub fn shl(&self, bits: u32) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut mag = vec![0u64; limb_shift];
        if bit_shift == 0 {
            mag.extend_from_slice(&self.mag);
        } else {
            let mut carry = 0u64;
            for &w in &self.mag {
                mag.push((w << bit_shift) | carry);
                carry = w >> (64 - bit_shift);
            }
            if carry != 0 {
                mag.push(carry);
            }
        }
        Self { neg: self.neg, mag }
    }

    /// Arithmetic right shift of the magnitude (floor for positive,
    /// truncation toward zero in magnitude for negative — callers that need
    /// floor semantics for negatives should use `div_rem_floor`).
    pub fn shr(&self, bits: u32) -> Self {
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        if limb_shift >= self.mag.len() {
            return Self::zero();
        }
        let mut mag: Vec<u64> = self.mag[limb_shift..].to_vec();
        if bit_shift != 0 {
            for i in 0..mag.len() {
                let hi = if i + 1 < mag.len() { mag[i + 1] } else { 0 };
                mag[i] = (mag[i] >> bit_shift) | (hi << (64 - bit_shift));
            }
        }
        normalize(&mut mag);
        let neg = self.neg && !mag.is_empty();
        Self { neg, mag }
    }

    pub fn cmp_big(&self, other: &Self) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => mag_cmp(&self.mag, &other.mag),
            (true, true) => mag_cmp(&other.mag, &self.mag),
        }
    }

    /// Unsigned magnitude division: returns `(quotient, remainder)` with
    /// both signs handled so that `self = q*d + r` and `0 <= |r| < |d|`,
    /// `r` carrying the sign of `self` (truncated division).
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero");
        if mag_cmp(&self.mag, &divisor.mag) == Ordering::Less {
            return (Self::zero(), self.clone());
        }
        // Binary long division over magnitudes.
        let shift = self.bits() - divisor.bits();
        let mut rem = Self {
            neg: false,
            mag: self.mag.clone(),
        };
        let mut quot = Self::zero();
        let dabs = divisor.abs();
        for s in (0..=shift).rev() {
            let shifted = dabs.shl(s);
            if mag_cmp(&rem.mag, &shifted.mag) != Ordering::Less {
                rem.mag = mag_sub(&rem.mag, &shifted.mag);
                quot = quot.add(&Self::one().shl(s));
            }
        }
        quot.neg = (self.neg != divisor.neg) && !quot.is_zero();
        rem.neg = self.neg && !rem.is_zero();
        (quot, rem)
    }

    /// Euclidean remainder in `[0, |d|)`.
    pub fn rem_euclid(&self, divisor: &Self) -> Self {
        let (_, r) = self.div_rem(divisor);
        if r.neg {
            r.add(&divisor.abs())
        } else {
            r
        }
    }

    /// Centered remainder in `(-|d|/2, |d|/2]`.
    pub fn rem_centered(&self, divisor: &Self) -> Self {
        let r = self.rem_euclid(divisor);
        let half = divisor.abs().shr(1);
        if r.cmp_big(&half) == Ordering::Greater {
            r.sub(&divisor.abs())
        } else {
            r
        }
    }

    /// Fast remainder by a word-size modulus, result in `[0, m)`.
    pub fn rem_u64(&self, m: u64) -> u64 {
        let mut r: u128 = 0;
        for &w in self.mag.iter().rev() {
            r = ((r << 64) | w as u128) % m as u128;
        }
        let r = r as u64;
        if self.neg && r != 0 {
            m - r
        } else {
            r
        }
    }

    /// Exact conversion to `i64`; panics if the value does not fit.
    pub fn to_i64(&self) -> i64 {
        if self.is_zero() {
            return 0;
        }
        assert!(self.bits() <= 63, "BigInt does not fit in i64");
        let v = self.mag[0] as i64;
        if self.neg {
            -v
        } else {
            v
        }
    }

    /// Lossy conversion to `f64` (correct to ~53 bits, handles any size via
    /// exponent scaling).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let v = if self.mag.len() == 1 {
            self.mag[0] as f64
        } else {
            // Combine the top two limbs (>= 65 significant bits), truncate to
            // a 64-bit mantissa, and scale by the dropped exponent.
            let top = self.mag.len() - 1;
            let x = ((self.mag[top] as u128) << 64) | self.mag[top - 1] as u128;
            let xbits = 128 - x.leading_zeros();
            let shift = xbits - 53;
            let mantissa = (x >> shift) as u64 as f64;
            mantissa * 2f64.powi(64 * (top as i32 - 1) + shift as i32)
        };
        if self.neg {
            -v
        } else {
            v
        }
    }

    /// Exact conversion from `f64` of integral value (rounds to nearest).
    pub fn from_f64_rounded(x: f64) -> Self {
        assert!(x.is_finite(), "cannot convert non-finite float");
        let neg = x < 0.0;
        let mut v = x.abs().round();
        let mut limbs = Vec::new();
        let base = 2f64.powi(64);
        while v >= 1.0 {
            let rem = v % base;
            limbs.push(rem as u64);
            v = (v - rem) / base;
        }
        let mut b = Self::from_limbs(&limbs);
        b.neg = neg && !b.is_zero();
        b
    }

    fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut digits = Vec::new();
        let mut mag = self.mag.clone();
        while !mag.is_empty() {
            // divide mag by 10^19 (fits u64), collect remainder
            const CHUNK: u64 = 10_000_000_000_000_000_000;
            let mut rem: u128 = 0;
            for w in mag.iter_mut().rev() {
                let cur = (rem << 64) | *w as u128;
                *w = (cur / CHUNK as u128) as u64;
                rem = cur % CHUNK as u128;
            }
            normalize(&mut mag);
            digits.push(rem as u64);
        }
        let mut s = String::new();
        if self.neg {
            s.push('-');
        }
        s.push_str(&digits.pop().unwrap().to_string());
        while let Some(d) = digits.pop() {
            s.push_str(&format!("{d:019}"));
        }
        s
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_arithmetic() {
        let a = BigInt::from_i64(1234);
        let b = BigInt::from_i64(-5678);
        assert_eq!(a.add(&b), BigInt::from_i64(1234 - 5678));
        assert_eq!(a.sub(&b), BigInt::from_i64(1234 + 5678));
        assert_eq!(a.mul(&b), BigInt::from_i64(1234 * -5678));
        assert_eq!(b.neg(), BigInt::from_i64(5678));
        assert!(BigInt::zero().is_zero());
        assert_eq!(BigInt::from_i64(-1).to_f64(), -1.0);
    }

    #[test]
    fn carries_across_limbs() {
        let max = BigInt::from_u64(u64::MAX);
        let one = BigInt::one();
        let sum = max.add(&one);
        assert_eq!(sum.bits(), 65);
        assert_eq!(sum.sub(&one), max);
        let sq = max.mul(&max);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expect = BigInt::one()
            .shl(128)
            .sub(&BigInt::one().shl(65))
            .add(&BigInt::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn shifts() {
        let a = BigInt::from_u64(0b1011);
        assert_eq!(a.shl(70).shr(70), a);
        assert_eq!(a.shl(3), BigInt::from_u64(0b1011000));
        assert_eq!(a.shr(2), BigInt::from_u64(0b10));
        assert_eq!(a.shr(10), BigInt::zero());
    }

    #[test]
    fn division_basics() {
        let a = BigInt::from_u64(1000);
        let b = BigInt::from_u64(7);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, BigInt::from_u64(142));
        assert_eq!(r, BigInt::from_u64(6));

        let big = BigInt::one().shl(200).add(&BigInt::from_u64(12345));
        let d = BigInt::one().shl(100);
        let (q, r) = big.div_rem(&d);
        assert_eq!(q, BigInt::one().shl(100));
        assert_eq!(r, BigInt::from_u64(12345));
    }

    #[test]
    fn signed_division_and_remainders() {
        let a = BigInt::from_i64(-1000);
        let b = BigInt::from_u64(7);
        let (q, r) = a.div_rem(&b);
        // truncated: -1000 = -142*7 - 6
        assert_eq!(q, BigInt::from_i64(-142));
        assert_eq!(r, BigInt::from_i64(-6));
        assert_eq!(a.rem_euclid(&b), BigInt::from_u64(1));
        // centered of 6 mod 7 is -1
        assert_eq!(BigInt::from_u64(6).rem_centered(&b), BigInt::from_i64(-1));
        assert_eq!(BigInt::from_u64(3).rem_centered(&b), BigInt::from_u64(3));
    }

    #[test]
    fn rem_u64_matches_div_rem() {
        let a = BigInt::one().shl(130).add(&BigInt::from_u64(999));
        let m = 1_000_003u64;
        assert_eq!(
            a.rem_u64(m),
            a.rem_euclid(&BigInt::from_u64(m)).to_f64() as u64
        );
        let an = a.neg();
        assert_eq!(
            an.rem_u64(m),
            an.rem_euclid(&BigInt::from_u64(m)).to_f64() as u64
        );
    }

    #[test]
    fn f64_conversions() {
        let a = BigInt::from_f64_rounded(1.5e18);
        assert!((a.to_f64() - 1.5e18).abs() < 1e4);
        let big = BigInt::one().shl(300);
        let f = big.to_f64();
        assert!((f.log2() - 300.0).abs() < 1e-9);
        assert_eq!(BigInt::from_f64_rounded(-42.4), BigInt::from_i64(-42));
        assert_eq!(BigInt::from_f64_rounded(0.2), BigInt::zero());
    }

    #[test]
    fn decimal_printing() {
        assert_eq!(BigInt::zero().to_string(), "0");
        assert_eq!(BigInt::from_i64(-12345).to_string(), "-12345");
        // 2^64 = 18446744073709551616
        assert_eq!(BigInt::one().shl(64).to_string(), "18446744073709551616");
    }

    #[test]
    #[should_panic]
    fn div_by_zero_panics() {
        let _ = BigInt::one().div_rem(&BigInt::zero());
    }

    fn arb_bigint() -> impl Strategy<Value = BigInt> {
        (proptest::collection::vec(any::<u64>(), 0..5), any::<bool>()).prop_map(|(limbs, neg)| {
            let mut b = BigInt::from_limbs(&limbs);
            if neg && !b.is_zero() {
                b = b.neg();
            }
            b
        })
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in arb_bigint(), b in arb_bigint()) {
            prop_assert_eq!(a.add(&b).sub(&b), a);
        }

        #[test]
        fn prop_mul_commutes(a in arb_bigint(), b in arb_bigint()) {
            prop_assert_eq!(a.mul(&b), b.mul(&a));
        }

        #[test]
        fn prop_distributive(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn prop_div_rem_identity(a in arb_bigint(), b in arb_bigint()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(q.mul(&b).add(&r), a.clone());
            prop_assert!(r.abs().cmp_big(&b.abs()) == std::cmp::Ordering::Less);
        }

        #[test]
        fn prop_rem_u64(a in arb_bigint(), m in 2u64..u64::MAX/4) {
            let r = a.rem_u64(m);
            prop_assert!(r < m);
            let via_big = a.rem_euclid(&BigInt::from_u64(m));
            prop_assert_eq!(BigInt::from_u64(r), via_big);
        }

        #[test]
        fn prop_shift_roundtrip(a in arb_bigint(), s in 0u32..200) {
            prop_assert_eq!(a.shl(s).shr(s), a);
        }

        #[test]
        fn prop_ordering_consistent(a in arb_bigint(), b in arb_bigint()) {
            let diff = a.sub(&b);
            match a.cmp_big(&b) {
                Ordering::Less => prop_assert!(diff.is_negative()),
                Ordering::Equal => prop_assert!(diff.is_zero()),
                Ordering::Greater => prop_assert!(!diff.is_negative() && !diff.is_zero()),
            }
        }
    }
}
