//! Modular arithmetic over word-sized prime moduli.
//!
//! All moduli used by the RNS-CKKS stack are primes `p < 2^61` so that the
//! lazy-reduction tricks below (values kept in `[0, 4p)` inside NTT
//! butterflies) never overflow a `u64`. Two reduction strategies are
//! provided:
//!
//! * **Barrett reduction** against a per-modulus precomputed `⌊2^128 / p⌋`
//!   ratio, used for general products where neither operand is known in
//!   advance.
//! * **Shoup multiplication**, used when one operand is a precomputed
//!   constant (NTT twiddles, plaintext scalars): `mul_shoup` costs one
//!   widening multiply plus one wrapping multiply.

/// Largest admissible modulus bit size. Keeping `p < 2^61` guarantees
/// `4p < 2^63` so lazy NTT accumulators never overflow.
pub const MAX_MODULUS_BITS: u32 = 61;

/// A word-sized prime modulus with Barrett precomputation.
///
/// The struct is cheap to copy and is the unit the whole RNS stack is
/// parameterised over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// `⌊2^128 / value⌋` as (low, high) words — SEAL-style Barrett ratio.
    const_ratio: [u64; 2],
}

impl Modulus {
    /// Creates a modulus. Panics if `value < 2` or `value >= 2^61`.
    pub fn new(value: u64) -> Self {
        assert!(value >= 2, "modulus must be >= 2");
        assert!(
            value >> MAX_MODULUS_BITS == 0,
            "modulus must be < 2^{MAX_MODULUS_BITS}"
        );
        // floor(2^128 / v) == floor((2^128 - 1) / v) whenever v does not
        // divide 2^128; true for every v that is not a power of two, and we
        // handle powers of two exactly below.
        let value_128 = value as u128;
        let mut ratio = u128::MAX / value_128;
        if value.is_power_of_two() {
            ratio += 1;
        }
        Self {
            value,
            const_ratio: [ratio as u64, (ratio >> 64) as u64],
        }
    }

    /// The raw modulus value.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The Barrett ratio `⌊2^128 / p⌋` as `(low, high)` words, for the
    /// vector kernels that re-implement [`Self::reduce`] /
    /// [`Self::reduce_u128`] lane-wise.
    #[inline(always)]
    pub(crate) fn const_ratio(&self) -> [u64; 2] {
        self.const_ratio
    }

    /// Bit length of the modulus.
    #[inline]
    pub fn bits(&self) -> u32 {
        64 - self.value.leading_zeros()
    }

    /// Reduces an arbitrary `u64` modulo `p` (Barrett).
    #[inline(always)]
    pub fn reduce(&self, x: u64) -> u64 {
        if x < self.value {
            return x;
        }
        // Single-word Barrett: q = floor(x * ratio_hi / 2^64) approximates
        // floor(x / p); one conditional correction suffices.
        let q = ((x as u128 * self.const_ratio[1] as u128) >> 64) as u64;
        let r = x.wrapping_sub(q.wrapping_mul(self.value));
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Reduces a 128-bit value modulo `p` (full Barrett reduction).
    #[inline(always)]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        // SEAL-style barrett_reduce_128: compute word 2 (bits 128..192) of
        // the 256-bit product x * const_ratio, which is floor(x*ratio/2^128)
        // mod 2^64 — an estimate of floor(x/p) off by at most 2.
        let x_lo = x as u64;
        let x_hi = (x >> 64) as u64;
        let cr0 = self.const_ratio[0];
        let cr1 = self.const_ratio[1];

        let carry = ((x_lo as u128 * cr0 as u128) >> 64) as u64;
        let p1 = x_lo as u128 * cr1 as u128; // words 1,2
        let p2 = x_hi as u128 * cr0 as u128; // words 1,2
        let word1 = (p1 as u64 as u128) + (p2 as u64 as u128) + carry as u128;
        let q = ((p1 >> 64) as u64)
            .wrapping_add((p2 >> 64) as u64)
            .wrapping_add((word1 >> 64) as u64)
            .wrapping_add(x_hi.wrapping_mul(cr1));

        // r = x - q*p fits u64 (r < 3p); up to two corrections.
        let mut r = x_lo.wrapping_sub(q.wrapping_mul(self.value));
        if r >= self.value {
            r = r.wrapping_sub(self.value);
        }
        if r >= self.value {
            r -= self.value;
        }
        r
    }

    /// `(a + b) mod p` for `a, b < p`.
    #[inline(always)]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// `(a - b) mod p` for `a, b < p`.
    #[inline(always)]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let (d, borrow) = a.overflowing_sub(b);
        if borrow {
            d.wrapping_add(self.value)
        } else {
            d
        }
    }

    /// `(-a) mod p` for `a < p`.
    #[inline(always)]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.value);
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// `(a * b) mod p` for arbitrary `a, b < p`.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Shoup precomputation for a constant multiplicand:
    /// `⌊b · 2^64 / p⌋`.
    #[inline]
    pub fn shoup(&self, b: u64) -> u64 {
        debug_assert!(b < self.value);
        (((b as u128) << 64) / self.value as u128) as u64
    }

    /// Shoup multiplication `a * b mod p` where `b_shoup = shoup(b)`.
    /// Requires `a < 2p`. Result `< p`.
    #[inline(always)]
    pub fn mul_shoup(&self, a: u64, b: u64, b_shoup: u64) -> u64 {
        let r = self.mul_shoup_lazy(a, b, b_shoup);
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Lazy Shoup multiplication: result in `[0, 2p)`. Requires `a < 2p`.
    #[inline(always)]
    pub fn mul_shoup_lazy(&self, a: u64, b: u64, b_shoup: u64) -> u64 {
        let q = ((a as u128 * b_shoup as u128) >> 64) as u64;
        a.wrapping_mul(b).wrapping_sub(q.wrapping_mul(self.value))
    }

    /// `a^e mod p` by square-and-multiply.
    pub fn pow(&self, a: u64, mut e: u64) -> u64 {
        let mut base = self.reduce(a);
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse `a^{-1} mod p` (p prime, a != 0 mod p).
    pub fn inv(&self, a: u64) -> u64 {
        let a = self.reduce(a);
        assert!(a != 0, "cannot invert 0 mod {}", self.value);
        self.pow(a, self.value - 2)
    }

    /// Maps a signed integer into `[0, p)`.
    #[inline]
    pub fn from_i64(&self, x: i64) -> u64 {
        if x >= 0 {
            self.reduce(x as u64)
        } else {
            self.neg(self.reduce(x.unsigned_abs()))
        }
    }

    /// Centered representative of `a < p` in `(-p/2, p/2]`, as i64 when it
    /// fits (used by small-modulus paths and tests).
    #[inline]
    pub fn to_centered_i64(&self, a: u64) -> i64 {
        debug_assert!(a < self.value);
        if a > self.value / 2 {
            -((self.value - a) as i64)
        } else {
            a as i64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const P: u64 = (1 << 60) - 93; // a 60-bit prime-ish test value
                                   // Use a known prime for inversion-sensitive tests.
    const PRIME: u64 = 1_152_921_504_606_846_577; // 2^60 - 2^14 + 1... verified in prime.rs tests

    #[test]
    fn add_sub_neg_roundtrip() {
        let m = Modulus::new(97);
        for a in 0..97u64 {
            for b in 0..97u64 {
                let s = m.add(a, b);
                assert_eq!(m.sub(s, b), a);
                assert_eq!(m.add(a, m.neg(a)), 0);
                assert_eq!(s, (a + b) % 97);
            }
        }
    }

    #[test]
    fn mul_matches_naive() {
        let m = Modulus::new(P);
        let cases = [
            (0u64, 0u64),
            (1, P - 1),
            (P - 1, P - 1),
            (123456789, 987654321),
            (P / 2, P / 2 + 1),
        ];
        for (a, b) in cases {
            let expect = ((a as u128 * b as u128) % P as u128) as u64;
            assert_eq!(m.mul(a, b), expect);
        }
    }

    #[test]
    fn reduce_u128_extremes() {
        let m = Modulus::new(P);
        assert_eq!(m.reduce_u128(0), 0);
        assert_eq!(m.reduce_u128(u128::MAX), (u128::MAX % P as u128) as u64);
        assert_eq!(m.reduce_u128(P as u128), 0);
        assert_eq!(m.reduce_u128((P as u128) * (P as u128)), 0);
    }

    #[test]
    fn shoup_matches_mul() {
        let m = Modulus::new(P);
        let b = 0xDEAD_BEEF_1234u64 % P;
        let bs = m.shoup(b);
        for a in [0u64, 1, 42, P - 1, P / 3] {
            assert_eq!(m.mul_shoup(a, b, bs), m.mul(a, b));
        }
        // lazy variant allows a < 2p
        let a = P + 5;
        let lazy = m.mul_shoup_lazy(a, b, bs);
        assert_eq!(lazy % P, m.mul(a % P, b));
        assert!(lazy < 2 * P);
    }

    #[test]
    fn pow_and_inv() {
        let m = Modulus::new(PRIME);
        // Fermat: a^(p-1) = 1
        for a in [2u64, 3, 65537, PRIME - 2] {
            assert_eq!(m.pow(a, PRIME - 1), 1, "a={a}");
            let inv = m.inv(a);
            assert_eq!(m.mul(a, inv), 1);
        }
    }

    #[test]
    fn signed_conversions() {
        let m = Modulus::new(1009);
        assert_eq!(m.from_i64(-1), 1008);
        assert_eq!(m.from_i64(-1009), 0);
        assert_eq!(m.to_centered_i64(1008), -1);
        assert_eq!(m.to_centered_i64(504), 504);
        assert_eq!(m.to_centered_i64(505), -504);
    }

    #[test]
    #[should_panic]
    fn rejects_huge_modulus() {
        let _ = Modulus::new(1 << 62);
    }

    #[test]
    #[should_panic]
    fn rejects_invert_zero() {
        let m = Modulus::new(97);
        let _ = m.inv(0);
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in 0u64..P, b in 0u64..P) {
            let m = Modulus::new(P);
            prop_assert_eq!(m.add(a, b), m.add(b, a));
            prop_assert_eq!(m.add(a, b), ((a as u128 + b as u128) % P as u128) as u64);
        }

        #[test]
        fn prop_mul_matches_u128(a in 0u64..P, b in 0u64..P) {
            let m = Modulus::new(P);
            prop_assert_eq!(m.mul(a, b), ((a as u128 * b as u128) % P as u128) as u64);
        }

        #[test]
        fn prop_sub_is_add_neg(a in 0u64..P, b in 0u64..P) {
            let m = Modulus::new(P);
            prop_assert_eq!(m.sub(a, b), m.add(a, m.neg(b)));
        }

        #[test]
        fn prop_reduce_idempotent(x in any::<u64>()) {
            let m = Modulus::new(P);
            let r = m.reduce(x);
            prop_assert!(r < P);
            prop_assert_eq!(m.reduce(r), r);
            prop_assert_eq!(r, x % P);
        }

        #[test]
        fn prop_shoup_any(a in 0u64..P, b in 0u64..P) {
            let m = Modulus::new(P);
            let bs = m.shoup(b);
            prop_assert_eq!(m.mul_shoup(a, b, bs), m.mul(a, b));
        }
    }
}
