//! Prime generation for NTT-friendly RNS moduli.
//!
//! CKKS-RNS needs chains of distinct primes `p ≡ 1 (mod 2N)` of prescribed
//! bit lengths (the paper's Table II asks for `[40, 26, …, 26, 40]` at
//! `N = 2^14`). This module is the analog of SEAL's
//! `CoeffModulus::Create`: deterministic Miller–Rabin over the arithmetic
//! progression `k·2N + 1` scanning downward from `2^bits`.

use crate::modring::Modulus;

/// Deterministic Miller–Rabin for `n < 2^64`.
///
/// The witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}` is proven
/// sufficient for all 64-bit integers.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod_u64(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod_u64(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[inline]
fn mul_mod_u64(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod_u64(mut a: u64, mut e: u64, m: u64) -> u64 {
    a %= m;
    let mut acc = 1u64;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod_u64(acc, a, m);
        }
        a = mul_mod_u64(a, a, m);
        e >>= 1;
    }
    acc
}

/// Generates `count` distinct primes of exactly `bits` bits with
/// `p ≡ 1 (mod 2n)`, scanning downward from `2^bits - 1`, skipping any
/// prime already present in `exclude`.
///
/// Panics if the progression is exhausted before `count` primes are found
/// (only possible for tiny `bits` relative to `log2(2n)`).
pub fn gen_ntt_primes_excluding(bits: u32, n: usize, count: usize, exclude: &[u64]) -> Vec<u64> {
    assert!(n.is_power_of_two(), "ring degree must be a power of two");
    assert!((2..=crate::modring::MAX_MODULUS_BITS).contains(&bits));
    let two_n = (2 * n) as u64;
    assert!(
        (1u64 << bits) > two_n,
        "bit size {bits} too small for 2N = {two_n}"
    );
    let mut out = Vec::with_capacity(count);
    // Largest candidate of the right residue class strictly below 2^bits.
    let hi = (1u64 << bits) - 1;
    let mut candidate = hi - ((hi - 1) % two_n); // ≡ 1 (mod 2N)
    let lo = 1u64 << (bits - 1);
    while out.len() < count && candidate > lo {
        if is_prime(candidate) && !exclude.contains(&candidate) && !out.contains(&candidate) {
            out.push(candidate);
        }
        candidate -= two_n;
    }
    assert!(
        out.len() == count,
        "exhausted {bits}-bit progression: found {} of {count} primes for 2N={two_n}",
        out.len()
    );
    out
}

/// Generates one prime per entry of `bit_sizes`, all distinct, all
/// `≡ 1 (mod 2n)` — the SEAL `CoeffModulus::Create` interface the paper's
/// §VI.A refers to ("the co-prime generation tool provided by SEAL").
pub fn gen_moduli_chain(bit_sizes: &[u32], n: usize) -> Vec<Modulus> {
    let mut found: Vec<u64> = Vec::with_capacity(bit_sizes.len());
    // Group equal bit sizes so repeated sizes yield distinct primes.
    for &bits in bit_sizes {
        let p = gen_ntt_primes_excluding(bits, n, 1, &found)[0];
        found.push(p);
    }
    found.into_iter().map(Modulus::new).collect()
}

/// Generates `count` small pairwise-coprime moduli starting near `start`,
/// used for the paper's *image-domain* RNS decomposition (Fig. 2 / Fig. 5).
/// These do not need to be NTT-friendly — they act on quantized pixel
/// tensors, not on ring elements — but primality gives pairwise
/// coprimality for free.
pub fn gen_coprime_moduli(count: usize, start: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut c = start.max(2);
    while out.len() < count {
        if is_prime(c) {
            out.push(c);
        }
        c += 1;
    }
    out
}

/// Finds a generator of the cyclic group `(Z/p)^*` for prime `p`.
pub fn find_generator(modulus: &Modulus) -> u64 {
    let p = modulus.value();
    let group_order = p - 1;
    let factors = factorize(group_order);
    'cand: for g in 2..p {
        for &f in &factors {
            if modulus.pow(g, group_order / f) == 1 {
                continue 'cand;
            }
        }
        return g;
    }
    unreachable!("prime {p} has a generator");
}

/// Returns a primitive `order`-th root of unity mod `p`
/// (requires `order | p - 1`).
pub fn primitive_root_of_unity(modulus: &Modulus, order: u64) -> u64 {
    let p = modulus.value();
    assert_eq!(
        (p - 1) % order,
        0,
        "order {order} does not divide p-1 for p={p}"
    );
    let g = find_generator(modulus);
    let root = modulus.pow(g, (p - 1) / order);
    debug_assert_eq!(modulus.pow(root, order), 1);
    debug_assert_ne!(modulus.pow(root, order / 2), 1);
    root
}

/// Trial-division factorization of a 64-bit integer into distinct prime
/// factors. Adequate for `p - 1` of NTT primes, which are
/// `2^k`-smooth-dominated by construction.
fn factorize(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut d = 2u64;
    while d as u128 * d as u128 <= n as u128 {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537, 1_000_000_007];
        let composites = [0u64, 1, 4, 9, 91, 65536, 1_000_000_006, 6_700_417 * 3];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 825_265] {
            assert!(!is_prime(c), "Carmichael {c} must be composite");
        }
    }

    #[test]
    fn ntt_primes_have_right_form() {
        let n = 1 << 12;
        let primes = gen_ntt_primes_excluding(40, n, 3, &[]);
        assert_eq!(primes.len(), 3);
        for p in &primes {
            assert!(is_prime(*p));
            assert_eq!(p % (2 * n as u64), 1);
            assert_eq!(64 - p.leading_zeros(), 40);
        }
        // distinct
        assert!(primes[0] != primes[1] && primes[1] != primes[2]);
    }

    #[test]
    fn paper_table2_chain_generates() {
        // Table II: N = 2^14, q = [40, 26, ..., 26, 40] with L = 13
        // => 13 inner 26-bit primes plus two 40-bit end primes.
        let n = 1 << 14;
        let mut sizes = vec![40u32];
        sizes.extend(std::iter::repeat_n(26, 13));
        sizes.push(40);
        let chain = gen_moduli_chain(&sizes, n);
        assert_eq!(chain.len(), 15);
        let mut seen = std::collections::HashSet::new();
        for (m, &bits) in chain.iter().zip(&sizes) {
            assert_eq!(m.bits(), bits);
            assert_eq!(m.value() % (2 * n as u64), 1);
            assert!(seen.insert(m.value()), "duplicate prime in chain");
        }
    }

    #[test]
    fn coprime_moduli_pairwise_coprime() {
        let ms = gen_coprime_moduli(10, 257);
        for i in 0..ms.len() {
            for j in i + 1..ms.len() {
                assert_eq!(gcd(ms[i], ms[j]), 1);
            }
        }
    }

    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }

    #[test]
    fn roots_of_unity() {
        let n = 1 << 10;
        let p = gen_ntt_primes_excluding(30, n, 1, &[])[0];
        let m = Modulus::new(p);
        let w = primitive_root_of_unity(&m, 2 * n as u64);
        assert_eq!(m.pow(w, 2 * n as u64), 1);
        assert_ne!(m.pow(w, n as u64), 1);
        // the n-th power is -1 in the negacyclic setting
        assert_eq!(m.pow(w, n as u64), p - 1);
    }

    #[test]
    #[should_panic]
    fn too_small_bits_panics() {
        let _ = gen_ntt_primes_excluding(10, 1 << 12, 1, &[]);
    }
}
