//! Polynomials of `R_q = Z_q[X]/(X^N+1)` in double-CRT (RNS × NTT) form.
//!
//! An [`RnsPoly`] stores one residue vector per active modulus ("limb").
//! Limbs are identified by their index into the shared [`PolyContext`]
//! modulus list, so a polynomial can live over any subset — a level-ℓ
//! ciphertext uses limbs `0..=ℓ`, and key-switching intermediates
//! additionally carry the special modulus at index `L+1`.
//!
//! Residues live in one flat limb-major buffer (limb `i` occupies
//! `data[i*n..(i+1)*n]`), so a whole-polynomial transform is a single
//! contiguous sweep: the batched NTT entry ([`kernel::ntt_forward_batch`])
//! resolves the SIMD backend once and tiles limbs across rayon workers,
//! and pointwise kernels stream limb-sized chunks without pointer
//! chasing through per-limb `Vec`s.
//!
//! All per-limb operations are embarrassingly parallel; when the context
//! is created with limb parallelism enabled (or toggled at runtime) they
//! run under rayon, which is the substrate for the paper's "RNS enables
//! parallel processing" claim at the scheme level.

use crate::kernel;
use crate::modring::Modulus;
use crate::ntt::NttTable;
use crate::sampler::Sampler;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Representation domain of a polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Form {
    /// Coefficient domain, natural order.
    Coeff,
    /// Evaluation (NTT) domain, bit-reversed order.
    Ntt,
}

/// Shared immutable tables for one ring: degree, full modulus list
/// (ciphertext chain followed by special moduli), and NTT tables.
///
/// NTT tables come from the process-wide [`NttTable::cached`] pool keyed
/// on `(n, p)`, so building several contexts over overlapping prime sets
/// (common in tests, serving, and the differential oracle) re-derives no
/// twiddle tables.
#[derive(Debug)]
pub struct PolyContext {
    n: usize,
    moduli: Vec<Modulus>,
    ntt_tables: Vec<Arc<NttTable>>,
    /// Number of trailing special (key-switching) moduli in `moduli`.
    num_special: usize,
    parallel: AtomicBool,
}

impl PolyContext {
    /// Builds a context for ring degree `n` over `chain_moduli` (the
    /// ciphertext modulus chain `q_0..q_L`) plus `special_moduli`
    /// (key-switching primes, usually one).
    pub fn new(n: usize, chain_moduli: Vec<Modulus>, special_moduli: Vec<Modulus>) -> Arc<Self> {
        assert!(n.is_power_of_two() && n >= 4);
        let num_special = special_moduli.len();
        let mut moduli = chain_moduli;
        moduli.extend(special_moduli);
        assert!(!moduli.is_empty());
        let mut seen = std::collections::HashSet::new();
        for m in &moduli {
            assert!(seen.insert(m.value()), "duplicate modulus {}", m.value());
        }
        let ntt_tables = moduli.iter().map(|&m| NttTable::cached(n, m)).collect();
        Arc::new(Self {
            n,
            moduli,
            ntt_tables,
            num_special,
            parallel: AtomicBool::new(true),
        })
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// All moduli (chain then special).
    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// Number of ciphertext-chain moduli (`L + 1`).
    #[inline]
    pub fn chain_len(&self) -> usize {
        self.moduli.len() - self.num_special
    }

    #[inline]
    pub fn num_special(&self) -> usize {
        self.num_special
    }

    /// Indices of the special moduli.
    pub fn special_indices(&self) -> Vec<usize> {
        (self.chain_len()..self.moduli.len()).collect()
    }

    #[inline]
    pub fn ntt_table(&self, idx: usize) -> &NttTable {
        self.ntt_tables[idx].as_ref()
    }

    /// Enables/disables rayon parallelism over limbs (used by the
    /// sequential-baseline experiments).
    pub fn set_parallel(&self, on: bool) {
        self.parallel.store(on, Ordering::Relaxed);
    }

    #[inline]
    pub fn parallel(&self) -> bool {
        self.parallel.load(Ordering::Relaxed)
    }
}

/// A polynomial in RNS representation over a subset of the context moduli.
#[derive(Clone)]
pub struct RnsPoly {
    ctx: Arc<PolyContext>,
    /// Context-modulus index of each limb.
    limb_indices: Vec<usize>,
    /// Flat limb-major residues: limb `i` occupies `data[i*n..(i+1)*n]`.
    data: Vec<u64>,
    form: Form,
}

impl std::fmt::Debug for RnsPoly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RnsPoly")
            .field("n", &self.ctx.n)
            .field("limbs", &self.limb_indices)
            .field("form", &self.form)
            .finish()
    }
}

impl RnsPoly {
    /// The zero polynomial over the given limb set.
    pub fn zero(ctx: Arc<PolyContext>, limb_indices: Vec<usize>, form: Form) -> Self {
        let n = ctx.n();
        assert!(!limb_indices.is_empty());
        assert!(limb_indices.iter().all(|&i| i < ctx.moduli().len()));
        Self {
            data: vec![0u64; n * limb_indices.len()],
            limb_indices,
            ctx,
            form,
        }
    }

    /// Zero polynomial over the first `k` chain limbs.
    pub fn zero_level(ctx: Arc<PolyContext>, k: usize, form: Form) -> Self {
        Self::zero(ctx, (0..k).collect(), form)
    }

    /// Reassembles a polynomial from raw parts (deserialization). Panics
    /// on shape mismatches or out-of-range residues.
    pub fn from_parts(
        ctx: Arc<PolyContext>,
        limb_indices: Vec<usize>,
        limbs: Vec<Vec<u64>>,
        form: Form,
    ) -> Self {
        assert_eq!(limb_indices.len(), limbs.len());
        assert!(!limb_indices.is_empty());
        let n = ctx.n();
        let mut data = Vec::with_capacity(n * limbs.len());
        for (i, (&idx, limb)) in limb_indices.iter().zip(&limbs).enumerate() {
            assert!(idx < ctx.moduli().len(), "limb {i}: bad modulus index");
            assert_eq!(limb.len(), n, "limb {i}: wrong length");
            let p = ctx.moduli()[idx].value();
            assert!(
                limb.iter().all(|&v| v < p),
                "limb {i}: residue out of range"
            );
            data.extend_from_slice(limb);
        }
        Self {
            ctx,
            limb_indices,
            data,
            form,
        }
    }

    /// Builds from small signed coefficients (secret keys, errors),
    /// reducing into every requested limb. Result is in `Coeff` form.
    pub fn from_signed(ctx: Arc<PolyContext>, limb_indices: Vec<usize>, coeffs: &[i64]) -> Self {
        assert_eq!(coeffs.len(), ctx.n());
        let mut data = Vec::with_capacity(ctx.n() * limb_indices.len());
        for &idx in &limb_indices {
            let m = ctx.moduli()[idx];
            data.extend(coeffs.iter().map(|&c| m.from_i64(c)));
        }
        Self {
            data,
            limb_indices,
            ctx,
            form: Form::Coeff,
        }
    }

    /// Uniformly random polynomial (already valid in either form; we tag it
    /// `Ntt` when used as the `a` part of RLWE samples generated directly
    /// in the evaluation domain).
    pub fn uniform(
        ctx: Arc<PolyContext>,
        limb_indices: Vec<usize>,
        form: Form,
        sampler: &mut Sampler,
    ) -> Self {
        let mut data = Vec::with_capacity(ctx.n() * limb_indices.len());
        for &idx in &limb_indices {
            data.extend(sampler.uniform_limb(ctx.n(), &ctx.moduli()[idx]));
        }
        Self {
            data,
            limb_indices,
            ctx,
            form,
        }
    }

    #[inline]
    pub fn ctx(&self) -> &Arc<PolyContext> {
        &self.ctx
    }

    #[inline]
    pub fn form(&self) -> Form {
        self.form
    }

    #[inline]
    pub fn num_limbs(&self) -> usize {
        self.limb_indices.len()
    }

    #[inline]
    pub fn limb_indices(&self) -> &[usize] {
        &self.limb_indices
    }

    #[inline]
    pub fn limb(&self, i: usize) -> &[u64] {
        let n = self.ctx.n;
        &self.data[i * n..(i + 1) * n]
    }

    #[inline]
    pub fn limb_mut(&mut self, i: usize) -> &mut [u64] {
        let n = self.ctx.n;
        &mut self.data[i * n..(i + 1) * n]
    }

    /// The whole limb-major residue buffer (limb `i` at `[i*n, (i+1)*n)`),
    /// for batched kernels and layout-aware tests.
    #[inline]
    pub fn limbs_flat(&self) -> &[u64] {
        &self.data
    }

    #[inline]
    pub fn limb_modulus(&self, i: usize) -> &Modulus {
        &self.ctx.moduli()[self.limb_indices[i]]
    }

    fn assert_compatible(&self, other: &Self) {
        assert!(
            Arc::ptr_eq(&self.ctx, &other.ctx),
            "polynomials from different contexts"
        );
        assert_eq!(self.form, other.form, "form mismatch");
        assert_eq!(self.limb_indices, other.limb_indices, "limb set mismatch");
    }

    /// In-place forward NTT of every limb — one batched call; the kernel
    /// backend is resolved once for the whole polynomial.
    pub fn ntt_forward(&mut self) {
        assert_eq!(self.form, Form::Coeff, "already in NTT form");
        let ctx = Arc::clone(&self.ctx);
        let tables: Vec<&NttTable> = self
            .limb_indices
            .iter()
            .map(|&idx| ctx.ntt_table(idx))
            .collect();
        kernel::ntt_forward_batch(&tables, &mut self.data, ctx.parallel());
        self.form = Form::Ntt;
    }

    /// In-place inverse NTT of every limb (batched, like
    /// [`Self::ntt_forward`]).
    pub fn ntt_inverse(&mut self) {
        assert_eq!(self.form, Form::Ntt, "already in coefficient form");
        let ctx = Arc::clone(&self.ctx);
        let tables: Vec<&NttTable> = self
            .limb_indices
            .iter()
            .map(|&idx| ctx.ntt_table(idx))
            .collect();
        kernel::ntt_inverse_batch(&tables, &mut self.data, ctx.parallel());
        self.form = Form::Coeff;
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Self) {
        self.assert_compatible(other);
        let ctx = Arc::clone(&self.ctx);
        let indices = self.limb_indices.clone();
        let n = ctx.n();
        for (i, (data, rhs)) in self
            .data
            .chunks_mut(n)
            .zip(other.data.chunks(n))
            .enumerate()
        {
            let m = ctx.moduli()[indices[i]];
            for (a, &b) in data.iter_mut().zip(rhs) {
                *a = m.add(*a, b);
            }
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &Self) {
        self.assert_compatible(other);
        let ctx = Arc::clone(&self.ctx);
        let indices = self.limb_indices.clone();
        let n = ctx.n();
        for (i, (data, rhs)) in self
            .data
            .chunks_mut(n)
            .zip(other.data.chunks(n))
            .enumerate()
        {
            let m = ctx.moduli()[indices[i]];
            for (a, &b) in data.iter_mut().zip(rhs) {
                *a = m.sub(*a, b);
            }
        }
    }

    /// `self = -self`.
    pub fn neg_assign(&mut self) {
        let ctx = Arc::clone(&self.ctx);
        let indices = self.limb_indices.clone();
        let n = ctx.n();
        for (i, data) in self.data.chunks_mut(n).enumerate() {
            let m = ctx.moduli()[indices[i]];
            for a in data.iter_mut() {
                *a = m.neg(*a);
            }
        }
    }

    /// Pointwise product (NTT form): `self *= other`.
    pub fn mul_assign(&mut self, other: &Self) {
        self.assert_compatible(other);
        assert_eq!(self.form, Form::Ntt, "multiplication requires NTT form");
        he_trace::record_modmul_limbs(self.num_limbs() as u64);
        let backend = kernel::active_backend();
        let ctx = Arc::clone(&self.ctx);
        let indices = self.limb_indices.clone();
        let n = ctx.n();
        let other_data = &other.data;
        if ctx.parallel() && indices.len() > 1 {
            self.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, data)| {
                    let m = ctx.moduli()[indices[i]];
                    kernel::dyadic_mul_assign_with(
                        backend,
                        &m,
                        data,
                        &other_data[i * n..(i + 1) * n],
                    );
                });
        } else {
            for (i, data) in self.data.chunks_mut(n).enumerate() {
                let m = ctx.moduli()[indices[i]];
                kernel::dyadic_mul_assign_with(backend, &m, data, &other_data[i * n..(i + 1) * n]);
            }
        }
    }

    /// `self += a * b` (all NTT form). The fused form of the homomorphic
    /// weighted sums in Eq. (1) of the paper.
    pub fn mul_acc(&mut self, a: &Self, b: &Self) {
        self.assert_compatible(a);
        self.assert_compatible(b);
        assert_eq!(self.form, Form::Ntt);
        he_trace::record_modmul_limbs(self.num_limbs() as u64);
        let backend = kernel::active_backend();
        let ctx = Arc::clone(&self.ctx);
        let indices = self.limb_indices.clone();
        let n = ctx.n();
        let a_data = &a.data;
        let b_data = &b.data;
        if ctx.parallel() && indices.len() > 1 {
            self.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, acc)| {
                    let m = ctx.moduli()[indices[i]];
                    let r = i * n..(i + 1) * n;
                    kernel::dyadic_mul_acc_with(backend, &m, acc, &a_data[r.clone()], &b_data[r]);
                });
        } else {
            for (i, acc) in self.data.chunks_mut(n).enumerate() {
                let m = ctx.moduli()[indices[i]];
                let r = i * n..(i + 1) * n;
                kernel::dyadic_mul_acc_with(backend, &m, acc, &a_data[r.clone()], &b_data[r]);
            }
        }
    }

    /// Multiplies limb `i` by scalar `s_i` (scalars given per limb,
    /// already reduced).
    pub fn mul_scalar_per_limb(&mut self, scalars: &[u64]) {
        assert_eq!(scalars.len(), self.num_limbs());
        he_trace::record_modmul_limbs(self.num_limbs() as u64);
        let backend = kernel::active_backend();
        let ctx = Arc::clone(&self.ctx);
        let indices = self.limb_indices.clone();
        let n = ctx.n();
        for (i, data) in self.data.chunks_mut(n).enumerate() {
            let m = ctx.moduli()[indices[i]];
            let s = m.reduce(scalars[i]);
            let ss = m.shoup(s);
            kernel::mul_scalar_shoup_with(backend, &m, data, s, ss);
        }
    }

    /// Multiplies every limb by the same small scalar.
    pub fn mul_scalar_u64(&mut self, s: u64) {
        let scalars: Vec<u64> = self
            .limb_indices
            .iter()
            .map(|&idx| self.ctx.moduli()[idx].reduce(s))
            .collect();
        self.mul_scalar_per_limb(&scalars);
    }

    /// Applies the Galois automorphism `X ↦ X^k` (k odd, coefficient form).
    pub fn automorphism(&self, k: usize) -> Self {
        assert_eq!(self.form, Form::Coeff, "automorphism requires Coeff form");
        let n = self.ctx.n();
        assert!(k % 2 == 1 && k < 2 * n, "galois element must be odd, < 2N");
        let mut out = Self::zero(
            Arc::clone(&self.ctx),
            self.limb_indices.clone(),
            Form::Coeff,
        );
        for li in 0..self.num_limbs() {
            let m = self.ctx.moduli()[self.limb_indices[li]];
            let src = &self.data[li * n..(li + 1) * n];
            let dst = &mut out.data[li * n..(li + 1) * n];
            for (i, &c) in src.iter().enumerate() {
                let j = (i * k) % (2 * n);
                if j < n {
                    dst[j] = m.add(dst[j], c);
                } else {
                    dst[j - n] = m.sub(dst[j - n], c);
                }
            }
        }
        out
    }

    /// Drops the last limb (used by rescaling and mod-down after the limb's
    /// contribution has been folded into the others).
    pub fn drop_last_limb(&mut self) {
        assert!(self.num_limbs() > 1, "cannot drop the only limb");
        self.limb_indices.pop();
        self.data.truncate(self.limb_indices.len() * self.ctx.n());
    }

    /// Keeps only the first `k` limbs.
    pub fn truncate_limbs(&mut self, k: usize) {
        assert!(k >= 1 && k <= self.num_limbs());
        self.limb_indices.truncate(k);
        self.data.truncate(k * self.ctx.n());
    }

    /// Appends a limb with the given context index and data.
    pub fn push_limb(&mut self, ctx_index: usize, data: Vec<u64>) {
        assert_eq!(data.len(), self.ctx.n());
        assert!(ctx_index < self.ctx.moduli().len());
        assert!(
            !self.limb_indices.contains(&ctx_index),
            "limb already present"
        );
        self.limb_indices.push(ctx_index);
        self.data.extend_from_slice(&data);
    }

    /// Returns a copy restricted to the given context-modulus indices
    /// (each must be present in this polynomial). Works in either form
    /// since limbs are independent.
    pub fn restrict(&self, indices: &[usize]) -> Self {
        let n = self.ctx.n();
        let mut data = Vec::with_capacity(n * indices.len());
        for idx in indices {
            let pos = self
                .limb_indices
                .iter()
                .position(|i| i == idx)
                .unwrap_or_else(|| panic!("limb {idx} not present"));
            data.extend_from_slice(&self.data[pos * n..(pos + 1) * n]);
        }
        Self {
            ctx: Arc::clone(&self.ctx),
            limb_indices: indices.to_vec(),
            data,
            form: self.form,
        }
    }

    /// Extracts the residues of coefficient `i` across limbs.
    pub fn coeff_residues(&self, i: usize) -> Vec<u64> {
        let n = self.ctx.n();
        (0..self.num_limbs())
            .map(|li| self.data[li * n + i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::gen_moduli_chain;

    fn ctx(n: usize) -> Arc<PolyContext> {
        let chain = gen_moduli_chain(&[40, 40, 40], n);
        let special = gen_moduli_chain(&[50], n)
            .into_iter()
            .filter(|m| !chain.contains(m))
            .collect();
        PolyContext::new(n, chain, special)
    }

    #[test]
    fn context_shape() {
        let c = ctx(64);
        assert_eq!(c.chain_len(), 3);
        assert_eq!(c.num_special(), 1);
        assert_eq!(c.special_indices(), vec![3]);
    }

    #[test]
    fn ntt_roundtrip_poly() {
        let c = ctx(64);
        let mut s = Sampler::from_seed(1);
        let mut p = RnsPoly::uniform(Arc::clone(&c), vec![0, 1, 2], Form::Coeff, &mut s);
        let orig = p.clone();
        p.ntt_forward();
        assert_eq!(p.form(), Form::Ntt);
        p.ntt_inverse();
        for i in 0..p.num_limbs() {
            assert_eq!(p.limb(i), orig.limb(i));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let c = ctx(128);
        let mut s = Sampler::from_seed(2);
        let p0 = RnsPoly::uniform(Arc::clone(&c), vec![0, 1, 2, 3], Form::Coeff, &mut s);
        let mut a = p0.clone();
        let mut b = p0.clone();
        c.set_parallel(true);
        a.ntt_forward();
        c.set_parallel(false);
        b.ntt_forward();
        c.set_parallel(true);
        for i in 0..a.num_limbs() {
            assert_eq!(a.limb(i), b.limb(i));
        }
    }

    #[test]
    fn add_sub_neg() {
        let c = ctx(64);
        let mut s = Sampler::from_seed(3);
        let a = RnsPoly::uniform(Arc::clone(&c), vec![0, 1], Form::Coeff, &mut s);
        let b = RnsPoly::uniform(Arc::clone(&c), vec![0, 1], Form::Coeff, &mut s);
        let mut sum = a.clone();
        sum.add_assign(&b);
        sum.sub_assign(&b);
        for i in 0..2 {
            assert_eq!(sum.limb(i), a.limb(i));
        }
        let mut neg = a.clone();
        neg.neg_assign();
        neg.add_assign(&a);
        assert!(neg.limbs_flat().iter().all(|&x| x == 0));
    }

    #[test]
    fn mul_matches_convolution_per_limb() {
        let c = ctx(64);
        let mut s = Sampler::from_seed(4);
        let a = RnsPoly::uniform(Arc::clone(&c), vec![0], Form::Coeff, &mut s);
        let b = RnsPoly::uniform(Arc::clone(&c), vec![0], Form::Coeff, &mut s);
        let m = *a.limb_modulus(0);
        let expect = crate::ntt::negacyclic_convolution_naive(a.limb(0), b.limb(0), &m);
        let mut fa = a.clone();
        let mut fb = b.clone();
        fa.ntt_forward();
        fb.ntt_forward();
        fa.mul_assign(&fb);
        fa.ntt_inverse();
        assert_eq!(fa.limb(0), expect.as_slice());
    }

    #[test]
    fn mul_acc_is_fused_multiply_add() {
        let c = ctx(64);
        let mut s = Sampler::from_seed(5);
        let mut a = RnsPoly::uniform(Arc::clone(&c), vec![0, 1], Form::Coeff, &mut s);
        let mut b = RnsPoly::uniform(Arc::clone(&c), vec![0, 1], Form::Coeff, &mut s);
        a.ntt_forward();
        b.ntt_forward();
        let mut acc = RnsPoly::zero(Arc::clone(&c), vec![0, 1], Form::Ntt);
        acc.mul_acc(&a, &b);
        let mut prod = a.clone();
        prod.mul_assign(&b);
        for i in 0..2 {
            assert_eq!(acc.limb(i), prod.limb(i));
        }
    }

    #[test]
    fn automorphism_composition() {
        // σ_k ∘ σ_j = σ_{kj mod 2N}
        let c = ctx(32);
        let mut s = Sampler::from_seed(6);
        let p = RnsPoly::uniform(Arc::clone(&c), vec![0, 1], Form::Coeff, &mut s);
        let k = 5usize;
        let j = 9usize;
        let lhs = p.automorphism(k).automorphism(j);
        let rhs = p.automorphism((k * j) % 64);
        for i in 0..2 {
            assert_eq!(lhs.limb(i), rhs.limb(i));
        }
    }

    #[test]
    fn automorphism_identity_and_sign() {
        let c = ctx(32);
        let mut s = Sampler::from_seed(7);
        let p = RnsPoly::uniform(Arc::clone(&c), vec![0], Form::Coeff, &mut s);
        let id = p.automorphism(1);
        assert_eq!(id.limb(0), p.limb(0));
        // σ_{2N-1} is "conjugation": X -> X^{2N-1} = X^{-1}; applying twice = id
        let conj2 = p.automorphism(63).automorphism(63);
        assert_eq!(conj2.limb(0), p.limb(0));
    }

    #[test]
    fn scalar_multiplication() {
        let c = ctx(32);
        let mut s = Sampler::from_seed(8);
        let p = RnsPoly::uniform(Arc::clone(&c), vec![0, 1], Form::Coeff, &mut s);
        let mut doubled = p.clone();
        doubled.mul_scalar_u64(2);
        let mut summed = p.clone();
        summed.add_assign(&p);
        for i in 0..2 {
            assert_eq!(doubled.limb(i), summed.limb(i));
        }
    }

    #[test]
    fn limb_management() {
        let c = ctx(32);
        let mut p = RnsPoly::zero(Arc::clone(&c), vec![0, 1, 2], Form::Coeff);
        p.drop_last_limb();
        assert_eq!(p.limb_indices(), &[0, 1]);
        p.push_limb(3, vec![7u64; 32]);
        assert_eq!(p.limb_indices(), &[0, 1, 3]);
        assert_eq!(p.limb(2)[0], 7);
        p.truncate_limbs(1);
        assert_eq!(p.limb_indices(), &[0]);
    }

    #[test]
    fn flat_layout_is_limb_major() {
        let c = ctx(32);
        let mut s = Sampler::from_seed(10);
        let p = RnsPoly::uniform(Arc::clone(&c), vec![0, 1, 2], Form::Coeff, &mut s);
        let flat = p.limbs_flat();
        assert_eq!(flat.len(), 3 * 32);
        for i in 0..p.num_limbs() {
            assert_eq!(&flat[i * 32..(i + 1) * 32], p.limb(i));
        }
    }

    #[test]
    #[should_panic]
    fn mul_requires_ntt_form() {
        let c = ctx(32);
        let mut s = Sampler::from_seed(9);
        let mut a = RnsPoly::uniform(Arc::clone(&c), vec![0], Form::Coeff, &mut s);
        let b = a.clone();
        a.mul_assign(&b);
    }

    #[test]
    #[should_panic]
    fn mismatched_limbs_rejected() {
        let c = ctx(32);
        let mut a = RnsPoly::zero(Arc::clone(&c), vec![0, 1], Form::Coeff);
        let b = RnsPoly::zero(Arc::clone(&c), vec![0], Form::Coeff);
        a.add_assign(&b);
    }
}
