//! Randomness for RLWE: secret-key, encryption and error distributions.
//!
//! * `χ_key = HW(h)`: signed binary vectors in `{±1}^N` with Hamming
//!   weight `h` (the paper's key distribution).
//! * `χ_err`: centered binomial with parameter 21, σ ≈ 3.24 — the
//!   standard-compliant stand-in for a discrete Gaussian with σ = 3.2
//!   (same choice as SEAL).
//! * `χ_enc` (`ZO(1/2)`): ternary `{-1, 0, 1}` with probabilities
//!   `(1/4, 1/2, 1/4)`.
//! * `U(R_q)`: uniform coefficients per limb.

use crate::modring::Modulus;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Source of randomness for key generation and encryption. Wraps a seeded
/// CSPRNG-ish StdRng so the whole stack is reproducible under a fixed seed.
pub struct Sampler {
    rng: StdRng,
}

impl Sampler {
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Independent substream `stream` of the seed `seed`.
    ///
    /// `from_seed(s)` derives the generator state from `s` alone, so two
    /// samplers built from nearby seeds share no guaranteed independence
    /// properties — and consumers that need *several* uncorrelated
    /// streams per logical seed (noise averaging, per-sequence oracle
    /// worlds) were left deriving them ad hoc (`seed + 1000`, ...).
    /// This mixes `(seed, stream)` through a SplitMix64-style finalizer
    /// before seeding, so every `(seed, stream)` pair yields a
    /// decorrelated generator while staying fully reproducible.
    pub fn from_seed_stream(seed: u64, stream: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(mix64(
                seed ^ mix64(stream.wrapping_add(0x9e37_79b9_7f4a_7c15)),
            )),
        }
    }

    /// Splits off an independent child sampler, advancing `self`.
    /// The child is seeded from fresh output of this sampler's stream,
    /// so repeated forks yield pairwise-decorrelated generators.
    pub fn fork(&mut self) -> Self {
        let a = self.rng.next_u64();
        let b = self.rng.next_u64();
        Self::from_seed_stream(a, b)
    }

    pub fn from_entropy() -> Self {
        Self {
            rng: StdRng::from_entropy(),
        }
    }

    /// Signed ternary secret with exact Hamming weight `h`
    /// (`χ_key = HW(h)`), coefficients in `{-1, 0, 1}`.
    pub fn hamming_ternary(&mut self, n: usize, h: usize) -> Vec<i8> {
        assert!(h <= n, "Hamming weight exceeds degree");
        let mut out = vec![0i8; n];
        let mut placed = 0;
        while placed < h {
            let idx = self.rng.gen_range(0..n);
            if out[idx] == 0 {
                out[idx] = if self.rng.gen::<bool>() { 1 } else { -1 };
                placed += 1;
            }
        }
        out
    }

    /// `ZO(1/2)` ternary: -1 with prob 1/4, 0 with prob 1/2, +1 with 1/4.
    pub fn zo_ternary(&mut self, n: usize) -> Vec<i8> {
        (0..n)
            .map(|_| match self.rng.gen_range(0u8..4) {
                0 => -1i8,
                1 => 1,
                _ => 0,
            })
            .collect()
    }

    /// Centered binomial with parameter 21 (σ = √(21/2) ≈ 3.24),
    /// approximating the HE-standard discrete Gaussian σ = 3.2.
    pub fn cbd_error(&mut self, n: usize) -> Vec<i32> {
        (0..n)
            .map(|_| {
                // 21 + 21 bits from one u64 draw
                let bits = self.rng.next_u64();
                let a = (bits & ((1u64 << 21) - 1)).count_ones() as i32;
                let b = ((bits >> 21) & ((1u64 << 21) - 1)).count_ones() as i32;
                a - b
            })
            .collect()
    }

    /// Uniform coefficients in `[0, p)` for one limb.
    pub fn uniform_limb(&mut self, n: usize, modulus: &Modulus) -> Vec<u64> {
        let p = modulus.value();
        (0..n).map(|_| self.rng.gen_range(0..p)).collect()
    }

    /// Raw RNG access (MNIST shuffling, test vectors, ...).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// SplitMix64 finalizer: a full-avalanche bijection on u64, so distinct
/// `(seed, stream)` pairs map to distinct, well-separated RNG seeds.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_weight_exact() {
        let mut s = Sampler::from_seed(1);
        for h in [0usize, 1, 64, 128] {
            let v = s.hamming_ternary(256, h);
            let nz = v.iter().filter(|&&x| x != 0).count();
            assert_eq!(nz, h);
            assert!(v.iter().all(|&x| (-1..=1).contains(&x)));
        }
    }

    #[test]
    fn zo_distribution_roughly_balanced() {
        let mut s = Sampler::from_seed(2);
        let v = s.zo_ternary(100_000);
        let zeros = v.iter().filter(|&&x| x == 0).count();
        let pos = v.iter().filter(|&&x| x == 1).count();
        let neg = v.iter().filter(|&&x| x == -1).count();
        // 1/2, 1/4, 1/4 within generous tolerance
        assert!((zeros as f64 / 100_000.0 - 0.5).abs() < 0.02);
        assert!((pos as f64 / 100_000.0 - 0.25).abs() < 0.02);
        assert!((neg as f64 / 100_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn cbd_moments() {
        let mut s = Sampler::from_seed(3);
        let v = s.cbd_error(200_000);
        let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        let var: f64 = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // var should be ~10.5
        assert!((var - 10.5).abs() < 0.5, "var {var}");
        // bounded support
        assert!(v.iter().all(|&x| x.abs() <= 21));
    }

    #[test]
    fn uniform_in_range_and_seeded_reproducible() {
        let m = Modulus::new((1 << 40) - 87);
        let a = Sampler::from_seed(7).uniform_limb(512, &m);
        let b = Sampler::from_seed(7).uniform_limb(512, &m);
        assert_eq!(a, b, "same seed must reproduce");
        assert!(a.iter().all(|&x| x < m.value()));
        let c = Sampler::from_seed(8).uniform_limb(512, &m);
        assert_ne!(a, c, "different seed should differ");
    }

    #[test]
    #[should_panic]
    fn hamming_weight_too_large() {
        let mut s = Sampler::from_seed(1);
        let _ = s.hamming_ternary(16, 17);
    }

    #[test]
    fn seed_streams_reproducible_and_decorrelated() {
        let m = Modulus::new((1 << 40) - 87);
        let a = Sampler::from_seed_stream(7, 0).uniform_limb(256, &m);
        let b = Sampler::from_seed_stream(7, 0).uniform_limb(256, &m);
        assert_eq!(a, b, "same (seed, stream) must reproduce");
        // distinct streams of the same seed differ, and differ from the
        // plain from_seed stream
        let c = Sampler::from_seed_stream(7, 1).uniform_limb(256, &m);
        let d = Sampler::from_seed(7).uniform_limb(256, &m);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // adjacent (seed, stream) pairs that collide under naive xor
        // mixing stay distinct under the finalizer
        let e = Sampler::from_seed_stream(6, 1).uniform_limb(256, &m);
        assert_ne!(c, e);
    }

    #[test]
    fn fork_advances_parent_and_decorrelates() {
        let m = Modulus::new((1 << 40) - 87);
        let mut parent = Sampler::from_seed(99);
        let mut child1 = parent.fork();
        let mut child2 = parent.fork();
        let v1 = child1.uniform_limb(128, &m);
        let v2 = child2.uniform_limb(128, &m);
        assert_ne!(v1, v2, "successive forks must be independent");
        // deterministic: re-running the whole fork tree reproduces it
        let mut parent_b = Sampler::from_seed(99);
        assert_eq!(parent_b.fork().uniform_limb(128, &m), v1);
        assert_eq!(parent_b.fork().uniform_limb(128, &m), v2);
    }
}
