//! Negacyclic number-theoretic transform over `Z_p[X]/(X^N + 1)`.
//!
//! Harvey-style butterflies with Shoup-precomputed twiddles and lazy
//! reduction: intermediate values live in `[0, 4p)` during the forward
//! pass, which is safe for `p < 2^61`. Twiddle factors absorb the
//! `psi`-powers needed for the negacyclic (a.k.a. "negative wrapped")
//! convolution, so no separate pre/post scaling pass is needed.
//!
//! The forward transform is decimation-in-time Cooley–Tukey producing
//! bit-reversed output; the inverse is decimation-in-frequency
//! Gentleman–Sande consuming bit-reversed input. Pointwise products can
//! therefore be formed directly between two forward transforms.

use crate::kernel;
use crate::modring::Modulus;
use crate::prime::primitive_root_of_unity;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Precomputed tables for one `(N, p)` pair.
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    log_n: u32,
    modulus: Modulus,
    /// psi^i in bit-reversed order, psi a primitive 2N-th root of unity.
    root_powers: Vec<u64>,
    root_powers_shoup: Vec<u64>,
    /// psi^{-i} in bit-reversed order (scrambled for the GS inverse pass).
    inv_root_powers: Vec<u64>,
    inv_root_powers_shoup: Vec<u64>,
    /// N^{-1} mod p and its Shoup companion, folded into the last inverse stage.
    inv_n: u64,
    inv_n_shoup: u64,
    /// 52-bit-scaled Shoup companions `⌊w·2^52/p⌋`, used by the AVX-512
    /// IFMA butterfly. Only populated when `4p < 2^52` (the IFMA lazy
    /// bound); empty for larger moduli.
    root_powers_shoup52: Vec<u64>,
    inv_root_powers_shoup52: Vec<u64>,
    inv_n_shoup52: u64,
}

/// `⌊w·2^52/p⌋` — the Shoup constant rescaled to the 52-bit multiplier
/// width of `vpmadd52{lo,hi}`. Fits in 52 bits whenever `w < p`.
#[inline]
fn shoup52(w: u64, p: u64) -> u64 {
    (((w as u128) << 52) / p as u128) as u64
}

/// Largest modulus the 52-bit IFMA kernels accept: lazy butterfly
/// values live in `[0, 4p)` and must fit a 52-bit multiplier operand.
pub const IFMA_MAX_MODULUS: u64 = 1 << 50;

#[inline]
fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

impl NttTable {
    /// Builds tables for ring degree `n` (power of two) and modulus `p`
    /// with `p ≡ 1 (mod 2n)`.
    pub fn new(n: usize, modulus: Modulus) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two >= 2"
        );
        let p = modulus.value();
        assert_eq!(p % (2 * n as u64), 1, "p must be ≡ 1 mod 2N");
        let log_n = n.trailing_zeros();

        let psi = primitive_root_of_unity(&modulus, 2 * n as u64);
        let psi_inv = modulus.inv(psi);

        // Forward: root_powers[j] = psi^{bitrev(j)}.
        let mut root_powers = vec![0u64; n];
        let mut inv_root_powers = vec![0u64; n];
        let mut pow = 1u64;
        let mut ipow = 1u64;
        let mut fwd_seq = vec![0u64; n];
        let mut inv_seq = vec![0u64; n];
        for i in 0..n {
            fwd_seq[i] = pow;
            inv_seq[i] = ipow;
            pow = modulus.mul(pow, psi);
            ipow = modulus.mul(ipow, psi_inv);
        }
        for i in 0..n {
            root_powers[i] = fwd_seq[bit_reverse(i, log_n)];
        }
        // Inverse (Gentleman–Sande) wants psi^{-i} laid out so that stage m
        // reads contiguous entries; the standard trick (SEAL) stores
        // "scrambled" powers: inv_root_powers[m + i] = psi^{-(bitrev(i, log m) ... )}.
        // Using the same bit-reversed layout over psi^{-1} but shifted by one
        // works with the loop structure below.
        inv_root_powers[0] = 1;
        for (i, slot) in inv_root_powers.iter_mut().enumerate().skip(1) {
            // index within the GS stage table: mirror of the CT layout.
            *slot = inv_seq[bit_reverse(i - 1, log_n) + 1];
        }

        let mut root_powers_shoup: Vec<u64> =
            root_powers.iter().map(|&w| modulus.shoup(w)).collect();
        let mut inv_root_powers_shoup: Vec<u64> =
            inv_root_powers.iter().map(|&w| modulus.shoup(w)).collect();
        let ifma_ok = p < IFMA_MAX_MODULUS;
        let mut root_powers_shoup52: Vec<u64> = if ifma_ok {
            root_powers.iter().map(|&w| shoup52(w, p)).collect()
        } else {
            Vec::new()
        };
        let mut inv_root_powers_shoup52: Vec<u64> = if ifma_ok {
            inv_root_powers.iter().map(|&w| shoup52(w, p)).collect()
        } else {
            Vec::new()
        };

        // Pad every twiddle table with zeroed tail slots so vector
        // kernels can issue full-width unaligned loads from any valid
        // twiddle index without reading past the allocation. The padding
        // is never consumed arithmetically (lanes beyond the stage width
        // are masked or permuted away).
        for v in [
            &mut root_powers,
            &mut root_powers_shoup,
            &mut inv_root_powers,
            &mut inv_root_powers_shoup,
        ] {
            v.extend(std::iter::repeat_n(0, kernel::TABLE_PAD));
        }
        for v in [&mut root_powers_shoup52, &mut inv_root_powers_shoup52] {
            if !v.is_empty() {
                v.extend(std::iter::repeat_n(0, kernel::TABLE_PAD));
            }
        }

        let inv_n = modulus.inv(n as u64);
        let inv_n_shoup = modulus.shoup(inv_n);
        let inv_n_shoup52 = if ifma_ok { shoup52(inv_n, p) } else { 0 };

        Self {
            n,
            log_n,
            modulus,
            root_powers,
            root_powers_shoup,
            inv_root_powers,
            inv_root_powers_shoup,
            inv_n,
            inv_n_shoup,
            root_powers_shoup52,
            inv_root_powers_shoup52,
            inv_n_shoup52,
        }
    }

    /// Returns the cached shared table for `(n, modulus)`, building it
    /// on first request. Twiddle derivation costs `O(n)` modular
    /// exponentiations per prime, which adds up when tests and he-diff
    /// presets rebuild the same contexts repeatedly; the cache makes
    /// repeat context builds table-free.
    pub fn cached(n: usize, modulus: Modulus) -> Arc<Self> {
        type TableCache = Mutex<HashMap<(usize, u64), Arc<NttTable>>>;
        static CACHE: OnceLock<TableCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (n, modulus.value());
        if let Some(t) = cache.lock().unwrap().get(&key) {
            return Arc::clone(t);
        }
        // Build outside the lock: table construction is slow and two
        // racing builders produce identical tables anyway.
        let t = Arc::new(Self::new(n, modulus));
        Arc::clone(cache.lock().unwrap().entry(key).or_insert(t))
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Forward twiddles `psi^bitrev(i)` (padded by [`kernel::TABLE_PAD`]).
    #[inline]
    pub(crate) fn root_powers(&self) -> &[u64] {
        &self.root_powers
    }

    /// Shoup companions of [`Self::root_powers`].
    #[inline]
    pub(crate) fn root_powers_shoup(&self) -> &[u64] {
        &self.root_powers_shoup
    }

    /// Inverse twiddles in GS order (padded by [`kernel::TABLE_PAD`]).
    #[inline]
    pub(crate) fn inv_root_powers(&self) -> &[u64] {
        &self.inv_root_powers
    }

    /// Shoup companions of [`Self::inv_root_powers`].
    #[inline]
    pub(crate) fn inv_root_powers_shoup(&self) -> &[u64] {
        &self.inv_root_powers_shoup
    }

    /// `(N^{-1} mod p, shoup(N^{-1}))` for the inverse transform's final
    /// scaling pass.
    #[inline]
    pub(crate) fn inv_n_pair(&self) -> (u64, u64) {
        (self.inv_n, self.inv_n_shoup)
    }

    /// 52-bit-scaled Shoup companions of [`Self::root_powers`] for the
    /// AVX-512 IFMA butterfly, or `None` when `4p >= 2^52`.
    #[inline]
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    pub(crate) fn root_powers_shoup52(&self) -> Option<&[u64]> {
        (!self.root_powers_shoup52.is_empty()).then_some(&self.root_powers_shoup52[..])
    }

    /// 52-bit-scaled Shoup companions of [`Self::inv_root_powers`], or
    /// `None` when `4p >= 2^52`.
    #[inline]
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    pub(crate) fn inv_root_powers_shoup52(&self) -> Option<&[u64]> {
        (!self.inv_root_powers_shoup52.is_empty()).then_some(&self.inv_root_powers_shoup52[..])
    }

    /// `⌊N^{-1}·2^52/p⌋` for the IFMA inverse transform's final scaling
    /// pass (0 when the modulus is outside the IFMA range).
    #[inline]
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    pub(crate) fn inv_n_shoup52(&self) -> u64 {
        self.inv_n_shoup52
    }

    /// The modulus these tables were built for.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// In-place forward negacyclic NTT. Input: coefficients `< p` in natural
    /// order. Output: evaluations `< p` in bit-reversed order.
    ///
    /// Dispatches to the active [`kernel`] backend; every backend is
    /// bit-identical to [`kernel::scalar::ntt_forward`].
    pub fn forward(&self, a: &mut [u64]) {
        he_trace::record_ntt_fwd(1);
        kernel::ntt_forward_with(kernel::active_backend(), self, a);
    }

    /// In-place inverse negacyclic NTT. Input: evaluations `< p` in
    /// bit-reversed order. Output: coefficients `< p` in natural order.
    pub fn inverse(&self, a: &mut [u64]) {
        he_trace::record_ntt_inv(1);
        kernel::ntt_inverse_with(kernel::active_backend(), self, a);
    }

    /// Pointwise multiply-accumulate in the evaluation domain:
    /// `acc[i] = (acc[i] + a[i] * b[i]) mod p`.
    pub fn dyadic_mul_acc(&self, acc: &mut [u64], a: &[u64], b: &[u64]) {
        kernel::dyadic_mul_acc(&self.modulus, acc, a, b);
    }

    /// Pointwise product in the evaluation domain.
    pub fn dyadic_mul(&self, out: &mut [u64], a: &[u64], b: &[u64]) {
        kernel::dyadic_mul(&self.modulus, out, a, b);
    }

    /// log2 of the ring degree.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }
}

/// Reference negacyclic convolution, `O(N^2)`, for testing.
pub fn negacyclic_convolution_naive(a: &[u64], b: &[u64], modulus: &Modulus) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        for j in 0..n {
            let prod = modulus.mul(a[i], b[j]);
            let k = i + j;
            if k < n {
                out[k] = modulus.add(out[k], prod);
            } else {
                out[k - n] = modulus.sub(out[k - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::gen_ntt_primes_excluding;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn table(n: usize, bits: u32) -> NttTable {
        let p = gen_ntt_primes_excluding(bits, n, 1, &[])[0];
        NttTable::new(n, Modulus::new(p))
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for log_n in [3u32, 6, 10] {
            let n = 1usize << log_n;
            let t = table(n, 50);
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let orig: Vec<u64> = (0..n)
                .map(|_| rng.gen_range(0..t.modulus().value()))
                .collect();
            let mut a = orig.clone();
            t.forward(&mut a);
            assert_ne!(a, orig, "transform should not be identity");
            t.inverse(&mut a);
            assert_eq!(a, orig, "N={n}");
        }
    }

    #[test]
    fn ntt_of_constant_poly() {
        // NTT of the constant c evaluates to c at every root.
        let n = 64;
        let t = table(n, 40);
        let mut a = vec![0u64; n];
        a[0] = 12345;
        t.forward(&mut a);
        assert!(a.iter().all(|&x| x == 12345));
    }

    #[test]
    fn convolution_matches_naive() {
        let n = 128;
        let t = table(n, 45);
        let m = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let expect = negacyclic_convolution_naive(&a, &b, &m);

        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut prod = vec![0u64; n];
        t.dyadic_mul(&mut prod, &fa, &fb);
        t.inverse(&mut prod);
        assert_eq!(prod, expect);
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // (X^{N-1}) * X = X^N = -1 mod X^N + 1.
        let n = 32;
        let t = table(n, 40);
        let m = *t.modulus();
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        a[n - 1] = 1;
        b[1] = 1;
        t.forward(&mut a);
        t.forward(&mut b);
        let mut prod = vec![0u64; n];
        t.dyadic_mul(&mut prod, &a, &b);
        t.inverse(&mut prod);
        let mut expect = vec![0u64; n];
        expect[0] = m.value() - 1; // -1
        assert_eq!(prod, expect);
    }

    #[test]
    fn linearity_of_transform() {
        let n = 64;
        let t = table(n, 40);
        let m = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.add(x, y)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fs);
        for i in 0..n {
            assert_eq!(fs[i], m.add(fa[i], fb[i]));
        }
    }

    #[test]
    fn dyadic_mul_acc_accumulates() {
        let n = 8;
        let t = table(n, 30);
        let m = *t.modulus();
        let a = vec![2u64; n];
        let b = vec![3u64; n];
        let mut acc = vec![1u64; n];
        t.dyadic_mul_acc(&mut acc, &a, &b);
        assert!(acc.iter().all(|&x| x == 7));
        t.dyadic_mul_acc(&mut acc, &a, &b);
        assert!(acc.iter().all(|&x| x == 13));
        let _ = m;
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_roundtrip(seed in any::<u64>()) {
            let n = 256;
            let t = table(n, 40);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let orig: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.modulus().value())).collect();
            let mut a = orig.clone();
            t.forward(&mut a);
            t.inverse(&mut a);
            prop_assert_eq!(a, orig);
        }

        #[test]
        fn prop_convolution_commutes(seed in any::<u64>()) {
            let n = 64;
            let t = table(n, 35);
            let m = *t.modulus();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
            let ab = negacyclic_convolution_naive(&a, &b, &m);
            let ba = negacyclic_convolution_naive(&b, &a, &m);
            prop_assert_eq!(ab, ba);
        }
    }
}
