//! Negacyclic number-theoretic transform over `Z_p[X]/(X^N + 1)`.
//!
//! Harvey-style butterflies with Shoup-precomputed twiddles and lazy
//! reduction: intermediate values live in `[0, 4p)` during the forward
//! pass, which is safe for `p < 2^61`. Twiddle factors absorb the
//! `psi`-powers needed for the negacyclic (a.k.a. "negative wrapped")
//! convolution, so no separate pre/post scaling pass is needed.
//!
//! The forward transform is decimation-in-time Cooley–Tukey producing
//! bit-reversed output; the inverse is decimation-in-frequency
//! Gentleman–Sande consuming bit-reversed input. Pointwise products can
//! therefore be formed directly between two forward transforms.

use crate::modring::Modulus;
use crate::prime::primitive_root_of_unity;

/// Precomputed tables for one `(N, p)` pair.
#[derive(Debug, Clone)]
pub struct NttTable {
    n: usize,
    log_n: u32,
    modulus: Modulus,
    /// psi^i in bit-reversed order, psi a primitive 2N-th root of unity.
    root_powers: Vec<u64>,
    root_powers_shoup: Vec<u64>,
    /// psi^{-i} in bit-reversed order (scrambled for the GS inverse pass).
    inv_root_powers: Vec<u64>,
    inv_root_powers_shoup: Vec<u64>,
    /// N^{-1} mod p and its Shoup companion, folded into the last inverse stage.
    inv_n: u64,
    inv_n_shoup: u64,
}

#[inline]
fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

impl NttTable {
    /// Builds tables for ring degree `n` (power of two) and modulus `p`
    /// with `p ≡ 1 (mod 2n)`.
    pub fn new(n: usize, modulus: Modulus) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two >= 2"
        );
        let p = modulus.value();
        assert_eq!(p % (2 * n as u64), 1, "p must be ≡ 1 mod 2N");
        let log_n = n.trailing_zeros();

        let psi = primitive_root_of_unity(&modulus, 2 * n as u64);
        let psi_inv = modulus.inv(psi);

        // Forward: root_powers[j] = psi^{bitrev(j)}.
        let mut root_powers = vec![0u64; n];
        let mut inv_root_powers = vec![0u64; n];
        let mut pow = 1u64;
        let mut ipow = 1u64;
        let mut fwd_seq = vec![0u64; n];
        let mut inv_seq = vec![0u64; n];
        for i in 0..n {
            fwd_seq[i] = pow;
            inv_seq[i] = ipow;
            pow = modulus.mul(pow, psi);
            ipow = modulus.mul(ipow, psi_inv);
        }
        for i in 0..n {
            root_powers[i] = fwd_seq[bit_reverse(i, log_n)];
        }
        // Inverse (Gentleman–Sande) wants psi^{-i} laid out so that stage m
        // reads contiguous entries; the standard trick (SEAL) stores
        // "scrambled" powers: inv_root_powers[m + i] = psi^{-(bitrev(i, log m) ... )}.
        // Using the same bit-reversed layout over psi^{-1} but shifted by one
        // works with the loop structure below.
        inv_root_powers[0] = 1;
        for (i, slot) in inv_root_powers.iter_mut().enumerate().skip(1) {
            // index within the GS stage table: mirror of the CT layout.
            *slot = inv_seq[bit_reverse(i - 1, log_n) + 1];
        }

        let root_powers_shoup = root_powers.iter().map(|&w| modulus.shoup(w)).collect();
        let inv_root_powers_shoup = inv_root_powers.iter().map(|&w| modulus.shoup(w)).collect();

        let inv_n = modulus.inv(n as u64);
        let inv_n_shoup = modulus.shoup(inv_n);

        Self {
            n,
            log_n,
            modulus,
            root_powers,
            root_powers_shoup,
            inv_root_powers,
            inv_root_powers_shoup,
            inv_n,
            inv_n_shoup,
        }
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The modulus these tables were built for.
    #[inline]
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// In-place forward negacyclic NTT. Input: coefficients `< p` in natural
    /// order. Output: evaluations `< p` in bit-reversed order.
    pub fn forward(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        he_trace::record_ntt_fwd(1);
        let p = self.modulus.value();
        let two_p = p << 1;
        let n = self.n;

        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let w = self.root_powers[m + i];
                let ws = self.root_powers_shoup[m + i];
                let j1 = 2 * i * t;
                let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    // Harvey butterfly: x, y < 4p on input of later stages;
                    // normalize x into [0, 2p) first.
                    let mut u = *x;
                    if u >= two_p {
                        u -= two_p;
                    }
                    let v = self.modulus.mul_shoup_lazy(*y, w, ws); // < 2p
                    *x = u + v; // < 4p
                    *y = u + two_p - v; // < 4p
                }
            }
            m <<= 1;
        }
        for v in a.iter_mut() {
            let mut x = *v;
            if x >= two_p {
                x -= two_p;
            }
            if x >= p {
                x -= p;
            }
            *v = x;
        }
    }

    /// In-place inverse negacyclic NTT. Input: evaluations `< p` in
    /// bit-reversed order. Output: coefficients `< p` in natural order.
    pub fn inverse(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        he_trace::record_ntt_inv(1);
        let p = self.modulus.value();
        let two_p = p << 1;
        let n = self.n;

        let mut t = 1usize;
        let mut m = n;
        let mut root_index = 1usize;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for _ in 0..h {
                let w = self.inv_root_powers[root_index];
                let ws = self.inv_root_powers_shoup[root_index];
                root_index += 1;
                let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    let u = *x;
                    let v = *y;
                    let mut s = u + v; // < 4p
                    if s >= two_p {
                        s -= two_p;
                    }
                    *x = s;
                    // (u - v) * w
                    let d = u + two_p - v;
                    *y = self.modulus.mul_shoup_lazy(d, w, ws);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        // Final scale by N^{-1} with full reduction.
        for v in a.iter_mut() {
            *v = self.modulus.mul_shoup(*v, self.inv_n, self.inv_n_shoup);
        }
    }

    /// Pointwise multiply-accumulate in the evaluation domain:
    /// `acc[i] = (acc[i] + a[i] * b[i]) mod p`.
    pub fn dyadic_mul_acc(&self, acc: &mut [u64], a: &[u64], b: &[u64]) {
        for ((r, &x), &y) in acc.iter_mut().zip(a).zip(b) {
            let prod = self.modulus.mul(x, y);
            *r = self.modulus.add(*r, prod);
        }
    }

    /// Pointwise product in the evaluation domain.
    pub fn dyadic_mul(&self, out: &mut [u64], a: &[u64], b: &[u64]) {
        for ((r, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *r = self.modulus.mul(x, y);
        }
    }

    /// log2 of the ring degree.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }
}

/// Reference negacyclic convolution, `O(N^2)`, for testing.
pub fn negacyclic_convolution_naive(a: &[u64], b: &[u64], modulus: &Modulus) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        for j in 0..n {
            let prod = modulus.mul(a[i], b[j]);
            let k = i + j;
            if k < n {
                out[k] = modulus.add(out[k], prod);
            } else {
                out[k - n] = modulus.sub(out[k - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::gen_ntt_primes_excluding;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn table(n: usize, bits: u32) -> NttTable {
        let p = gen_ntt_primes_excluding(bits, n, 1, &[])[0];
        NttTable::new(n, Modulus::new(p))
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for log_n in [3u32, 6, 10] {
            let n = 1usize << log_n;
            let t = table(n, 50);
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let orig: Vec<u64> = (0..n)
                .map(|_| rng.gen_range(0..t.modulus().value()))
                .collect();
            let mut a = orig.clone();
            t.forward(&mut a);
            assert_ne!(a, orig, "transform should not be identity");
            t.inverse(&mut a);
            assert_eq!(a, orig, "N={n}");
        }
    }

    #[test]
    fn ntt_of_constant_poly() {
        // NTT of the constant c evaluates to c at every root.
        let n = 64;
        let t = table(n, 40);
        let mut a = vec![0u64; n];
        a[0] = 12345;
        t.forward(&mut a);
        assert!(a.iter().all(|&x| x == 12345));
    }

    #[test]
    fn convolution_matches_naive() {
        let n = 128;
        let t = table(n, 45);
        let m = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let expect = negacyclic_convolution_naive(&a, &b, &m);

        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut prod = vec![0u64; n];
        t.dyadic_mul(&mut prod, &fa, &fb);
        t.inverse(&mut prod);
        assert_eq!(prod, expect);
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // (X^{N-1}) * X = X^N = -1 mod X^N + 1.
        let n = 32;
        let t = table(n, 40);
        let m = *t.modulus();
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        a[n - 1] = 1;
        b[1] = 1;
        t.forward(&mut a);
        t.forward(&mut b);
        let mut prod = vec![0u64; n];
        t.dyadic_mul(&mut prod, &a, &b);
        t.inverse(&mut prod);
        let mut expect = vec![0u64; n];
        expect[0] = m.value() - 1; // -1
        assert_eq!(prod, expect);
    }

    #[test]
    fn linearity_of_transform() {
        let n = 64;
        let t = table(n, 40);
        let m = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| m.add(x, y)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fs);
        for i in 0..n {
            assert_eq!(fs[i], m.add(fa[i], fb[i]));
        }
    }

    #[test]
    fn dyadic_mul_acc_accumulates() {
        let n = 8;
        let t = table(n, 30);
        let m = *t.modulus();
        let a = vec![2u64; n];
        let b = vec![3u64; n];
        let mut acc = vec![1u64; n];
        t.dyadic_mul_acc(&mut acc, &a, &b);
        assert!(acc.iter().all(|&x| x == 7));
        t.dyadic_mul_acc(&mut acc, &a, &b);
        assert!(acc.iter().all(|&x| x == 13));
        let _ = m;
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_roundtrip(seed in any::<u64>()) {
            let n = 256;
            let t = table(n, 40);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let orig: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t.modulus().value())).collect();
            let mut a = orig.clone();
            t.forward(&mut a);
            t.inverse(&mut a);
            prop_assert_eq!(a, orig);
        }

        #[test]
        fn prop_convolution_commutes(seed in any::<u64>()) {
            let n = 64;
            let t = table(n, 35);
            let m = *t.modulus();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
            let ab = negacyclic_convolution_naive(&a, &b, &m);
            let ba = negacyclic_convolution_naive(&b, &a, &m);
            prop_assert_eq!(ab, ba);
        }
    }
}
