//! AVX2 kernels: 4×u64 lanes per `__m256i`.
//!
//! Bit-identical to [`super::scalar`]: every lane performs exactly the
//! same wrapping u64 arithmetic as the scalar reference, with
//! conditional corrections expressed as compare-masked subtracts.
//! AVX2 has no 64-bit unsigned compare and no 64×64 multiply, so both
//! are emulated:
//!
//! * unsigned compare — flip sign bits and use the signed
//!   `_mm256_cmpgt_epi64`;
//! * `mulhi`/`mullo` — four/three `_mm256_mul_epu32` (32×32→64)
//!   partial products recombined with carry-safe shifts (every
//!   intermediate sum is `< 3·2^32`, so no u64 overflow).
//!
//! NTT stages whose butterfly span `t` is below the 4-lane width are
//! still fully vectorized by gathering x/y operands in-register
//! (`permute2x128` for `t = 2`, `unpacklo/hi_epi64` for `t = 1`) with
//! twiddle vectors permuted to match the gathered lane order.
//!
//! Safety contract for every `pub unsafe fn` here: the caller must have
//! verified `is_x86_feature_detected!("avx2")` (the dispatcher in
//! `kernel` does). No other preconditions: slice bounds are checked by
//! the safe slice ops; raw loads/stores only ever touch
//! `chunks_exact`-derived sub-slices or twiddle indices that stay
//! in-bounds thanks to the `TABLE_PAD` tail padding.

use super::scalar;
use crate::modring::Modulus;
use crate::ntt::NttTable;
use core::arch::x86_64::{
    __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_andnot_si256, _mm256_blendv_epi8,
    _mm256_castsi128_si256, _mm256_cmpeq_epi64, _mm256_cmpgt_epi64, _mm256_loadu_si256,
    _mm256_mul_epu32, _mm256_permute2x128_si256, _mm256_permute4x64_epi64, _mm256_set1_epi64x,
    _mm256_setzero_si256, _mm256_slli_epi64, _mm256_srli_epi64, _mm256_storeu_si256,
    _mm256_sub_epi64, _mm256_unpackhi_epi64, _mm256_unpacklo_epi64, _mm256_xor_si256,
    _mm_loadu_si128,
};

const LANES: usize = 4;

// --- lane helpers (inlined into the #[target_feature] entry points, so
// --- they compile with AVX2 codegen) ---------------------------------

#[inline(always)]
unsafe fn splat(x: u64) -> __m256i {
    _mm256_set1_epi64x(x as i64)
}

#[inline(always)]
unsafe fn load(src: &[u64]) -> __m256i {
    debug_assert!(src.len() >= LANES);
    unsafe { _mm256_loadu_si256(src.as_ptr().cast()) }
}

#[inline(always)]
unsafe fn store(dst: &mut [u64], v: __m256i) {
    debug_assert!(dst.len() >= LANES);
    unsafe { _mm256_storeu_si256(dst.as_mut_ptr().cast(), v) }
}

/// Signed-compare trick: `a > b` unsigned == `(a ^ 2^63) > (b ^ 2^63)`
/// signed. Returns an all-ones/all-zeros lane mask.
#[inline(always)]
unsafe fn cmpgt_u64(a: __m256i, b: __m256i) -> __m256i {
    unsafe {
        let sign = splat(1u64 << 63);
        _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign), _mm256_xor_si256(b, sign))
    }
}

/// `x - (bound if x >= bound else 0)` — the lazy-reduction conditional
/// subtract. `x >= bound` == NOT `bound > x`, folded into `andnot`.
#[inline(always)]
unsafe fn sub_if_ge(x: __m256i, bound: __m256i) -> __m256i {
    unsafe {
        let lt = cmpgt_u64(bound, x);
        _mm256_sub_epi64(x, _mm256_andnot_si256(lt, bound))
    }
}

/// Low 64 bits of the 64×64 product, lane-wise (wrapping — matches
/// `u64::wrapping_mul`).
#[inline(always)]
unsafe fn mul_lo64(a: __m256i, b: __m256i) -> __m256i {
    unsafe {
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let ll = _mm256_mul_epu32(a, b);
        let hl = _mm256_mul_epu32(a_hi, b);
        let lh = _mm256_mul_epu32(a, b_hi);
        // low64 = ll + ((hl + lh) << 32); bits above 64 vanish.
        _mm256_add_epi64(ll, _mm256_slli_epi64::<32>(_mm256_add_epi64(hl, lh)))
    }
}

/// High 64 bits of the 64×64 product, lane-wise. Carry-safe: the `mid`
/// sum of three `< 2^32` terms stays well below `2^64`.
#[inline(always)]
unsafe fn mul_hi64(a: __m256i, b: __m256i) -> __m256i {
    unsafe {
        let mask32 = splat(0xFFFF_FFFF);
        let a_hi = _mm256_srli_epi64::<32>(a);
        let b_hi = _mm256_srli_epi64::<32>(b);
        let ll = _mm256_mul_epu32(a, b);
        let hl = _mm256_mul_epu32(a_hi, b);
        let lh = _mm256_mul_epu32(a, b_hi);
        let hh = _mm256_mul_epu32(a_hi, b_hi);
        let mid = _mm256_add_epi64(
            _mm256_add_epi64(_mm256_srli_epi64::<32>(ll), _mm256_and_si256(hl, mask32)),
            _mm256_and_si256(lh, mask32),
        );
        _mm256_add_epi64(
            _mm256_add_epi64(hh, _mm256_srli_epi64::<32>(hl)),
            _mm256_add_epi64(_mm256_srli_epi64::<32>(lh), _mm256_srli_epi64::<32>(mid)),
        )
    }
}

/// Lazy Shoup multiply `a * b mod p` in `[0, 2p)`; requires `a < 2p`.
/// Identical wrapping formula to `Modulus::mul_shoup_lazy`.
#[inline(always)]
unsafe fn mul_shoup_lazy_v(a: __m256i, b: __m256i, b_shoup: __m256i, p: __m256i) -> __m256i {
    unsafe {
        let q = mul_hi64(a, b_shoup);
        _mm256_sub_epi64(mul_lo64(a, b), mul_lo64(q, p))
    }
}

/// Full Shoup multiply: lazy + one canonical correction.
#[inline(always)]
unsafe fn mul_shoup_v(a: __m256i, b: __m256i, b_shoup: __m256i, p: __m256i) -> __m256i {
    unsafe { sub_if_ge(mul_shoup_lazy_v(a, b, b_shoup, p), p) }
}

/// Single-word Barrett reduce, lane-wise twin of `Modulus::reduce`. For
/// `x < p` the estimate `q` is exactly 0 and `r = x`, so computing
/// unconditionally reproduces the scalar early-exit branch bit-for-bit.
#[inline(always)]
unsafe fn barrett_reduce1_v(x: __m256i, p: __m256i, cr1: __m256i) -> __m256i {
    unsafe {
        let q = mul_hi64(x, cr1);
        sub_if_ge(_mm256_sub_epi64(x, mul_lo64(q, p)), p)
    }
}

/// Canonical `a * b mod p`, lane-wise twin of `Modulus::reduce_u128
/// (a·b)`. The two carries of the three-way `word1` sum are recovered
/// from unsigned wrap-compare masks; subtracting an all-ones mask adds 1.
#[inline(always)]
unsafe fn barrett_mul_v(a: __m256i, b: __m256i, p: __m256i, cr0: __m256i, cr1: __m256i) -> __m256i {
    unsafe {
        let x_lo = mul_lo64(a, b);
        let x_hi = mul_hi64(a, b);
        let carry = mul_hi64(x_lo, cr0);
        let p1_lo = mul_lo64(x_lo, cr1);
        let p1_hi = mul_hi64(x_lo, cr1);
        let p2_lo = mul_lo64(x_hi, cr0);
        let p2_hi = mul_hi64(x_hi, cr0);
        let s1 = _mm256_add_epi64(p1_lo, p2_lo);
        let c1 = cmpgt_u64(p1_lo, s1); // s1 wrapped below p1_lo
        let s2 = _mm256_add_epi64(s1, carry);
        let c2 = cmpgt_u64(carry, s2); // s2 wrapped below carry
        let q = _mm256_add_epi64(_mm256_add_epi64(p1_hi, p2_hi), mul_lo64(x_hi, cr1));
        let q = _mm256_sub_epi64(q, _mm256_add_epi64(c1, c2)); // -(-1) per carry
        let r = _mm256_sub_epi64(x_lo, mul_lo64(q, p));
        sub_if_ge(sub_if_ge(r, p), p)
    }
}

// --- NTT --------------------------------------------------------------

/// In-place forward negacyclic NTT, AVX2.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn ntt_forward(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_forward(table, a);
    }
    let modulus = table.modulus();
    let p_val = modulus.value();
    let p = unsafe { splat(p_val) };
    let two_p = unsafe { splat(p_val << 1) };
    let tw = table.root_powers();
    let tws = table.root_powers_shoup();

    let mut t = n;
    let mut m = 1usize;
    while m < n {
        t >>= 1;
        if t >= LANES {
            for i in 0..m {
                let w = unsafe { splat(tw[m + i]) };
                let ws = unsafe { splat(tws[m + i]) };
                let j1 = 2 * i * t;
                let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                for (cx, cy) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
                    unsafe {
                        let x = load(cx);
                        let y = load(cy);
                        let u = sub_if_ge(x, two_p);
                        let v = mul_shoup_lazy_v(y, w, ws, p);
                        store(cx, _mm256_add_epi64(u, v));
                        store(cy, _mm256_add_epi64(u, _mm256_sub_epi64(two_p, v)));
                    }
                }
            }
        } else if t == 2 {
            // Blocks are [x0 x1 y0 y1]; gather two blocks per iteration
            // into an x-vector and a y-vector via 128-bit-lane permutes.
            for i in (0..m).step_by(2) {
                let base = 4 * i;
                unsafe {
                    // twiddles [w_i, w_i, w_{i+1}, w_{i+1}]
                    let w2 = _mm256_castsi128_si256(_mm_loadu_si128(tw[m + i..].as_ptr().cast()));
                    let ws2 = _mm256_castsi128_si256(_mm_loadu_si128(tws[m + i..].as_ptr().cast()));
                    let w = _mm256_permute4x64_epi64::<0x50>(w2);
                    let ws = _mm256_permute4x64_epi64::<0x50>(ws2);
                    let blk_a = load(&a[base..]);
                    let blk_b = load(&a[base + 4..]);
                    let x = _mm256_permute2x128_si256::<0x20>(blk_a, blk_b);
                    let y = _mm256_permute2x128_si256::<0x31>(blk_a, blk_b);
                    let u = sub_if_ge(x, two_p);
                    let v = mul_shoup_lazy_v(y, w, ws, p);
                    let nx = _mm256_add_epi64(u, v);
                    let ny = _mm256_add_epi64(u, _mm256_sub_epi64(two_p, v));
                    store(&mut a[base..], _mm256_permute2x128_si256::<0x20>(nx, ny));
                    store(
                        &mut a[base + 4..],
                        _mm256_permute2x128_si256::<0x31>(nx, ny),
                    );
                }
            }
        } else {
            // t == 1: blocks are [x y] pairs; interleave four blocks per
            // iteration with 64-bit unpacks. Gathered lane order is
            // [g, g+2, g+1, g+3], so twiddles get the matching
            // [0,2,1,3] permute.
            for i in (0..m).step_by(4) {
                let base = 2 * i;
                unsafe {
                    let w = _mm256_permute4x64_epi64::<0xD8>(load(&tw[m + i..]));
                    let ws = _mm256_permute4x64_epi64::<0xD8>(load(&tws[m + i..]));
                    let blk_a = load(&a[base..]);
                    let blk_b = load(&a[base + 4..]);
                    let x = _mm256_unpacklo_epi64(blk_a, blk_b);
                    let y = _mm256_unpackhi_epi64(blk_a, blk_b);
                    let u = sub_if_ge(x, two_p);
                    let v = mul_shoup_lazy_v(y, w, ws, p);
                    let nx = _mm256_add_epi64(u, v);
                    let ny = _mm256_add_epi64(u, _mm256_sub_epi64(two_p, v));
                    store(&mut a[base..], _mm256_unpacklo_epi64(nx, ny));
                    store(&mut a[base + 4..], _mm256_unpackhi_epi64(nx, ny));
                }
            }
        }
        m <<= 1;
    }
    for c in a.chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, sub_if_ge(sub_if_ge(x, two_p), p));
        }
    }
}

/// In-place inverse negacyclic NTT, AVX2.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn ntt_inverse(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_inverse(table, a);
    }
    let modulus = table.modulus();
    let p_val = modulus.value();
    let p = unsafe { splat(p_val) };
    let two_p = unsafe { splat(p_val << 1) };
    let tw = table.inv_root_powers();
    let tws = table.inv_root_powers_shoup();

    let mut t = 1usize;
    let mut m = n;
    let mut ri = 1usize; // twiddles are consumed contiguously per stage
    while m > 1 {
        let h = m >> 1;
        if t == 1 {
            for g in (0..h).step_by(4) {
                let base = 2 * g;
                unsafe {
                    let w = _mm256_permute4x64_epi64::<0xD8>(load(&tw[ri + g..]));
                    let ws = _mm256_permute4x64_epi64::<0xD8>(load(&tws[ri + g..]));
                    let blk_a = load(&a[base..]);
                    let blk_b = load(&a[base + 4..]);
                    let u = _mm256_unpacklo_epi64(blk_a, blk_b);
                    let v = _mm256_unpackhi_epi64(blk_a, blk_b);
                    let s = sub_if_ge(_mm256_add_epi64(u, v), two_p);
                    let d = _mm256_add_epi64(u, _mm256_sub_epi64(two_p, v));
                    let ny = mul_shoup_lazy_v(d, w, ws, p);
                    store(&mut a[base..], _mm256_unpacklo_epi64(s, ny));
                    store(&mut a[base + 4..], _mm256_unpackhi_epi64(s, ny));
                }
            }
        } else if t == 2 {
            for g in (0..h).step_by(2) {
                let base = 4 * g;
                unsafe {
                    let w2 = _mm256_castsi128_si256(_mm_loadu_si128(tw[ri + g..].as_ptr().cast()));
                    let ws2 =
                        _mm256_castsi128_si256(_mm_loadu_si128(tws[ri + g..].as_ptr().cast()));
                    let w = _mm256_permute4x64_epi64::<0x50>(w2);
                    let ws = _mm256_permute4x64_epi64::<0x50>(ws2);
                    let blk_a = load(&a[base..]);
                    let blk_b = load(&a[base + 4..]);
                    let u = _mm256_permute2x128_si256::<0x20>(blk_a, blk_b);
                    let v = _mm256_permute2x128_si256::<0x31>(blk_a, blk_b);
                    let s = sub_if_ge(_mm256_add_epi64(u, v), two_p);
                    let d = _mm256_add_epi64(u, _mm256_sub_epi64(two_p, v));
                    let ny = mul_shoup_lazy_v(d, w, ws, p);
                    store(&mut a[base..], _mm256_permute2x128_si256::<0x20>(s, ny));
                    store(&mut a[base + 4..], _mm256_permute2x128_si256::<0x31>(s, ny));
                }
            }
        } else {
            for g in 0..h {
                let w = unsafe { splat(tw[ri + g]) };
                let ws = unsafe { splat(tws[ri + g]) };
                let j1 = 2 * t * g;
                let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                for (cx, cy) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
                    unsafe {
                        let u = load(cx);
                        let v = load(cy);
                        let s = sub_if_ge(_mm256_add_epi64(u, v), two_p);
                        let d = _mm256_add_epi64(u, _mm256_sub_epi64(two_p, v));
                        store(cx, s);
                        store(cy, mul_shoup_lazy_v(d, w, ws, p));
                    }
                }
            }
        }
        ri += h;
        t <<= 1;
        m = h;
    }
    let (inv_n, inv_n_shoup) = table.inv_n_pair();
    let (wn, wns) = unsafe { (splat(inv_n), splat(inv_n_shoup)) };
    for c in a.chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, mul_shoup_v(x, wn, wns, p));
        }
    }
}

// --- pointwise kernels ------------------------------------------------

/// `a[i] = a[i] * b[i] mod p`, AVX2.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn dyadic_mul_assign(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let (p, cr0, cr1) = unsafe { barrett_consts(m) };
    let split = a.len() - a.len() % LANES;
    for (ca, cb) in a[..split]
        .chunks_exact_mut(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let x = load(ca);
            let y = load(cb);
            store(ca, barrett_mul_v(x, y, p, cr0, cr1));
        }
    }
    scalar::dyadic_mul_assign(m, &mut a[split..], &b[split..]);
}

/// `out[i] = a[i] * b[i] mod p`, AVX2.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn dyadic_mul(m: &Modulus, out: &mut [u64], a: &[u64], b: &[u64]) {
    let (p, cr0, cr1) = unsafe { barrett_consts(m) };
    let split = out.len() - out.len() % LANES;
    for ((co, ca), cb) in out[..split]
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let x = load(ca);
            let y = load(cb);
            store(co, barrett_mul_v(x, y, p, cr0, cr1));
        }
    }
    scalar::dyadic_mul(m, &mut out[split..], &a[split..], &b[split..]);
}

/// `acc[i] = (acc[i] + a[i] * b[i]) mod p`, AVX2.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn dyadic_mul_acc(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    let (p, cr0, cr1) = unsafe { barrett_consts(m) };
    let split = acc.len() - acc.len() % LANES;
    for ((cr, ca), cb) in acc[..split]
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let r = load(cr);
            let x = load(ca);
            let y = load(cb);
            let prod = barrett_mul_v(x, y, p, cr0, cr1);
            store(cr, sub_if_ge(_mm256_add_epi64(r, prod), p));
        }
    }
    scalar::dyadic_mul_acc(m, &mut acc[split..], &a[split..], &b[split..]);
}

/// `acc[i] = (acc[i] + x[i] * r) mod p` (Shoup-premultiplied), AVX2.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn fused_mac_shoup(m: &Modulus, acc: &mut [u64], x: &[u64], r: u64, r_shoup: u64) {
    let p = unsafe { splat(m.value()) };
    let (w, ws) = unsafe { (splat(r), splat(r_shoup)) };
    let split = acc.len() - acc.len() % LANES;
    for (ca, cx) in acc[..split]
        .chunks_exact_mut(LANES)
        .zip(x[..split].chunks_exact(LANES))
    {
        unsafe {
            let a = load(ca);
            let b = load(cx);
            let t = mul_shoup_v(b, w, ws, p);
            store(ca, sub_if_ge(_mm256_add_epi64(a, t), p));
        }
    }
    scalar::fused_mac_shoup(m, &mut acc[split..], &x[split..], r, r_shoup);
}

/// `data[i] = data[i] * s mod p` (Shoup-premultiplied), AVX2.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn mul_scalar_shoup(m: &Modulus, data: &mut [u64], s: u64, s_shoup: u64) {
    let p = unsafe { splat(m.value()) };
    let (w, ws) = unsafe { (splat(s), splat(s_shoup)) };
    let split = data.len() - data.len() % LANES;
    for c in data[..split].chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, mul_shoup_v(x, w, ws, p));
        }
    }
    scalar::mul_scalar_shoup(m, &mut data[split..], s, s_shoup);
}

/// `dst[i] = src[i] mod p`, AVX2.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn barrett_reduce_slice(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    let (p, _, cr1) = unsafe { barrett_consts(m) };
    let split = dst.len() - dst.len() % LANES;
    for (cd, cs) in dst[..split]
        .chunks_exact_mut(LANES)
        .zip(src[..split].chunks_exact(LANES))
    {
        unsafe {
            let x = load(cs);
            store(cd, barrett_reduce1_v(x, p, cr1));
        }
    }
    scalar::barrett_reduce_slice(m, &mut dst[split..], &src[split..]);
}

/// Rescale/mod-down fusion, AVX2. The centered-lift branch
/// (`r > src_q/2` → negate the reduced complement) becomes a blend
/// between both arms, each computed with the exact scalar formula.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn lift_sub_mul_shoup(
    m: &Modulus,
    dst: &mut [u64],
    src: &[u64],
    src_q: u64,
    inv: u64,
    inv_shoup: u64,
) {
    let (p, _, cr1) = unsafe { barrett_consts(m) };
    let half = unsafe { splat(src_q / 2) };
    let qv = unsafe { splat(src_q) };
    let (w, ws) = unsafe { (splat(inv), splat(inv_shoup)) };
    let zero = _mm256_setzero_si256();
    let split = dst.len() - dst.len() % LANES;
    for (cd, cs) in dst[..split]
        .chunks_exact_mut(LANES)
        .zip(src[..split].chunks_exact(LANES))
    {
        unsafe {
            let r = load(cs);
            let hi_mask = cmpgt_u64(r, half);
            // reduce either r or src_q - r, then negate the latter arm
            let arg = _mm256_blendv_epi8(r, _mm256_sub_epi64(qv, r), hi_mask);
            let red = barrett_reduce1_v(arg, p, cr1);
            let nonzero =
                _mm256_andnot_si256(_mm256_cmpeq_epi64(red, zero), _mm256_sub_epi64(p, red));
            let lifted = _mm256_blendv_epi8(red, nonzero, hi_mask);
            // modular subtract with borrow correction
            let dv = load(cd);
            let borrow = cmpgt_u64(lifted, dv);
            let diff = _mm256_add_epi64(_mm256_sub_epi64(dv, lifted), _mm256_and_si256(borrow, p));
            store(cd, mul_shoup_v(diff, w, ws, p));
        }
    }
    scalar::lift_sub_mul_shoup(m, &mut dst[split..], &src[split..], src_q, inv, inv_shoup);
}

/// Splat the Barrett constants of `m` into vectors.
#[inline(always)]
unsafe fn barrett_consts(m: &Modulus) -> (__m256i, __m256i, __m256i) {
    let [cr0, cr1] = m.const_ratio();
    unsafe { (splat(m.value()), splat(cr0), splat(cr1)) }
}
