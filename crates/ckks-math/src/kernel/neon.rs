//! AArch64 NEON kernels: 2×u64 lanes per `uint64x2_t`.
//!
//! Bit-identical to [`super::scalar`] by construction: identical
//! wrapping u64 formulas, conditional corrections as compare-masked
//! subtracts. NEON has native unsigned 64-bit compares (`vcgeq_u64`)
//! but no 64×64 multiply, so `mullo`/`mulhi` use the same carry-safe
//! 32-bit partial-product recombination as the x86 backends, built from
//! `vmull_u32` (the narrowing helpers `vmovn_u64`/`vshrn_n_u64` split
//! each lane into 32-bit halves for free).
//!
//! The sub-width NTT stage (`t = 1`, two lanes per block pair) is kept
//! in-register with `vtrn1q/vtrn2q_u64`; `t >= 2` stages vectorize
//! directly.
//!
//! This module is compiled only on `target_arch = "aarch64"`, which the
//! x86-only CI cannot execute; the shared parity suites in
//! `kernel::tests` and `tests/tests/kernel_parity.rs` run over
//! [`super::available_backends`] and therefore cover NEON automatically
//! on ARM hosts.
//!
//! Safety contract for every `pub unsafe fn` here: the caller must have
//! verified NEON support (the dispatcher in `kernel` does; NEON is
//! mandatory on AArch64, so this is effectively always true). Raw
//! loads/stores only touch `chunks_exact`-derived sub-slices or twiddle
//! indices that are in-bounds by construction.

use super::scalar;
use crate::modring::Modulus;
use crate::ntt::NttTable;
use core::arch::aarch64::{
    uint64x2_t, vaddq_u64, vandq_u64, vbslq_u64, vceqzq_u64, vcgeq_u64, vcgtq_u64, vdupq_n_u64,
    vld1q_u64, vmovn_u64, vmull_u32, vshlq_n_u64, vshrn_n_u64, vshrq_n_u64, vst1q_u64, vsubq_u64,
    vtrn1q_u64, vtrn2q_u64,
};

const LANES: usize = 2;

// --- lane helpers -----------------------------------------------------

#[inline(always)]
unsafe fn splat(x: u64) -> uint64x2_t {
    unsafe { vdupq_n_u64(x) }
}

#[inline(always)]
unsafe fn load(src: &[u64]) -> uint64x2_t {
    debug_assert!(src.len() >= LANES);
    unsafe { vld1q_u64(src.as_ptr()) }
}

#[inline(always)]
unsafe fn store(dst: &mut [u64], v: uint64x2_t) {
    debug_assert!(dst.len() >= LANES);
    unsafe { vst1q_u64(dst.as_mut_ptr(), v) }
}

/// `x - (bound if x >= bound else 0)` — masked lazy-reduction subtract.
#[inline(always)]
unsafe fn sub_if_ge(x: uint64x2_t, bound: uint64x2_t) -> uint64x2_t {
    unsafe {
        let ge = vcgeq_u64(x, bound);
        vsubq_u64(x, vandq_u64(ge, bound))
    }
}

/// Low 64 bits of the 64×64 product, lane-wise (wrapping).
#[inline(always)]
unsafe fn mul_lo64(a: uint64x2_t, b: uint64x2_t) -> uint64x2_t {
    unsafe {
        let a_lo = vmovn_u64(a);
        let a_hi = vshrn_n_u64::<32>(a);
        let b_lo = vmovn_u64(b);
        let b_hi = vshrn_n_u64::<32>(b);
        let ll = vmull_u32(a_lo, b_lo);
        let hl = vmull_u32(a_hi, b_lo);
        let lh = vmull_u32(a_lo, b_hi);
        vaddq_u64(ll, vshlq_n_u64::<32>(vaddq_u64(hl, lh)))
    }
}

/// High 64 bits of the 64×64 product, lane-wise (carry-safe mid-sum).
#[inline(always)]
unsafe fn mul_hi64(a: uint64x2_t, b: uint64x2_t) -> uint64x2_t {
    unsafe {
        let mask32 = splat(0xFFFF_FFFF);
        let a_lo = vmovn_u64(a);
        let a_hi = vshrn_n_u64::<32>(a);
        let b_lo = vmovn_u64(b);
        let b_hi = vshrn_n_u64::<32>(b);
        let ll = vmull_u32(a_lo, b_lo);
        let hl = vmull_u32(a_hi, b_lo);
        let lh = vmull_u32(a_lo, b_hi);
        let hh = vmull_u32(a_hi, b_hi);
        let mid = vaddq_u64(
            vaddq_u64(vshrq_n_u64::<32>(ll), vandq_u64(hl, mask32)),
            vandq_u64(lh, mask32),
        );
        vaddq_u64(
            vaddq_u64(hh, vshrq_n_u64::<32>(hl)),
            vaddq_u64(vshrq_n_u64::<32>(lh), vshrq_n_u64::<32>(mid)),
        )
    }
}

/// Lazy Shoup multiply in `[0, 2p)` (requires `a < 2p`).
#[inline(always)]
unsafe fn mul_shoup_lazy_v(
    a: uint64x2_t,
    b: uint64x2_t,
    b_shoup: uint64x2_t,
    p: uint64x2_t,
) -> uint64x2_t {
    unsafe {
        let q = mul_hi64(a, b_shoup);
        vsubq_u64(mul_lo64(a, b), mul_lo64(q, p))
    }
}

/// Full Shoup multiply: lazy + one canonical correction.
#[inline(always)]
unsafe fn mul_shoup_v(
    a: uint64x2_t,
    b: uint64x2_t,
    b_shoup: uint64x2_t,
    p: uint64x2_t,
) -> uint64x2_t {
    unsafe { sub_if_ge(mul_shoup_lazy_v(a, b, b_shoup, p), p) }
}

/// Single-word Barrett reduce, lane-wise twin of `Modulus::reduce`.
#[inline(always)]
unsafe fn barrett_reduce1_v(x: uint64x2_t, p: uint64x2_t, cr1: uint64x2_t) -> uint64x2_t {
    unsafe {
        let q = mul_hi64(x, cr1);
        sub_if_ge(vsubq_u64(x, mul_lo64(q, p)), p)
    }
}

/// Canonical `a * b mod p`, lane-wise twin of `Modulus::reduce_u128
/// (a·b)`; carries recovered from wrap-compare masks (all-ones lanes,
/// so subtracting a mask adds 1).
#[inline(always)]
unsafe fn barrett_mul_v(
    a: uint64x2_t,
    b: uint64x2_t,
    p: uint64x2_t,
    cr0: uint64x2_t,
    cr1: uint64x2_t,
) -> uint64x2_t {
    unsafe {
        let x_lo = mul_lo64(a, b);
        let x_hi = mul_hi64(a, b);
        let carry = mul_hi64(x_lo, cr0);
        let p1_lo = mul_lo64(x_lo, cr1);
        let p1_hi = mul_hi64(x_lo, cr1);
        let p2_lo = mul_lo64(x_hi, cr0);
        let p2_hi = mul_hi64(x_hi, cr0);
        let s1 = vaddq_u64(p1_lo, p2_lo);
        let c1 = vcgtq_u64(p1_lo, s1); // wrapped
        let s2 = vaddq_u64(s1, carry);
        let c2 = vcgtq_u64(carry, s2); // wrapped
        let q = vaddq_u64(vaddq_u64(p1_hi, p2_hi), mul_lo64(x_hi, cr1));
        let q = vsubq_u64(q, vaddq_u64(c1, c2)); // -(-1) per carry
        let r = vsubq_u64(x_lo, mul_lo64(q, p));
        sub_if_ge(sub_if_ge(r, p), p)
    }
}

// --- NTT --------------------------------------------------------------

/// In-place forward negacyclic NTT, NEON.
///
/// # Safety
/// Caller must guarantee the CPU supports NEON.
#[target_feature(enable = "neon")]
pub unsafe fn ntt_forward(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_forward(table, a);
    }
    let modulus = table.modulus();
    let p_val = modulus.value();
    let p = unsafe { splat(p_val) };
    let two_p = unsafe { splat(p_val << 1) };
    let tw = table.root_powers();
    let tws = table.root_powers_shoup();

    let mut t = n;
    let mut m = 1usize;
    while m < n {
        t >>= 1;
        if t >= LANES {
            for i in 0..m {
                let w = unsafe { splat(tw[m + i]) };
                let ws = unsafe { splat(tws[m + i]) };
                let j1 = 2 * i * t;
                let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                for (cx, cy) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
                    unsafe {
                        let x = load(cx);
                        let y = load(cy);
                        let u = sub_if_ge(x, two_p);
                        let v = mul_shoup_lazy_v(y, w, ws, p);
                        store(cx, vaddq_u64(u, v));
                        store(cy, vaddq_u64(u, vsubq_u64(two_p, v)));
                    }
                }
            }
        } else {
            // t == 1: blocks are [x y] pairs; transpose two adjacent
            // blocks in-register. Gathered lane order == block order, so
            // twiddles load straight from the table.
            for i in (0..m).step_by(2) {
                let base = 2 * i;
                unsafe {
                    let w = load(&tw[m + i..]);
                    let ws = load(&tws[m + i..]);
                    let blk_a = load(&a[base..]);
                    let blk_b = load(&a[base + 2..]);
                    let x = vtrn1q_u64(blk_a, blk_b);
                    let y = vtrn2q_u64(blk_a, blk_b);
                    let u = sub_if_ge(x, two_p);
                    let v = mul_shoup_lazy_v(y, w, ws, p);
                    let nx = vaddq_u64(u, v);
                    let ny = vaddq_u64(u, vsubq_u64(two_p, v));
                    store(&mut a[base..], vtrn1q_u64(nx, ny));
                    store(&mut a[base + 2..], vtrn2q_u64(nx, ny));
                }
            }
        }
        m <<= 1;
    }
    for c in a.chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, sub_if_ge(sub_if_ge(x, two_p), p));
        }
    }
}

/// In-place inverse negacyclic NTT, NEON.
///
/// # Safety
/// Caller must guarantee the CPU supports NEON.
#[target_feature(enable = "neon")]
pub unsafe fn ntt_inverse(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_inverse(table, a);
    }
    let modulus = table.modulus();
    let p_val = modulus.value();
    let p = unsafe { splat(p_val) };
    let two_p = unsafe { splat(p_val << 1) };
    let tw = table.inv_root_powers();
    let tws = table.inv_root_powers_shoup();

    let mut t = 1usize;
    let mut m = n;
    let mut ri = 1usize;
    while m > 1 {
        let h = m >> 1;
        if t == 1 {
            for g in (0..h).step_by(2) {
                let base = 2 * g;
                unsafe {
                    let w = load(&tw[ri + g..]);
                    let ws = load(&tws[ri + g..]);
                    let blk_a = load(&a[base..]);
                    let blk_b = load(&a[base + 2..]);
                    let u = vtrn1q_u64(blk_a, blk_b);
                    let v = vtrn2q_u64(blk_a, blk_b);
                    let s = sub_if_ge(vaddq_u64(u, v), two_p);
                    let d = vaddq_u64(u, vsubq_u64(two_p, v));
                    let ny = mul_shoup_lazy_v(d, w, ws, p);
                    store(&mut a[base..], vtrn1q_u64(s, ny));
                    store(&mut a[base + 2..], vtrn2q_u64(s, ny));
                }
            }
        } else {
            for g in 0..h {
                let w = unsafe { splat(tw[ri + g]) };
                let ws = unsafe { splat(tws[ri + g]) };
                let j1 = 2 * t * g;
                let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                for (cx, cy) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
                    unsafe {
                        let u = load(cx);
                        let v = load(cy);
                        let s = sub_if_ge(vaddq_u64(u, v), two_p);
                        let d = vaddq_u64(u, vsubq_u64(two_p, v));
                        store(cx, s);
                        store(cy, mul_shoup_lazy_v(d, w, ws, p));
                    }
                }
            }
        }
        ri += h;
        t <<= 1;
        m = h;
    }
    let (inv_n, inv_n_shoup) = table.inv_n_pair();
    let (wn, wns) = unsafe { (splat(inv_n), splat(inv_n_shoup)) };
    for c in a.chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, mul_shoup_v(x, wn, wns, p));
        }
    }
}

// --- pointwise kernels ------------------------------------------------

/// `a[i] = a[i] * b[i] mod p`, NEON.
///
/// # Safety
/// Caller must guarantee the CPU supports NEON.
#[target_feature(enable = "neon")]
pub unsafe fn dyadic_mul_assign(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let (p, cr0, cr1) = unsafe { barrett_consts(m) };
    let split = a.len() - a.len() % LANES;
    for (ca, cb) in a[..split]
        .chunks_exact_mut(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let x = load(ca);
            let y = load(cb);
            store(ca, barrett_mul_v(x, y, p, cr0, cr1));
        }
    }
    scalar::dyadic_mul_assign(m, &mut a[split..], &b[split..]);
}

/// `out[i] = a[i] * b[i] mod p`, NEON.
///
/// # Safety
/// Caller must guarantee the CPU supports NEON.
#[target_feature(enable = "neon")]
pub unsafe fn dyadic_mul(m: &Modulus, out: &mut [u64], a: &[u64], b: &[u64]) {
    let (p, cr0, cr1) = unsafe { barrett_consts(m) };
    let split = out.len() - out.len() % LANES;
    for ((co, ca), cb) in out[..split]
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let x = load(ca);
            let y = load(cb);
            store(co, barrett_mul_v(x, y, p, cr0, cr1));
        }
    }
    scalar::dyadic_mul(m, &mut out[split..], &a[split..], &b[split..]);
}

/// `acc[i] = (acc[i] + a[i] * b[i]) mod p`, NEON.
///
/// # Safety
/// Caller must guarantee the CPU supports NEON.
#[target_feature(enable = "neon")]
pub unsafe fn dyadic_mul_acc(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    let (p, cr0, cr1) = unsafe { barrett_consts(m) };
    let split = acc.len() - acc.len() % LANES;
    for ((cr, ca), cb) in acc[..split]
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let r = load(cr);
            let x = load(ca);
            let y = load(cb);
            let prod = barrett_mul_v(x, y, p, cr0, cr1);
            store(cr, sub_if_ge(vaddq_u64(r, prod), p));
        }
    }
    scalar::dyadic_mul_acc(m, &mut acc[split..], &a[split..], &b[split..]);
}

/// `acc[i] = (acc[i] + x[i] * r) mod p` (Shoup-premultiplied), NEON.
///
/// # Safety
/// Caller must guarantee the CPU supports NEON.
#[target_feature(enable = "neon")]
pub unsafe fn fused_mac_shoup(m: &Modulus, acc: &mut [u64], x: &[u64], r: u64, r_shoup: u64) {
    let p = unsafe { splat(m.value()) };
    let (w, ws) = unsafe { (splat(r), splat(r_shoup)) };
    let split = acc.len() - acc.len() % LANES;
    for (ca, cx) in acc[..split]
        .chunks_exact_mut(LANES)
        .zip(x[..split].chunks_exact(LANES))
    {
        unsafe {
            let a = load(ca);
            let b = load(cx);
            let t = mul_shoup_v(b, w, ws, p);
            store(ca, sub_if_ge(vaddq_u64(a, t), p));
        }
    }
    scalar::fused_mac_shoup(m, &mut acc[split..], &x[split..], r, r_shoup);
}

/// `data[i] = data[i] * s mod p` (Shoup-premultiplied), NEON.
///
/// # Safety
/// Caller must guarantee the CPU supports NEON.
#[target_feature(enable = "neon")]
pub unsafe fn mul_scalar_shoup(m: &Modulus, data: &mut [u64], s: u64, s_shoup: u64) {
    let p = unsafe { splat(m.value()) };
    let (w, ws) = unsafe { (splat(s), splat(s_shoup)) };
    let split = data.len() - data.len() % LANES;
    for c in data[..split].chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, mul_shoup_v(x, w, ws, p));
        }
    }
    scalar::mul_scalar_shoup(m, &mut data[split..], s, s_shoup);
}

/// `dst[i] = src[i] mod p`, NEON.
///
/// # Safety
/// Caller must guarantee the CPU supports NEON.
#[target_feature(enable = "neon")]
pub unsafe fn barrett_reduce_slice(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    let (p, _, cr1) = unsafe { barrett_consts(m) };
    let split = dst.len() - dst.len() % LANES;
    for (cd, cs) in dst[..split]
        .chunks_exact_mut(LANES)
        .zip(src[..split].chunks_exact(LANES))
    {
        unsafe {
            let x = load(cs);
            store(cd, barrett_reduce1_v(x, p, cr1));
        }
    }
    scalar::barrett_reduce_slice(m, &mut dst[split..], &src[split..]);
}

/// Rescale/mod-down fusion, NEON: centered lift as a blend between the
/// two scalar branch arms, modular subtract, Shoup multiply.
///
/// # Safety
/// Caller must guarantee the CPU supports NEON.
#[target_feature(enable = "neon")]
pub unsafe fn lift_sub_mul_shoup(
    m: &Modulus,
    dst: &mut [u64],
    src: &[u64],
    src_q: u64,
    inv: u64,
    inv_shoup: u64,
) {
    let (p, _, cr1) = unsafe { barrett_consts(m) };
    let half = unsafe { splat(src_q / 2) };
    let qv = unsafe { splat(src_q) };
    let (w, ws) = unsafe { (splat(inv), splat(inv_shoup)) };
    let split = dst.len() - dst.len() % LANES;
    for (cd, cs) in dst[..split]
        .chunks_exact_mut(LANES)
        .zip(src[..split].chunks_exact(LANES))
    {
        unsafe {
            let r = load(cs);
            let hi_mask = vcgtq_u64(r, half);
            // reduce either r or src_q - r, then negate the latter arm
            let arg = vbslq_u64(hi_mask, vsubq_u64(qv, r), r);
            let red = barrett_reduce1_v(arg, p, cr1);
            // m.neg(red): p - red, forced to 0 where red == 0
            let zero_mask = vceqzq_u64(red);
            let neg = vbslq_u64(zero_mask, splat(0), vsubq_u64(p, red));
            let lifted = vbslq_u64(hi_mask, neg, red);
            // modular subtract with borrow correction
            let dv = load(cd);
            let borrow = vcgtq_u64(lifted, dv);
            let diff = vaddq_u64(vsubq_u64(dv, lifted), vandq_u64(borrow, p));
            store(cd, mul_shoup_v(diff, w, ws, p));
        }
    }
    scalar::lift_sub_mul_shoup(m, &mut dst[split..], &src[split..], src_q, inv, inv_shoup);
}

/// Splat the Barrett constants of `m` into vectors.
#[inline(always)]
unsafe fn barrett_consts(m: &Modulus) -> (uint64x2_t, uint64x2_t, uint64x2_t) {
    let [cr0, cr1] = m.const_ratio();
    unsafe { (splat(m.value()), splat(cr0), splat(cr1)) }
}
