//! Portable scalar reference kernels.
//!
//! These are the loop bodies the vector backends must reproduce
//! **bit-identically**; they are also the `he-diff` parity baseline and
//! the only path on hosts without SIMD. Keep them boring: any change
//! here changes the definition of "correct" for every other backend.

use crate::modring::Modulus;
use crate::ntt::NttTable;

/// In-place forward negacyclic NTT (Cooley–Tukey, bit-reversed output).
/// Harvey butterflies with lazy `[0, 4p)` intermediates; final pass
/// reduces to `[0, p)`.
pub fn ntt_forward(table: &NttTable, a: &mut [u64]) {
    let modulus = table.modulus();
    let p = modulus.value();
    let two_p = p << 1;
    let n = table.n();
    let root_powers = table.root_powers();
    let root_powers_shoup = table.root_powers_shoup();

    let mut t = n;
    let mut m = 1usize;
    while m < n {
        t >>= 1;
        for i in 0..m {
            let w = root_powers[m + i];
            let ws = root_powers_shoup[m + i];
            let j1 = 2 * i * t;
            let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                // Harvey butterfly: x, y < 4p on input of later stages;
                // normalize x into [0, 2p) first.
                let mut u = *x;
                if u >= two_p {
                    u -= two_p;
                }
                let v = modulus.mul_shoup_lazy(*y, w, ws); // < 2p
                *x = u + v; // < 4p
                *y = u + two_p - v; // < 4p
            }
        }
        m <<= 1;
    }
    for v in a.iter_mut() {
        let mut x = *v;
        if x >= two_p {
            x -= two_p;
        }
        if x >= p {
            x -= p;
        }
        *v = x;
    }
}

/// In-place inverse negacyclic NTT (Gentleman–Sande, bit-reversed
/// input), with `N^{-1}` folded into a final Shoup pass.
pub fn ntt_inverse(table: &NttTable, a: &mut [u64]) {
    let modulus = table.modulus();
    let p = modulus.value();
    let two_p = p << 1;
    let n = table.n();
    let inv_root_powers = table.inv_root_powers();
    let inv_root_powers_shoup = table.inv_root_powers_shoup();

    let mut t = 1usize;
    let mut m = n;
    let mut root_index = 1usize;
    while m > 1 {
        let h = m >> 1;
        let mut j1 = 0usize;
        for _ in 0..h {
            let w = inv_root_powers[root_index];
            let ws = inv_root_powers_shoup[root_index];
            root_index += 1;
            let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *x;
                let v = *y;
                let mut s = u + v; // < 4p
                if s >= two_p {
                    s -= two_p;
                }
                *x = s;
                // (u - v) * w
                let d = u + two_p - v;
                *y = modulus.mul_shoup_lazy(d, w, ws);
            }
            j1 += 2 * t;
        }
        t <<= 1;
        m = h;
    }
    // Final scale by N^{-1} with full reduction.
    let (inv_n, inv_n_shoup) = table.inv_n_pair();
    for v in a.iter_mut() {
        *v = modulus.mul_shoup(*v, inv_n, inv_n_shoup);
    }
}

/// `a[i] = a[i] * b[i] mod p` (full Barrett).
pub fn dyadic_mul_assign(m: &Modulus, a: &mut [u64], b: &[u64]) {
    for (x, &y) in a.iter_mut().zip(b) {
        *x = m.mul(*x, y);
    }
}

/// `out[i] = a[i] * b[i] mod p`.
pub fn dyadic_mul(m: &Modulus, out: &mut [u64], a: &[u64], b: &[u64]) {
    for ((r, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *r = m.mul(x, y);
    }
}

/// `acc[i] = (acc[i] + a[i] * b[i]) mod p`.
pub fn dyadic_mul_acc(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    for ((r, &x), &y) in acc.iter_mut().zip(a).zip(b) {
        let prod = m.mul(x, y);
        *r = m.add(*r, prod);
    }
}

/// `acc[i] = (acc[i] + x[i] * r) mod p`, `r_shoup = m.shoup(r)`.
pub fn fused_mac_shoup(m: &Modulus, acc: &mut [u64], x: &[u64], r: u64, r_shoup: u64) {
    for (a, &b) in acc.iter_mut().zip(x) {
        let t = m.mul_shoup(b, r, r_shoup);
        *a = m.add(*a, t);
    }
}

/// `data[i] = data[i] * s mod p`, `s_shoup = m.shoup(s)`.
pub fn mul_scalar_shoup(m: &Modulus, data: &mut [u64], s: u64, s_shoup: u64) {
    for v in data.iter_mut() {
        *v = m.mul_shoup(*v, s, s_shoup);
    }
}

/// `dst[i] = src[i] mod p` (single-word Barrett).
pub fn barrett_reduce_slice(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    for (dv, &rv) in dst.iter_mut().zip(src) {
        *dv = m.reduce(rv);
    }
}

/// The rescale / mod-down fusion: centered lift of the `src_q`-residue
/// into `p`, subtract from `dst`, multiply by the precomputed inverse.
pub fn lift_sub_mul_shoup(
    m: &Modulus,
    dst: &mut [u64],
    src: &[u64],
    src_q: u64,
    inv: u64,
    inv_shoup: u64,
) {
    let half = src_q / 2;
    for (dv, &r) in dst.iter_mut().zip(src) {
        // centered lift of the src_q-residue into p
        let lifted = if r > half {
            m.neg(m.reduce(src_q - r))
        } else {
            m.reduce(r)
        };
        let diff = m.sub(*dv, lifted);
        *dv = m.mul_shoup(diff, inv, inv_shoup);
    }
}
