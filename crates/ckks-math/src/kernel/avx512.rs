//! AVX-512 (F + DQ) kernels: 8×u64 lanes per `__m512i`.
//!
//! Bit-identical to [`super::scalar`] — same wrapping u64 formulas,
//! with conditional corrections as mask-subtracts. Compared to the AVX2
//! path this backend gets three things natively: unsigned 64-bit
//! compares producing `__mmask8` predicates, a true 64×64→low64
//! multiply (`vpmullq`, the DQ half of the feature requirement), and
//! two-source lane permutes (`vpermt2q`) that let the small-`t` NTT
//! stages gather butterfly operands across two registers in one
//! instruction. Only `mulhi64` still needs the 32-bit partial-product
//! decomposition (carry-safe: the mid-sum of three `< 2^32` terms never
//! overflows a u64).
//!
//! Safety contract for every `pub unsafe fn` here: the caller must have
//! verified `avx512f` **and** `avx512dq` (the dispatcher in `kernel`
//! does). Raw loads/stores only touch `chunks_exact`-derived sub-slices
//! or twiddle indices in-bounds by construction; full-width twiddle
//! loads at small-`t` stages may read into the zeroed `TABLE_PAD` tail,
//! never past the allocation.

use super::scalar;
use crate::modring::Modulus;
use crate::ntt::NttTable;
use core::arch::x86_64::{
    __m512i, __mmask8, _mm512_add_epi64, _mm512_and_si512, _mm512_cmpeq_epi64_mask,
    _mm512_cmpge_epu64_mask, _mm512_cmpgt_epu64_mask, _mm512_cmplt_epu64_mask, _mm512_loadu_epi64,
    _mm512_madd52hi_epu64, _mm512_madd52lo_epu64, _mm512_mask_blend_epi64, _mm512_mask_sub_epi64,
    _mm512_maskz_mov_epi64, _mm512_mul_epu32, _mm512_mullo_epi64, _mm512_permutex2var_epi64,
    _mm512_permutexvar_epi64, _mm512_set1_epi64, _mm512_setzero_si512, _mm512_srli_epi64,
    _mm512_storeu_epi64, _mm512_sub_epi64,
};

const LANES: usize = 8;

// --- IFMA (52-bit) fast path ------------------------------------------
//
// `vpmadd52{lo,hi}` multiply the low 52 bits of two operands and add the
// low/high half of the 104-bit product to a 64-bit accumulator. For
// moduli with `4p < 2^52` (`ntt::IFMA_MAX_MODULUS`) every lazy Harvey
// value fits a 52-bit multiplier operand, and with Shoup constants
// rescaled to `⌊w·2^52/p⌋` the lazy product costs three multiplies
// instead of the ten 32×32 partial products of the generic path.
//
// Bit-identity: the IFMA quotient estimate can differ from the 64-bit
// one, so *intermediate* lazy representatives may differ by a multiple
// of `p` — but every kernel entry point below either ends in a full
// canonical reduction (NTTs, dyadic, fused MAC) or reproduces the
// scalar formula exactly, so entry-point outputs are identical across
// paths. The parity suites compare at that boundary.

const MASK52: u64 = (1 << 52) - 1;

/// Cached `avx512ifma` detection, on top of the F+DQ contract the
/// dispatcher already established for this module.
fn ifma_available() -> bool {
    static IFMA: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *IFMA.get_or_init(|| std::arch::is_x86_feature_detected!("avx512ifma"))
}

/// `⌊w·2^52/p⌋` for a runtime scalar operand (twiddles come
/// precomputed from `NttTable`; per-slice constants are derived here).
#[inline]
fn shoup52(w: u64, p: u64) -> u64 {
    (((w as u128) << 52) / p as u128) as u64
}

/// Lazy 52-bit Shoup multiply `y * w mod p` in `[0, 2p)`. Requires
/// `y < 2^52`, `w < p` and `4p < 2^52`; `ws52 = ⌊w·2^52/p⌋`.
#[inline(always)]
unsafe fn mul_shoup_lazy52_v(y: __m512i, w: __m512i, ws52: __m512i, p: __m512i) -> __m512i {
    unsafe {
        let zero = _mm512_setzero_si512();
        let q = _mm512_madd52hi_epu64(zero, y, ws52);
        let t = _mm512_sub_epi64(
            _mm512_madd52lo_epu64(zero, y, w),
            _mm512_madd52lo_epu64(zero, q, p),
        );
        // the true remainder is in [0, 2p) ⊂ [0, 2^52); the u64 wrap of
        // the subtraction vanishes under the 52-bit mask
        _mm512_and_si512(t, splat(MASK52))
    }
}

// --- lane helpers (inlined into the #[target_feature] entry points) ---

#[inline(always)]
unsafe fn splat(x: u64) -> __m512i {
    unsafe { _mm512_set1_epi64(x as i64) }
}

#[inline(always)]
unsafe fn load(src: &[u64]) -> __m512i {
    debug_assert!(src.len() >= LANES);
    unsafe { _mm512_loadu_epi64(src.as_ptr().cast()) }
}

#[inline(always)]
unsafe fn store(dst: &mut [u64], v: __m512i) {
    debug_assert!(dst.len() >= LANES);
    unsafe { _mm512_storeu_epi64(dst.as_mut_ptr().cast(), v) }
}

/// Index vector for the two-source permutes (values `>= 8` select from
/// the second source operand).
#[inline(always)]
unsafe fn idx(v: [u64; 8]) -> __m512i {
    unsafe { _mm512_loadu_epi64(v.as_ptr().cast()) }
}

/// `x - (bound if x >= bound else 0)` via a mask-subtract.
#[inline(always)]
unsafe fn sub_if_ge(x: __m512i, bound: __m512i) -> __m512i {
    unsafe {
        let ge = _mm512_cmpge_epu64_mask(x, bound);
        _mm512_mask_sub_epi64(x, ge, x, bound)
    }
}

/// High 64 bits of the 64×64 product (32-bit partial products).
#[inline(always)]
unsafe fn mul_hi64(a: __m512i, b: __m512i) -> __m512i {
    unsafe {
        let mask32 = splat(0xFFFF_FFFF);
        let a_hi = _mm512_srli_epi64::<32>(a);
        let b_hi = _mm512_srli_epi64::<32>(b);
        let ll = _mm512_mul_epu32(a, b);
        let hl = _mm512_mul_epu32(a_hi, b);
        let lh = _mm512_mul_epu32(a, b_hi);
        let hh = _mm512_mul_epu32(a_hi, b_hi);
        let mid = _mm512_add_epi64(
            _mm512_add_epi64(_mm512_srli_epi64::<32>(ll), _mm512_and_si512(hl, mask32)),
            _mm512_and_si512(lh, mask32),
        );
        _mm512_add_epi64(
            _mm512_add_epi64(hh, _mm512_srli_epi64::<32>(hl)),
            _mm512_add_epi64(_mm512_srli_epi64::<32>(lh), _mm512_srli_epi64::<32>(mid)),
        )
    }
}

/// Lazy Shoup multiply in `[0, 2p)` (requires `a < 2p`), identical
/// wrapping formula to `Modulus::mul_shoup_lazy`.
#[inline(always)]
unsafe fn mul_shoup_lazy_v(a: __m512i, b: __m512i, b_shoup: __m512i, p: __m512i) -> __m512i {
    unsafe {
        let q = mul_hi64(a, b_shoup);
        _mm512_sub_epi64(_mm512_mullo_epi64(a, b), _mm512_mullo_epi64(q, p))
    }
}

/// Full Shoup multiply: lazy + one canonical correction.
#[inline(always)]
unsafe fn mul_shoup_v(a: __m512i, b: __m512i, b_shoup: __m512i, p: __m512i) -> __m512i {
    unsafe { sub_if_ge(mul_shoup_lazy_v(a, b, b_shoup, p), p) }
}

/// Single-word Barrett reduce, lane-wise twin of `Modulus::reduce` (for
/// `x < p` the estimate is exactly 0, reproducing the scalar early-exit).
#[inline(always)]
unsafe fn barrett_reduce1_v(x: __m512i, p: __m512i, cr1: __m512i) -> __m512i {
    unsafe {
        let q = mul_hi64(x, cr1);
        sub_if_ge(_mm512_sub_epi64(x, _mm512_mullo_epi64(q, p)), p)
    }
}

/// Canonical `a * b mod p`, lane-wise twin of
/// `Modulus::reduce_u128(a·b)`; the carries of the three-way `word1`
/// sum come from wrap-compare masks and feed masked `+1`s.
#[inline(always)]
unsafe fn barrett_mul_v(a: __m512i, b: __m512i, p: __m512i, cr0: __m512i, cr1: __m512i) -> __m512i {
    unsafe {
        let x_lo = _mm512_mullo_epi64(a, b);
        let x_hi = mul_hi64(a, b);
        let carry = mul_hi64(x_lo, cr0);
        let p1_lo = _mm512_mullo_epi64(x_lo, cr1);
        let p1_hi = mul_hi64(x_lo, cr1);
        let p2_lo = _mm512_mullo_epi64(x_hi, cr0);
        let p2_hi = mul_hi64(x_hi, cr0);
        let one = splat(1);
        let s1 = _mm512_add_epi64(p1_lo, p2_lo);
        let c1: __mmask8 = _mm512_cmplt_epu64_mask(s1, p1_lo); // wrapped
        let s2 = _mm512_add_epi64(s1, carry);
        let c2: __mmask8 = _mm512_cmplt_epu64_mask(s2, carry); // wrapped
        let mut q = _mm512_add_epi64(
            _mm512_add_epi64(p1_hi, p2_hi),
            _mm512_mullo_epi64(x_hi, cr1),
        );
        q = _mm512_add_epi64(q, _mm512_maskz_mov_epi64(c1, one));
        q = _mm512_add_epi64(q, _mm512_maskz_mov_epi64(c2, one));
        let r = _mm512_sub_epi64(x_lo, _mm512_mullo_epi64(q, p));
        sub_if_ge(sub_if_ge(r, p), p)
    }
}

/// The gather/scatter index vectors for the three sub-vector-width NTT
/// stage layouts, plus the twiddle-expansion permutes. One struct so
/// forward and inverse share the derivations:
///
/// * `half_*` — `t = 4`, blocks of 8 `[x0..x3 y0..y3]`, 2 blocks/iter;
/// * `pair_*` — `t = 2`, blocks of 4 `[x0 x1 y0 y1]`, 4 blocks/iter;
/// * `lace_*` — `t = 1`, blocks of 2 `[x y]`, 8 blocks/iter (gathered
///   lane order == block order, so twiddles load straight);
/// * `w_quad`/`w_pair` — repeat each twiddle 4×/2× to match lane order.
struct StageIdx {
    half_lo: __m512i,
    half_hi: __m512i,
    pair_x: __m512i,
    pair_y: __m512i,
    pair_a: __m512i,
    pair_b: __m512i,
    lace_x: __m512i,
    lace_y: __m512i,
    lace_a: __m512i,
    lace_b: __m512i,
    w_quad: __m512i,
    w_pair: __m512i,
}

#[inline(always)]
unsafe fn stage_idx() -> StageIdx {
    unsafe {
        StageIdx {
            half_lo: idx([0, 1, 2, 3, 8, 9, 10, 11]),
            half_hi: idx([4, 5, 6, 7, 12, 13, 14, 15]),
            pair_x: idx([0, 1, 4, 5, 8, 9, 12, 13]),
            pair_y: idx([2, 3, 6, 7, 10, 11, 14, 15]),
            pair_a: idx([0, 1, 8, 9, 2, 3, 10, 11]),
            pair_b: idx([4, 5, 12, 13, 6, 7, 14, 15]),
            lace_x: idx([0, 2, 4, 6, 8, 10, 12, 14]),
            lace_y: idx([1, 3, 5, 7, 9, 11, 13, 15]),
            lace_a: idx([0, 8, 1, 9, 2, 10, 3, 11]),
            lace_b: idx([4, 12, 5, 13, 6, 14, 7, 15]),
            w_quad: idx([0, 0, 0, 0, 1, 1, 1, 1]),
            w_pair: idx([0, 0, 1, 1, 2, 2, 3, 3]),
        }
    }
}

// --- NTT --------------------------------------------------------------

/// In-place forward negacyclic NTT, AVX-512.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX-512F and AVX-512DQ.
#[target_feature(enable = "avx512f,avx512dq")]
pub unsafe fn ntt_forward(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_forward(table, a);
    }
    if ifma_available() {
        if let Some(tws52) = table.root_powers_shoup52() {
            return unsafe { ntt_forward_ifma(table, a, tws52) };
        }
    }
    let modulus = table.modulus();
    let p_val = modulus.value();
    let p = unsafe { splat(p_val) };
    let two_p = unsafe { splat(p_val << 1) };
    let tw = table.root_powers();
    let tws = table.root_powers_shoup();
    let ix = unsafe { stage_idx() };

    let mut t = n;
    let mut m = 1usize;
    while m < n {
        t >>= 1;
        match t {
            _ if t >= LANES => {
                for i in 0..m {
                    let w = unsafe { splat(tw[m + i]) };
                    let ws = unsafe { splat(tws[m + i]) };
                    let j1 = 2 * i * t;
                    let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                    for (cx, cy) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
                        unsafe {
                            let x = load(cx);
                            let y = load(cy);
                            let u = sub_if_ge(x, two_p);
                            let v = mul_shoup_lazy_v(y, w, ws, p);
                            store(cx, _mm512_add_epi64(u, v));
                            store(cy, _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v)));
                        }
                    }
                }
            }
            4 => {
                for i in (0..m).step_by(2) {
                    let base = 8 * i;
                    unsafe {
                        // full-width twiddle loads may touch TABLE_PAD
                        let w = _mm512_permutexvar_epi64(ix.w_quad, load(&tw[m + i..]));
                        let ws = _mm512_permutexvar_epi64(ix.w_quad, load(&tws[m + i..]));
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let x = _mm512_permutex2var_epi64(blk_a, ix.half_lo, blk_b);
                        let y = _mm512_permutex2var_epi64(blk_a, ix.half_hi, blk_b);
                        let u = sub_if_ge(x, two_p);
                        let v = mul_shoup_lazy_v(y, w, ws, p);
                        let nx = _mm512_add_epi64(u, v);
                        let ny = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        store(
                            &mut a[base..],
                            _mm512_permutex2var_epi64(nx, ix.half_lo, ny),
                        );
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(nx, ix.half_hi, ny),
                        );
                    }
                }
            }
            2 => {
                for i in (0..m).step_by(4) {
                    let base = 4 * i;
                    unsafe {
                        let w = _mm512_permutexvar_epi64(ix.w_pair, load(&tw[m + i..]));
                        let ws = _mm512_permutexvar_epi64(ix.w_pair, load(&tws[m + i..]));
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let x = _mm512_permutex2var_epi64(blk_a, ix.pair_x, blk_b);
                        let y = _mm512_permutex2var_epi64(blk_a, ix.pair_y, blk_b);
                        let u = sub_if_ge(x, two_p);
                        let v = mul_shoup_lazy_v(y, w, ws, p);
                        let nx = _mm512_add_epi64(u, v);
                        let ny = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        store(&mut a[base..], _mm512_permutex2var_epi64(nx, ix.pair_a, ny));
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(nx, ix.pair_b, ny),
                        );
                    }
                }
            }
            _ => {
                // t == 1
                for i in (0..m).step_by(8) {
                    let base = 2 * i;
                    unsafe {
                        let w = load(&tw[m + i..]);
                        let ws = load(&tws[m + i..]);
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let x = _mm512_permutex2var_epi64(blk_a, ix.lace_x, blk_b);
                        let y = _mm512_permutex2var_epi64(blk_a, ix.lace_y, blk_b);
                        let u = sub_if_ge(x, two_p);
                        let v = mul_shoup_lazy_v(y, w, ws, p);
                        let nx = _mm512_add_epi64(u, v);
                        let ny = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        store(&mut a[base..], _mm512_permutex2var_epi64(nx, ix.lace_a, ny));
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(nx, ix.lace_b, ny),
                        );
                    }
                }
            }
        }
        m <<= 1;
    }
    for c in a.chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, sub_if_ge(sub_if_ge(x, two_p), p));
        }
    }
}

/// In-place inverse negacyclic NTT, AVX-512.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX-512F and AVX-512DQ.
#[target_feature(enable = "avx512f,avx512dq")]
pub unsafe fn ntt_inverse(table: &NttTable, a: &mut [u64]) {
    let n = table.n();
    if n < 2 * LANES {
        return scalar::ntt_inverse(table, a);
    }
    if ifma_available() {
        if let Some(tws52) = table.inv_root_powers_shoup52() {
            return unsafe { ntt_inverse_ifma(table, a, tws52) };
        }
    }
    let modulus = table.modulus();
    let p_val = modulus.value();
    let p = unsafe { splat(p_val) };
    let two_p = unsafe { splat(p_val << 1) };
    let tw = table.inv_root_powers();
    let tws = table.inv_root_powers_shoup();
    let ix = unsafe { stage_idx() };

    let mut t = 1usize;
    let mut m = n;
    let mut ri = 1usize; // GS twiddles are consumed contiguously
    while m > 1 {
        let h = m >> 1;
        match t {
            1 => {
                for g in (0..h).step_by(8) {
                    let base = 2 * g;
                    unsafe {
                        let w = load(&tw[ri + g..]);
                        let ws = load(&tws[ri + g..]);
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let u = _mm512_permutex2var_epi64(blk_a, ix.lace_x, blk_b);
                        let v = _mm512_permutex2var_epi64(blk_a, ix.lace_y, blk_b);
                        let s = sub_if_ge(_mm512_add_epi64(u, v), two_p);
                        let d = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        let ny = mul_shoup_lazy_v(d, w, ws, p);
                        store(&mut a[base..], _mm512_permutex2var_epi64(s, ix.lace_a, ny));
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(s, ix.lace_b, ny),
                        );
                    }
                }
            }
            2 => {
                for g in (0..h).step_by(4) {
                    let base = 4 * g;
                    unsafe {
                        // full-width twiddle loads may touch TABLE_PAD
                        let w = _mm512_permutexvar_epi64(ix.w_pair, load(&tw[ri + g..]));
                        let ws = _mm512_permutexvar_epi64(ix.w_pair, load(&tws[ri + g..]));
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let u = _mm512_permutex2var_epi64(blk_a, ix.pair_x, blk_b);
                        let v = _mm512_permutex2var_epi64(blk_a, ix.pair_y, blk_b);
                        let s = sub_if_ge(_mm512_add_epi64(u, v), two_p);
                        let d = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        let ny = mul_shoup_lazy_v(d, w, ws, p);
                        store(&mut a[base..], _mm512_permutex2var_epi64(s, ix.pair_a, ny));
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(s, ix.pair_b, ny),
                        );
                    }
                }
            }
            4 => {
                for g in (0..h).step_by(2) {
                    let base = 8 * g;
                    unsafe {
                        let w = _mm512_permutexvar_epi64(ix.w_quad, load(&tw[ri + g..]));
                        let ws = _mm512_permutexvar_epi64(ix.w_quad, load(&tws[ri + g..]));
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let u = _mm512_permutex2var_epi64(blk_a, ix.half_lo, blk_b);
                        let v = _mm512_permutex2var_epi64(blk_a, ix.half_hi, blk_b);
                        let s = sub_if_ge(_mm512_add_epi64(u, v), two_p);
                        let d = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        let ny = mul_shoup_lazy_v(d, w, ws, p);
                        store(&mut a[base..], _mm512_permutex2var_epi64(s, ix.half_lo, ny));
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(s, ix.half_hi, ny),
                        );
                    }
                }
            }
            _ => {
                for g in 0..h {
                    let w = unsafe { splat(tw[ri + g]) };
                    let ws = unsafe { splat(tws[ri + g]) };
                    let j1 = 2 * t * g;
                    let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                    for (cx, cy) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
                        unsafe {
                            let u = load(cx);
                            let v = load(cy);
                            let s = sub_if_ge(_mm512_add_epi64(u, v), two_p);
                            let d = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                            store(cx, s);
                            store(cy, mul_shoup_lazy_v(d, w, ws, p));
                        }
                    }
                }
            }
        }
        ri += h;
        t <<= 1;
        m = h;
    }
    let (inv_n, inv_n_shoup) = table.inv_n_pair();
    let (wn, wns) = unsafe { (splat(inv_n), splat(inv_n_shoup)) };
    for c in a.chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, mul_shoup_v(x, wn, wns, p));
        }
    }
}

/// Forward NTT over the IFMA butterfly. Same stage/permute structure as
/// [`ntt_forward`]; only the Shoup product changes. `tws52` are the
/// table's `⌊w·2^52/p⌋` twiddle companions (TABLE_PAD-padded).
///
/// # Safety
/// Caller must guarantee AVX-512 F+DQ+IFMA and `4p < 2^52`.
#[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
unsafe fn ntt_forward_ifma(table: &NttTable, a: &mut [u64], tws52: &[u64]) {
    let n = table.n();
    let p_val = table.modulus().value();
    let p = unsafe { splat(p_val) };
    let two_p = unsafe { splat(p_val << 1) };
    let tw = table.root_powers();
    let ix = unsafe { stage_idx() };

    let mut t = n;
    let mut m = 1usize;
    while m < n {
        t >>= 1;
        match t {
            _ if t >= LANES => {
                for i in 0..m {
                    let w = unsafe { splat(tw[m + i]) };
                    let ws = unsafe { splat(tws52[m + i]) };
                    let j1 = 2 * i * t;
                    let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                    for (cx, cy) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
                        unsafe {
                            let x = load(cx);
                            let y = load(cy);
                            let u = sub_if_ge(x, two_p);
                            let v = mul_shoup_lazy52_v(y, w, ws, p);
                            store(cx, _mm512_add_epi64(u, v));
                            store(cy, _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v)));
                        }
                    }
                }
            }
            4 => {
                for i in (0..m).step_by(2) {
                    let base = 8 * i;
                    unsafe {
                        // full-width twiddle loads may touch TABLE_PAD
                        let w = _mm512_permutexvar_epi64(ix.w_quad, load(&tw[m + i..]));
                        let ws = _mm512_permutexvar_epi64(ix.w_quad, load(&tws52[m + i..]));
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let x = _mm512_permutex2var_epi64(blk_a, ix.half_lo, blk_b);
                        let y = _mm512_permutex2var_epi64(blk_a, ix.half_hi, blk_b);
                        let u = sub_if_ge(x, two_p);
                        let v = mul_shoup_lazy52_v(y, w, ws, p);
                        let nx = _mm512_add_epi64(u, v);
                        let ny = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        store(
                            &mut a[base..],
                            _mm512_permutex2var_epi64(nx, ix.half_lo, ny),
                        );
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(nx, ix.half_hi, ny),
                        );
                    }
                }
            }
            2 => {
                for i in (0..m).step_by(4) {
                    let base = 4 * i;
                    unsafe {
                        let w = _mm512_permutexvar_epi64(ix.w_pair, load(&tw[m + i..]));
                        let ws = _mm512_permutexvar_epi64(ix.w_pair, load(&tws52[m + i..]));
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let x = _mm512_permutex2var_epi64(blk_a, ix.pair_x, blk_b);
                        let y = _mm512_permutex2var_epi64(blk_a, ix.pair_y, blk_b);
                        let u = sub_if_ge(x, two_p);
                        let v = mul_shoup_lazy52_v(y, w, ws, p);
                        let nx = _mm512_add_epi64(u, v);
                        let ny = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        store(&mut a[base..], _mm512_permutex2var_epi64(nx, ix.pair_a, ny));
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(nx, ix.pair_b, ny),
                        );
                    }
                }
            }
            _ => {
                // t == 1
                for i in (0..m).step_by(8) {
                    let base = 2 * i;
                    unsafe {
                        let w = load(&tw[m + i..]);
                        let ws = load(&tws52[m + i..]);
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let x = _mm512_permutex2var_epi64(blk_a, ix.lace_x, blk_b);
                        let y = _mm512_permutex2var_epi64(blk_a, ix.lace_y, blk_b);
                        let u = sub_if_ge(x, two_p);
                        let v = mul_shoup_lazy52_v(y, w, ws, p);
                        let nx = _mm512_add_epi64(u, v);
                        let ny = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        store(&mut a[base..], _mm512_permutex2var_epi64(nx, ix.lace_a, ny));
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(nx, ix.lace_b, ny),
                        );
                    }
                }
            }
        }
        m <<= 1;
    }
    for c in a.chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, sub_if_ge(sub_if_ge(x, two_p), p));
        }
    }
}

/// Inverse NTT over the IFMA butterfly; see [`ntt_forward_ifma`].
///
/// # Safety
/// Caller must guarantee AVX-512 F+DQ+IFMA and `4p < 2^52`.
#[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
unsafe fn ntt_inverse_ifma(table: &NttTable, a: &mut [u64], tws52: &[u64]) {
    let n = table.n();
    let p_val = table.modulus().value();
    let p = unsafe { splat(p_val) };
    let two_p = unsafe { splat(p_val << 1) };
    let tw = table.inv_root_powers();
    let ix = unsafe { stage_idx() };

    let mut t = 1usize;
    let mut m = n;
    let mut ri = 1usize; // GS twiddles are consumed contiguously
    while m > 1 {
        let h = m >> 1;
        match t {
            1 => {
                for g in (0..h).step_by(8) {
                    let base = 2 * g;
                    unsafe {
                        let w = load(&tw[ri + g..]);
                        let ws = load(&tws52[ri + g..]);
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let u = _mm512_permutex2var_epi64(blk_a, ix.lace_x, blk_b);
                        let v = _mm512_permutex2var_epi64(blk_a, ix.lace_y, blk_b);
                        let s = sub_if_ge(_mm512_add_epi64(u, v), two_p);
                        let d = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        let ny = mul_shoup_lazy52_v(d, w, ws, p);
                        store(&mut a[base..], _mm512_permutex2var_epi64(s, ix.lace_a, ny));
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(s, ix.lace_b, ny),
                        );
                    }
                }
            }
            2 => {
                for g in (0..h).step_by(4) {
                    let base = 4 * g;
                    unsafe {
                        // full-width twiddle loads may touch TABLE_PAD
                        let w = _mm512_permutexvar_epi64(ix.w_pair, load(&tw[ri + g..]));
                        let ws = _mm512_permutexvar_epi64(ix.w_pair, load(&tws52[ri + g..]));
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let u = _mm512_permutex2var_epi64(blk_a, ix.pair_x, blk_b);
                        let v = _mm512_permutex2var_epi64(blk_a, ix.pair_y, blk_b);
                        let s = sub_if_ge(_mm512_add_epi64(u, v), two_p);
                        let d = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        let ny = mul_shoup_lazy52_v(d, w, ws, p);
                        store(&mut a[base..], _mm512_permutex2var_epi64(s, ix.pair_a, ny));
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(s, ix.pair_b, ny),
                        );
                    }
                }
            }
            4 => {
                for g in (0..h).step_by(2) {
                    let base = 8 * g;
                    unsafe {
                        let w = _mm512_permutexvar_epi64(ix.w_quad, load(&tw[ri + g..]));
                        let ws = _mm512_permutexvar_epi64(ix.w_quad, load(&tws52[ri + g..]));
                        let blk_a = load(&a[base..]);
                        let blk_b = load(&a[base + 8..]);
                        let u = _mm512_permutex2var_epi64(blk_a, ix.half_lo, blk_b);
                        let v = _mm512_permutex2var_epi64(blk_a, ix.half_hi, blk_b);
                        let s = sub_if_ge(_mm512_add_epi64(u, v), two_p);
                        let d = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                        let ny = mul_shoup_lazy52_v(d, w, ws, p);
                        store(&mut a[base..], _mm512_permutex2var_epi64(s, ix.half_lo, ny));
                        store(
                            &mut a[base + 8..],
                            _mm512_permutex2var_epi64(s, ix.half_hi, ny),
                        );
                    }
                }
            }
            _ => {
                for g in 0..h {
                    let w = unsafe { splat(tw[ri + g]) };
                    let ws = unsafe { splat(tws52[ri + g]) };
                    let j1 = 2 * t * g;
                    let (lo, hi) = a[j1..j1 + 2 * t].split_at_mut(t);
                    for (cx, cy) in lo.chunks_exact_mut(LANES).zip(hi.chunks_exact_mut(LANES)) {
                        unsafe {
                            let u = load(cx);
                            let v = load(cy);
                            let s = sub_if_ge(_mm512_add_epi64(u, v), two_p);
                            let d = _mm512_add_epi64(u, _mm512_sub_epi64(two_p, v));
                            store(cx, s);
                            store(cy, mul_shoup_lazy52_v(d, w, ws, p));
                        }
                    }
                }
            }
        }
        ri += h;
        t <<= 1;
        m = h;
    }
    // Final scale by N^{-1}, fully reduced: lazy 52-bit product (< 2p)
    // plus one canonical correction — same value as scalar `mul_shoup`.
    let (inv_n, _) = table.inv_n_pair();
    let (wn, wns) = unsafe { (splat(inv_n), splat(table.inv_n_shoup52())) };
    for c in a.chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, sub_if_ge(mul_shoup_lazy52_v(x, wn, wns, p), p));
        }
    }
}

// --- pointwise kernels ------------------------------------------------

/// IFMA eligibility for the dyadic (full-width) products. Beyond the
/// `4p < 2^52` lazy bound this also needs `p >= 2^49`, so the low
/// 52-bit product limb (`< 2^52 <= 8p`) folds into the result with four
/// conditional subtracts. Every 50-bit RNS prime qualifies.
#[inline]
fn dyadic_ifma_ok(p: u64) -> bool {
    ifma_available() && (1u64 << 49..1u64 << 50).contains(&p)
}

/// Canonical `a * b mod p` via 52-bit limbs: split the product as
/// `d1·2^52 + d0`, reduce `d1·2^52` with a Shoup multiply by
/// `c52 = 2^52 mod p`, fold `d0`, and finish with the subtract chain.
/// Requires `a, b < p` and `2^49 <= p < 2^50`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn mul_mod52_v(
    a: __m512i,
    b: __m512i,
    p: __m512i,
    c52: __m512i,
    c52s: __m512i,
    p2: __m512i,
    p4: __m512i,
    p8: __m512i,
) -> __m512i {
    unsafe {
        let zero = _mm512_setzero_si512();
        let d0 = _mm512_madd52lo_epu64(zero, a, b);
        let d1 = _mm512_madd52hi_epu64(zero, a, b);
        // v ≡ d1·2^52 (mod p), v < 2p; s = v + d0 < 2p + 8p = 10p
        let v = mul_shoup_lazy52_v(d1, c52, c52s, p);
        let s = _mm512_add_epi64(v, d0);
        sub_if_ge(sub_if_ge(sub_if_ge(sub_if_ge(s, p8), p4), p2), p)
    }
}

/// Splatted constants for [`mul_mod52_v`].
#[inline(always)]
unsafe fn dyadic52_consts(p_val: u64) -> [__m512i; 6] {
    let c52_val = ((1u128 << 52) % p_val as u128) as u64;
    unsafe {
        [
            splat(p_val),
            splat(c52_val),
            splat(shoup52(c52_val, p_val)),
            splat(p_val << 1),
            splat(p_val << 2),
            splat(p_val << 3),
        ]
    }
}

/// `a[i] = a[i] * b[i] mod p`, AVX-512 IFMA (see [`dyadic_ifma_ok`]).
///
/// # Safety
/// Caller must guarantee AVX-512 F+DQ+IFMA and `2^49 <= p < 2^50`.
#[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
unsafe fn dyadic_mul_assign_ifma(m: &Modulus, a: &mut [u64], b: &[u64]) {
    let [p, c52, c52s, p2, p4, p8] = unsafe { dyadic52_consts(m.value()) };
    let split = a.len() - a.len() % LANES;
    for (ca, cb) in a[..split]
        .chunks_exact_mut(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let x = load(ca);
            let y = load(cb);
            store(ca, mul_mod52_v(x, y, p, c52, c52s, p2, p4, p8));
        }
    }
    scalar::dyadic_mul_assign(m, &mut a[split..], &b[split..]);
}

/// `out[i] = a[i] * b[i] mod p`, AVX-512 IFMA.
///
/// # Safety
/// Caller must guarantee AVX-512 F+DQ+IFMA and `2^49 <= p < 2^50`.
#[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
unsafe fn dyadic_mul_ifma(m: &Modulus, out: &mut [u64], a: &[u64], b: &[u64]) {
    let [p, c52, c52s, p2, p4, p8] = unsafe { dyadic52_consts(m.value()) };
    let split = out.len() - out.len() % LANES;
    for ((co, ca), cb) in out[..split]
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let x = load(ca);
            let y = load(cb);
            store(co, mul_mod52_v(x, y, p, c52, c52s, p2, p4, p8));
        }
    }
    scalar::dyadic_mul(m, &mut out[split..], &a[split..], &b[split..]);
}

/// `acc[i] = (acc[i] + a[i] * b[i]) mod p`, AVX-512 IFMA.
///
/// # Safety
/// Caller must guarantee AVX-512 F+DQ+IFMA and `2^49 <= p < 2^50`.
#[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
unsafe fn dyadic_mul_acc_ifma(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    let [p, c52, c52s, p2, p4, p8] = unsafe { dyadic52_consts(m.value()) };
    let split = acc.len() - acc.len() % LANES;
    for ((cr, ca), cb) in acc[..split]
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let r = load(cr);
            let x = load(ca);
            let y = load(cb);
            let prod = mul_mod52_v(x, y, p, c52, c52s, p2, p4, p8);
            store(cr, sub_if_ge(_mm512_add_epi64(r, prod), p));
        }
    }
    scalar::dyadic_mul_acc(m, &mut acc[split..], &a[split..], &b[split..]);
}

/// `acc[i] = (acc[i] + x[i] * r) mod p`, AVX-512 IFMA: the canonical
/// Shoup product is a lazy 52-bit multiply plus one correction.
///
/// # Safety
/// Caller must guarantee AVX-512 F+DQ+IFMA and `4p < 2^52`.
#[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
unsafe fn fused_mac_shoup_ifma(m: &Modulus, acc: &mut [u64], x: &[u64], r: u64, r_shoup: u64) {
    let p_val = m.value();
    let p = unsafe { splat(p_val) };
    let (w, ws) = unsafe { (splat(r), splat(shoup52(r, p_val))) };
    let split = acc.len() - acc.len() % LANES;
    for (ca, cx) in acc[..split]
        .chunks_exact_mut(LANES)
        .zip(x[..split].chunks_exact(LANES))
    {
        unsafe {
            let a = load(ca);
            let b = load(cx);
            let t = sub_if_ge(mul_shoup_lazy52_v(b, w, ws, p), p);
            store(ca, sub_if_ge(_mm512_add_epi64(a, t), p));
        }
    }
    scalar::fused_mac_shoup(m, &mut acc[split..], &x[split..], r, r_shoup);
}

/// `data[i] = data[i] * s mod p`, AVX-512 IFMA.
///
/// # Safety
/// Caller must guarantee AVX-512 F+DQ+IFMA and `4p < 2^52`.
#[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
unsafe fn mul_scalar_shoup_ifma(m: &Modulus, data: &mut [u64], s: u64, s_shoup: u64) {
    let p_val = m.value();
    let p = unsafe { splat(p_val) };
    let (w, ws) = unsafe { (splat(s), splat(shoup52(s, p_val))) };
    let split = data.len() - data.len() % LANES;
    for c in data[..split].chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, sub_if_ge(mul_shoup_lazy52_v(x, w, ws, p), p));
        }
    }
    scalar::mul_scalar_shoup(m, &mut data[split..], s, s_shoup);
}

/// `a[i] = a[i] * b[i] mod p`, AVX-512.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX-512F and AVX-512DQ.
#[target_feature(enable = "avx512f,avx512dq")]
pub unsafe fn dyadic_mul_assign(m: &Modulus, a: &mut [u64], b: &[u64]) {
    if dyadic_ifma_ok(m.value()) {
        return unsafe { dyadic_mul_assign_ifma(m, a, b) };
    }
    let (p, cr0, cr1) = unsafe { barrett_consts(m) };
    let split = a.len() - a.len() % LANES;
    for (ca, cb) in a[..split]
        .chunks_exact_mut(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let x = load(ca);
            let y = load(cb);
            store(ca, barrett_mul_v(x, y, p, cr0, cr1));
        }
    }
    scalar::dyadic_mul_assign(m, &mut a[split..], &b[split..]);
}

/// `out[i] = a[i] * b[i] mod p`, AVX-512.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX-512F and AVX-512DQ.
#[target_feature(enable = "avx512f,avx512dq")]
pub unsafe fn dyadic_mul(m: &Modulus, out: &mut [u64], a: &[u64], b: &[u64]) {
    if dyadic_ifma_ok(m.value()) {
        return unsafe { dyadic_mul_ifma(m, out, a, b) };
    }
    let (p, cr0, cr1) = unsafe { barrett_consts(m) };
    let split = out.len() - out.len() % LANES;
    for ((co, ca), cb) in out[..split]
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let x = load(ca);
            let y = load(cb);
            store(co, barrett_mul_v(x, y, p, cr0, cr1));
        }
    }
    scalar::dyadic_mul(m, &mut out[split..], &a[split..], &b[split..]);
}

/// `acc[i] = (acc[i] + a[i] * b[i]) mod p`, AVX-512.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX-512F and AVX-512DQ.
#[target_feature(enable = "avx512f,avx512dq")]
pub unsafe fn dyadic_mul_acc(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    if dyadic_ifma_ok(m.value()) {
        return unsafe { dyadic_mul_acc_ifma(m, acc, a, b) };
    }
    let (p, cr0, cr1) = unsafe { barrett_consts(m) };
    let split = acc.len() - acc.len() % LANES;
    for ((cr, ca), cb) in acc[..split]
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        unsafe {
            let r = load(cr);
            let x = load(ca);
            let y = load(cb);
            let prod = barrett_mul_v(x, y, p, cr0, cr1);
            store(cr, sub_if_ge(_mm512_add_epi64(r, prod), p));
        }
    }
    scalar::dyadic_mul_acc(m, &mut acc[split..], &a[split..], &b[split..]);
}

/// `acc[i] = (acc[i] + x[i] * r) mod p` (Shoup-premultiplied), AVX-512.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX-512F and AVX-512DQ.
#[target_feature(enable = "avx512f,avx512dq")]
pub unsafe fn fused_mac_shoup(m: &Modulus, acc: &mut [u64], x: &[u64], r: u64, r_shoup: u64) {
    if ifma_available() && m.value() < crate::ntt::IFMA_MAX_MODULUS {
        return unsafe { fused_mac_shoup_ifma(m, acc, x, r, r_shoup) };
    }
    let p = unsafe { splat(m.value()) };
    let (w, ws) = unsafe { (splat(r), splat(r_shoup)) };
    let split = acc.len() - acc.len() % LANES;
    for (ca, cx) in acc[..split]
        .chunks_exact_mut(LANES)
        .zip(x[..split].chunks_exact(LANES))
    {
        unsafe {
            let a = load(ca);
            let b = load(cx);
            let t = mul_shoup_v(b, w, ws, p);
            store(ca, sub_if_ge(_mm512_add_epi64(a, t), p));
        }
    }
    scalar::fused_mac_shoup(m, &mut acc[split..], &x[split..], r, r_shoup);
}

/// `data[i] = data[i] * s mod p` (Shoup-premultiplied), AVX-512.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX-512F and AVX-512DQ.
#[target_feature(enable = "avx512f,avx512dq")]
pub unsafe fn mul_scalar_shoup(m: &Modulus, data: &mut [u64], s: u64, s_shoup: u64) {
    if ifma_available() && m.value() < crate::ntt::IFMA_MAX_MODULUS {
        return unsafe { mul_scalar_shoup_ifma(m, data, s, s_shoup) };
    }
    let p = unsafe { splat(m.value()) };
    let (w, ws) = unsafe { (splat(s), splat(s_shoup)) };
    let split = data.len() - data.len() % LANES;
    for c in data[..split].chunks_exact_mut(LANES) {
        unsafe {
            let x = load(c);
            store(c, mul_shoup_v(x, w, ws, p));
        }
    }
    scalar::mul_scalar_shoup(m, &mut data[split..], s, s_shoup);
}

/// `dst[i] = src[i] mod p`, AVX-512.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX-512F and AVX-512DQ.
#[target_feature(enable = "avx512f,avx512dq")]
pub unsafe fn barrett_reduce_slice(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    let (p, _, cr1) = unsafe { barrett_consts(m) };
    let split = dst.len() - dst.len() % LANES;
    for (cd, cs) in dst[..split]
        .chunks_exact_mut(LANES)
        .zip(src[..split].chunks_exact(LANES))
    {
        unsafe {
            let x = load(cs);
            store(cd, barrett_reduce1_v(x, p, cr1));
        }
    }
    scalar::barrett_reduce_slice(m, &mut dst[split..], &src[split..]);
}

/// Rescale/mod-down fusion, AVX-512: centered lift (mask-blend between
/// the two scalar branch arms), modular subtract, Shoup multiply.
///
/// # Safety
/// Caller must guarantee the CPU supports AVX-512F and AVX-512DQ.
#[target_feature(enable = "avx512f,avx512dq")]
pub unsafe fn lift_sub_mul_shoup(
    m: &Modulus,
    dst: &mut [u64],
    src: &[u64],
    src_q: u64,
    inv: u64,
    inv_shoup: u64,
) {
    let (p, _, cr1) = unsafe { barrett_consts(m) };
    let half = unsafe { splat(src_q / 2) };
    let qv = unsafe { splat(src_q) };
    let (w, ws) = unsafe { (splat(inv), splat(inv_shoup)) };
    let zero = _mm512_setzero_si512();
    let split = dst.len() - dst.len() % LANES;
    for (cd, cs) in dst[..split]
        .chunks_exact_mut(LANES)
        .zip(src[..split].chunks_exact(LANES))
    {
        unsafe {
            let r = load(cs);
            let hi_mask = _mm512_cmpgt_epu64_mask(r, half);
            // reduce either r or src_q - r, then negate the latter arm
            let arg = _mm512_mask_blend_epi64(hi_mask, r, _mm512_sub_epi64(qv, r));
            let red = barrett_reduce1_v(arg, p, cr1);
            // m.neg(red): p - red, forced to 0 where red == 0
            let nz = !_mm512_cmpeq_epi64_mask(red, zero);
            let neg = _mm512_maskz_mov_epi64(nz, _mm512_sub_epi64(p, red));
            let lifted = _mm512_mask_blend_epi64(hi_mask, red, neg);
            // modular subtract with borrow correction
            let dv = load(cd);
            let borrow = _mm512_cmplt_epu64_mask(dv, lifted);
            let diff = _mm512_sub_epi64(dv, lifted);
            let diff = _mm512_mask_blend_epi64(borrow, diff, _mm512_add_epi64(diff, p));
            store(cd, mul_shoup_v(diff, w, ws, p));
        }
    }
    scalar::lift_sub_mul_shoup(m, &mut dst[split..], &src[split..], src_q, inv, inv_shoup);
}

/// Splat the Barrett constants of `m` into vectors.
#[inline(always)]
unsafe fn barrett_consts(m: &Modulus) -> (__m512i, __m512i, __m512i) {
    let [cr0, cr1] = m.const_ratio();
    unsafe { (splat(m.value()), splat(cr0), splat(cr1)) }
}
