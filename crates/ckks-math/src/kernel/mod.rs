//! Runtime-dispatched modular-arithmetic kernels (scalar / AVX2 /
//! AVX-512 / NEON).
//!
//! Every hot inner loop of the RNS-CKKS stack — NTT butterflies, dyadic
//! (pointwise) Barrett products, fused Shoup multiply-accumulates, the
//! rescale/mod-down lift — funnels through the free functions in this
//! module. Each op has one **scalar reference implementation**
//! ([`scalar`]) and, per architecture, vectorized twins that are
//! **bit-identical** to it at every kernel entry-point boundary: each
//! public kernel ends in a full canonical reduction to `[0, p)`, and
//! that output matches scalar exactly. Intermediate lazy `[0, 4p)`
//! representatives may differ by multiples of p on the AVX-512 IFMA
//! path (its 52-bit Shoup quotient estimate is not the 64-bit one),
//! which is invisible at the reduction boundary — so ciphertexts
//! produced under any backend are limb-for-limb equal (enforced by the
//! parity suites in this module's tests and
//! `tests/tests/kernel_parity.rs`, and by running the he-diff
//! differential oracle under forced backends).
//!
//! ## Dispatch
//!
//! The active backend is resolved once, lazily, from the
//! `HE_KERNEL_BACKEND` environment variable
//! (`scalar|avx2|avx512|neon|auto`; default `auto`) combined with
//! runtime CPU feature detection, and cached in a relaxed atomic. Tests
//! and benchmarks may re-pin it via [`set_backend`] /
//! [`set_backend_auto`] (process-global — serialize tests that do
//! this), or bypass the global entirely through the `*_with` variants
//! that take an explicit [`KernelBackend`].
//!
//! ## Unsafe audit policy
//!
//! The workspace denies `unsafe_code`; the *only* first-party carve-out
//! is the per-architecture submodules below (`avx2`, `avx512`, `neon`),
//! mirroring the vendored-rayon precedent. Rules, checked in review and
//! by the CI Miri job:
//!
//! * intrinsics only — no raw-pointer arithmetic beyond slice-derived
//!   bases with explicitly computed in-bounds offsets;
//! * every `unsafe fn` carries a `# Safety` comment naming its CPU
//!   feature contract; dispatch guarantees it via
//!   [`KernelBackend::is_supported`];
//! * twiddle tables are over-allocated by [`TABLE_PAD`] tail slots so
//!   fixed-width vector loads of twiddles never read past the
//!   allocation (see `NttTable`).

use crate::modring::Modulus;
use crate::ntt::NttTable;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};

pub mod scalar;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // audited SIMD kernel module (see policy above)
mod avx2;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // audited SIMD kernel module (see policy above)
mod avx512;
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)] // audited SIMD kernel module (see policy above)
mod neon;

/// Extra zeroed slots appended to every twiddle table so that vector
/// kernels may always issue a full-width (8-lane) unaligned load
/// starting at any valid twiddle index.
pub const TABLE_PAD: usize = 8;

/// A modular-arithmetic kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum KernelBackend {
    /// Portable u64 reference path (also the he-diff parity baseline).
    Scalar = 0,
    /// x86-64 AVX2: 4×u64 lanes, 32×32-bit multiply decomposition.
    Avx2 = 1,
    /// x86-64 AVX-512 F+DQ: 8×u64 lanes, native 64-bit low multiply;
    /// when IFMA is present, 52-bit `vpmadd52` Shoup kernels take over
    /// for every modulus with `4p < 2^52` (all workspace chain primes).
    Avx512 = 2,
    /// AArch64 NEON: 2×u64 lanes.
    Neon = 3,
}

const UNSET: u8 = u8::MAX;

static ACTIVE: AtomicU8 = AtomicU8::new(UNSET);

impl KernelBackend {
    /// Stable lowercase name (matches the `HE_KERNEL_BACKEND` values).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Avx2 => "avx2",
            Self::Avx512 => "avx512",
            Self::Neon => "neon",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => Self::Scalar,
            1 => Self::Avx2,
            2 => Self::Avx512,
            3 => Self::Neon,
            _ => unreachable!("corrupt kernel backend tag {v}"),
        }
    }

    /// Whether the running CPU can execute this backend.
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            Self::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Self::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Self::Avx512 => {
                is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512dq")
            }
            #[cfg(target_arch = "aarch64")]
            Self::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)] // arms above are cfg-gated
            _ => false,
        }
    }
}

/// Best supported backend on this host.
fn detect_auto() -> KernelBackend {
    for b in [
        KernelBackend::Avx512,
        KernelBackend::Avx2,
        KernelBackend::Neon,
    ] {
        if b.is_supported() {
            return b;
        }
    }
    KernelBackend::Scalar
}

/// Resolves `HE_KERNEL_BACKEND` (or auto-detects when unset/`auto`).
/// Panics on an unknown name or a backend the CPU cannot run, so a
/// forced CI leg fails loudly instead of silently falling back.
fn resolve() -> KernelBackend {
    let Ok(requested) = std::env::var("HE_KERNEL_BACKEND") else {
        return detect_auto();
    };
    let b = match requested.to_ascii_lowercase().as_str() {
        "" | "auto" => return detect_auto(),
        "scalar" => KernelBackend::Scalar,
        "avx2" => KernelBackend::Avx2,
        "avx512" => KernelBackend::Avx512,
        "neon" => KernelBackend::Neon,
        other => panic!("HE_KERNEL_BACKEND={other:?}: expected scalar|avx2|avx512|neon|auto"),
    };
    assert!(
        b.is_supported(),
        "HE_KERNEL_BACKEND={} requested but this CPU does not support it",
        b.name()
    );
    b
}

/// The backend all kernel entry points dispatch to. Resolved lazily on
/// first use; one relaxed load afterwards.
#[inline]
pub fn active_backend() -> KernelBackend {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != UNSET {
        return KernelBackend::from_u8(v);
    }
    let b = resolve();
    ACTIVE.store(b as u8, Ordering::Relaxed);
    b
}

/// Pins the process-global backend (panics if the CPU lacks it).
/// Intended for tests and benchmarks comparing backends in-process;
/// serialize callers — the setting is global.
pub fn set_backend(b: KernelBackend) {
    assert!(
        b.is_supported(),
        "kernel backend {} not supported on this CPU",
        b.name()
    );
    ACTIVE.store(b as u8, Ordering::Relaxed);
}

/// Re-resolves the backend from `HE_KERNEL_BACKEND` / CPU detection
/// (undoes [`set_backend`]).
pub fn set_backend_auto() {
    ACTIVE.store(resolve() as u8, Ordering::Relaxed);
}

/// Every backend the current host can execute ([`KernelBackend::Scalar`]
/// first).
#[must_use]
pub fn available_backends() -> Vec<KernelBackend> {
    [
        KernelBackend::Scalar,
        KernelBackend::Avx2,
        KernelBackend::Avx512,
        KernelBackend::Neon,
    ]
    .into_iter()
    .filter(|b| b.is_supported())
    .collect()
}

// ---------------------------------------------------------------------
// Dispatch entry points
//
// Each op comes as `op(...)` (active backend) plus `op_with(backend, ...)`
// (explicit backend, used by the parity suites and in-process
// benchmarks). The `_with` forms assert hardware support before entering
// the unsafe vector path.
// ---------------------------------------------------------------------

macro_rules! dispatch {
    ($backend:expr, $scalar:expr, $avx2:expr, $avx512:expr, $neon:expr) => {{
        let b = $backend;
        match b {
            KernelBackend::Scalar => $scalar,
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx2 => {
                assert!(b.is_supported(), "avx2 kernels need an AVX2-capable CPU");
                // SAFETY: AVX2 support just asserted.
                #[allow(unsafe_code)]
                unsafe {
                    $avx2
                }
            }
            #[cfg(target_arch = "x86_64")]
            KernelBackend::Avx512 => {
                assert!(
                    b.is_supported(),
                    "avx512 kernels need an AVX-512F+DQ-capable CPU"
                );
                // SAFETY: AVX-512F+DQ support just asserted.
                #[allow(unsafe_code)]
                unsafe {
                    $avx512
                }
            }
            #[cfg(target_arch = "aarch64")]
            KernelBackend::Neon => {
                assert!(b.is_supported(), "neon kernels need NEON support");
                // SAFETY: NEON support just asserted.
                #[allow(unsafe_code)]
                unsafe {
                    $neon
                }
            }
            #[allow(unreachable_patterns)] // non-native backends fall back
            _ => {
                let _ = &b;
                $scalar
            }
        }
    }};
}

/// In-place forward negacyclic NTT of one limb (no op counting — see
/// [`NttTable::forward`] for the counted public entry).
#[inline]
pub fn ntt_forward_with(backend: KernelBackend, table: &NttTable, a: &mut [u64]) {
    assert_eq!(a.len(), table.n(), "limb length != ring degree");
    dispatch!(
        backend,
        scalar::ntt_forward(table, a),
        avx2::ntt_forward(table, a),
        avx512::ntt_forward(table, a),
        neon::ntt_forward(table, a)
    );
}

/// In-place inverse negacyclic NTT of one limb.
#[inline]
pub fn ntt_inverse_with(backend: KernelBackend, table: &NttTable, a: &mut [u64]) {
    assert_eq!(a.len(), table.n(), "limb length != ring degree");
    dispatch!(
        backend,
        scalar::ntt_inverse(table, a),
        avx2::ntt_inverse(table, a),
        avx512::ntt_inverse(table, a),
        neon::ntt_inverse(table, a)
    );
}

/// Batched forward NTT: transforms every limb of a limb-major buffer in
/// one call. `data` holds `tables.len()` limbs of length `tables[i].n()`
/// contiguously (limb `i` at `data[i*n..(i+1)*n]`). The backend is
/// resolved once for the whole batch, limbs are tiled across rayon
/// workers when `parallel` is set, and one `ntt_fwd` op is recorded per
/// limb so trace op counts match the per-limb [`NttTable::forward`]
/// entry exactly.
pub fn ntt_forward_batch(tables: &[&NttTable], data: &mut [u64], parallel: bool) {
    ntt_batch_impl(tables, data, parallel, true);
}

/// Batched inverse NTT over a limb-major buffer (see
/// [`ntt_forward_batch`]).
pub fn ntt_inverse_batch(tables: &[&NttTable], data: &mut [u64], parallel: bool) {
    ntt_batch_impl(tables, data, parallel, false);
}

fn ntt_batch_impl(tables: &[&NttTable], data: &mut [u64], parallel: bool, forward: bool) {
    let k = tables.len();
    if k == 0 {
        assert!(data.is_empty());
        return;
    }
    let n = tables[0].n();
    assert!(tables.iter().all(|t| t.n() == n), "mixed ring degrees");
    assert_eq!(data.len(), k * n, "limb-major buffer shape mismatch");
    if forward {
        he_trace::record_ntt_fwd(k as u64);
    } else {
        he_trace::record_ntt_inv(k as u64);
    }
    let backend = active_backend();
    let transform = |(i, limb): (usize, &mut [u64])| {
        if forward {
            ntt_forward_with(backend, tables[i], limb);
        } else {
            ntt_inverse_with(backend, tables[i], limb);
        }
    };
    if parallel && k > 1 {
        data.par_chunks_mut(n).enumerate().for_each(transform);
    } else {
        data.chunks_mut(n).enumerate().for_each(transform);
    }
}

/// `a[i] = a[i] * b[i] mod p` (full Barrett reduction, canonical output).
#[inline]
pub fn dyadic_mul_assign(m: &Modulus, a: &mut [u64], b: &[u64]) {
    dyadic_mul_assign_with(active_backend(), m, a, b);
}

/// Explicit-backend [`dyadic_mul_assign`].
#[inline]
pub fn dyadic_mul_assign_with(backend: KernelBackend, m: &Modulus, a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len());
    dispatch!(
        backend,
        scalar::dyadic_mul_assign(m, a, b),
        avx2::dyadic_mul_assign(m, a, b),
        avx512::dyadic_mul_assign(m, a, b),
        neon::dyadic_mul_assign(m, a, b)
    );
}

/// `out[i] = a[i] * b[i] mod p`.
#[inline]
pub fn dyadic_mul(m: &Modulus, out: &mut [u64], a: &[u64], b: &[u64]) {
    dyadic_mul_with(active_backend(), m, out, a, b);
}

/// Explicit-backend [`dyadic_mul`].
#[inline]
pub fn dyadic_mul_with(backend: KernelBackend, m: &Modulus, out: &mut [u64], a: &[u64], b: &[u64]) {
    assert_eq!(out.len(), a.len());
    assert_eq!(a.len(), b.len());
    dispatch!(
        backend,
        scalar::dyadic_mul(m, out, a, b),
        avx2::dyadic_mul(m, out, a, b),
        avx512::dyadic_mul(m, out, a, b),
        neon::dyadic_mul(m, out, a, b)
    );
}

/// `acc[i] = (acc[i] + a[i] * b[i]) mod p` — the fused MAC under every
/// key-switch digit accumulation.
#[inline]
pub fn dyadic_mul_acc(m: &Modulus, acc: &mut [u64], a: &[u64], b: &[u64]) {
    dyadic_mul_acc_with(active_backend(), m, acc, a, b);
}

/// Explicit-backend [`dyadic_mul_acc`].
#[inline]
pub fn dyadic_mul_acc_with(
    backend: KernelBackend,
    m: &Modulus,
    acc: &mut [u64],
    a: &[u64],
    b: &[u64],
) {
    assert_eq!(acc.len(), a.len());
    assert_eq!(a.len(), b.len());
    dispatch!(
        backend,
        scalar::dyadic_mul_acc(m, acc, a, b),
        avx2::dyadic_mul_acc(m, acc, a, b),
        avx512::dyadic_mul_acc(m, acc, a, b),
        neon::dyadic_mul_acc(m, acc, a, b)
    );
}

/// `acc[i] = (acc[i] + x[i] * r) mod p` with `r_shoup = m.shoup(r)` —
/// the Shoup-premultiplied MAC under `Evaluator::mul_residues_acc`.
#[inline]
pub fn fused_mac_shoup(m: &Modulus, acc: &mut [u64], x: &[u64], r: u64, r_shoup: u64) {
    fused_mac_shoup_with(active_backend(), m, acc, x, r, r_shoup);
}

/// Explicit-backend [`fused_mac_shoup`].
#[inline]
pub fn fused_mac_shoup_with(
    backend: KernelBackend,
    m: &Modulus,
    acc: &mut [u64],
    x: &[u64],
    r: u64,
    r_shoup: u64,
) {
    assert_eq!(acc.len(), x.len());
    dispatch!(
        backend,
        scalar::fused_mac_shoup(m, acc, x, r, r_shoup),
        avx2::fused_mac_shoup(m, acc, x, r, r_shoup),
        avx512::fused_mac_shoup(m, acc, x, r, r_shoup),
        neon::fused_mac_shoup(m, acc, x, r, r_shoup)
    );
}

/// `data[i] = data[i] * s mod p` with `s_shoup = m.shoup(s)`.
#[inline]
pub fn mul_scalar_shoup(m: &Modulus, data: &mut [u64], s: u64, s_shoup: u64) {
    mul_scalar_shoup_with(active_backend(), m, data, s, s_shoup);
}

/// Explicit-backend [`mul_scalar_shoup`].
#[inline]
pub fn mul_scalar_shoup_with(
    backend: KernelBackend,
    m: &Modulus,
    data: &mut [u64],
    s: u64,
    s_shoup: u64,
) {
    dispatch!(
        backend,
        scalar::mul_scalar_shoup(m, data, s, s_shoup),
        avx2::mul_scalar_shoup(m, data, s, s_shoup),
        avx512::mul_scalar_shoup(m, data, s, s_shoup),
        neon::mul_scalar_shoup(m, data, s, s_shoup)
    );
}

/// `dst[i] = src[i] mod p` (single-word Barrett) — the key-switch digit
/// lift of a residue limb into a foreign modulus.
#[inline]
pub fn barrett_reduce_slice(m: &Modulus, dst: &mut [u64], src: &[u64]) {
    barrett_reduce_slice_with(active_backend(), m, dst, src);
}

/// Explicit-backend [`barrett_reduce_slice`].
#[inline]
pub fn barrett_reduce_slice_with(
    backend: KernelBackend,
    m: &Modulus,
    dst: &mut [u64],
    src: &[u64],
) {
    assert_eq!(dst.len(), src.len());
    dispatch!(
        backend,
        scalar::barrett_reduce_slice(m, dst, src),
        avx2::barrett_reduce_slice(m, dst, src),
        avx512::barrett_reduce_slice(m, dst, src),
        neon::barrett_reduce_slice(m, dst, src)
    );
}

/// The rescale / mod-down inner loop, fused:
/// `dst[i] = (dst[i] - centered_lift(src[i])) * inv mod p`, where
/// `src` are residues mod `src_q` and `inv_shoup = m.shoup(inv)`.
#[inline]
pub fn lift_sub_mul_shoup(
    m: &Modulus,
    dst: &mut [u64],
    src: &[u64],
    src_q: u64,
    inv: u64,
    inv_shoup: u64,
) {
    lift_sub_mul_shoup_with(active_backend(), m, dst, src, src_q, inv, inv_shoup);
}

/// Explicit-backend [`lift_sub_mul_shoup`].
#[inline]
pub fn lift_sub_mul_shoup_with(
    backend: KernelBackend,
    m: &Modulus,
    dst: &mut [u64],
    src: &[u64],
    src_q: u64,
    inv: u64,
    inv_shoup: u64,
) {
    assert_eq!(dst.len(), src.len());
    dispatch!(
        backend,
        scalar::lift_sub_mul_shoup(m, dst, src, src_q, inv, inv_shoup),
        avx2::lift_sub_mul_shoup(m, dst, src, src_q, inv, inv_shoup),
        avx512::lift_sub_mul_shoup(m, dst, src, src_q, inv, inv_shoup),
        neon::lift_sub_mul_shoup(m, dst, src, src_q, inv, inv_shoup)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::gen_ntt_primes_excluding;
    use rand::{Rng, SeedableRng};

    fn moduli_for(n: usize) -> Vec<Modulus> {
        // Span the admissible range: primes inside the AVX-512 IFMA
        // window (30/45-bit), 50-bit (the IFMA dyadic fold gate), and
        // primes just under the 2^61 lazy-reduction bound (generic
        // vector path only).
        let bits: &[u32] = if cfg!(miri) {
            &[30, 50, 61] // keep the interpreted matrix small
        } else {
            &[30, 45, 50, 55, 61]
        };
        bits.iter()
            .map(|&bits| Modulus::new(gen_ntt_primes_excluding(bits, n, 1, &[])[0]))
            .collect()
    }

    fn rand_limb(rng: &mut rand::rngs::StdRng, n: usize, p: u64) -> Vec<u64> {
        (0..n).map(|_| rng.gen_range(0..p)).collect()
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [
            KernelBackend::Scalar,
            KernelBackend::Avx2,
            KernelBackend::Avx512,
            KernelBackend::Neon,
        ] {
            assert_eq!(KernelBackend::from_u8(b as u8), b);
            assert!(!b.name().is_empty());
        }
        assert!(KernelBackend::Scalar.is_supported());
        assert_eq!(available_backends()[0], KernelBackend::Scalar);
    }

    #[test]
    fn ntt_parity_across_backends_and_degrees() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        // Miri interprets every lane op; small rings keep it tractable.
        let degrees: &[u32] = if cfg!(miri) {
            &[4, 5, 6]
        } else {
            &[4, 5, 6, 8, 10]
        };
        for &log_n in degrees {
            let n = 1usize << log_n;
            for m in moduli_for(n) {
                let table = NttTable::new(n, m);
                let base = rand_limb(&mut rng, n, m.value());
                let mut reference = base.clone();
                scalar::ntt_forward(&table, &mut reference);
                for b in available_backends() {
                    let mut got = base.clone();
                    ntt_forward_with(b, &table, &mut got);
                    assert_eq!(got, reference, "forward {} n={n} p={}", b.name(), m.value());
                    ntt_inverse_with(b, &table, &mut got);
                    assert_eq!(got, base, "roundtrip {} n={n} p={}", b.name(), m.value());
                }
            }
        }
    }

    #[test]
    fn pointwise_parity_across_backends() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = if cfg!(miri) { 1 << 6 } else { 1 << 9 };
        for m in moduli_for(n) {
            let p = m.value();
            let a = rand_limb(&mut rng, n, p);
            let b = rand_limb(&mut rng, n, p);
            let acc0 = rand_limb(&mut rng, n, p);
            let s = rng.gen_range(0..p);
            let ss = m.shoup(s);
            let raw: Vec<u64> = (0..n).map(|_| rng.gen()).collect();

            let mut mul_ref = a.clone();
            scalar::dyadic_mul_assign(&m, &mut mul_ref, &b);
            let mut acc_ref = acc0.clone();
            scalar::dyadic_mul_acc(&m, &mut acc_ref, &a, &b);
            let mut mac_ref = acc0.clone();
            scalar::fused_mac_shoup(&m, &mut mac_ref, &a, s, ss);
            let mut scl_ref = a.clone();
            scalar::mul_scalar_shoup(&m, &mut scl_ref, s, ss);
            let mut red_ref = vec![0u64; n];
            scalar::barrett_reduce_slice(&m, &mut red_ref, &raw);

            for be in available_backends() {
                let mut got = a.clone();
                dyadic_mul_assign_with(be, &m, &mut got, &b);
                assert_eq!(got, mul_ref, "dyadic_mul_assign {} p={p}", be.name());

                let mut out = vec![0u64; n];
                dyadic_mul_with(be, &m, &mut out, &a, &b);
                assert_eq!(out, mul_ref, "dyadic_mul {} p={p}", be.name());

                let mut got = acc0.clone();
                dyadic_mul_acc_with(be, &m, &mut got, &a, &b);
                assert_eq!(got, acc_ref, "dyadic_mul_acc {} p={p}", be.name());

                let mut got = acc0.clone();
                fused_mac_shoup_with(be, &m, &mut got, &a, s, ss);
                assert_eq!(got, mac_ref, "fused_mac_shoup {} p={p}", be.name());

                let mut got = a.clone();
                mul_scalar_shoup_with(be, &m, &mut got, s, ss);
                assert_eq!(got, scl_ref, "mul_scalar_shoup {} p={p}", be.name());

                let mut got = vec![0u64; n];
                barrett_reduce_slice_with(be, &m, &mut got, &raw);
                assert_eq!(got, red_ref, "barrett_reduce_slice {} p={p}", be.name());
            }
        }
    }

    #[test]
    fn lift_sub_mul_shoup_parity_hits_boundaries() {
        let n = if cfg!(miri) { 1 << 5 } else { 1 << 8 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for m in moduli_for(n) {
            // Lift from a *different* (larger) modulus, as rescale does.
            let src_q = gen_ntt_primes_excluding(61, n, 2, &[m.value()])[1];
            let half = src_q / 2;
            let mut src = rand_limb(&mut rng, n, src_q);
            // Force the boundary cases: exactly half, half+1, 0, q-1.
            src[0] = half;
            src[1] = half + 1;
            src[2] = 0;
            src[3] = src_q - 1;
            let dst0 = rand_limb(&mut rng, n, m.value());
            let inv = m.reduce(rng.gen_range(1..m.value()));
            let ishoup = m.shoup(inv);

            let mut reference = dst0.clone();
            scalar::lift_sub_mul_shoup(&m, &mut reference, &src, src_q, inv, ishoup);
            for be in available_backends() {
                let mut got = dst0.clone();
                lift_sub_mul_shoup_with(be, &m, &mut got, &src, src_q, inv, ishoup);
                assert_eq!(got, reference, "lift_sub_mul_shoup {}", be.name());
            }
        }
    }

    /// Rough per-backend throughput probe (not a correctness test):
    /// `cargo test -p ckks-math --release timing_probe -- --ignored --nocapture`
    #[test]
    #[ignore = "timing probe, run manually in release"]
    fn timing_probe() {
        use std::time::Instant;
        let n = 1 << 12;
        let m = Modulus::new(gen_ntt_primes_excluding(50, n, 1, &[])[0]);
        let table = NttTable::new(n, m);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let data = rand_limb(&mut rng, n, m.value());
        let b_op = rand_limb(&mut rng, n, m.value());
        const ITERS: usize = 2000;
        for be in available_backends() {
            let mut d = data.clone();
            let t0 = Instant::now();
            for _ in 0..ITERS {
                ntt_forward_with(be, &table, &mut d);
                ntt_inverse_with(be, &table, &mut d);
            }
            let ntt_us = t0.elapsed().as_secs_f64() * 1e6 / (2 * ITERS) as f64;
            let mut a = data.clone();
            let t0 = Instant::now();
            for _ in 0..ITERS {
                dyadic_mul_assign_with(be, &m, &mut a, &b_op);
            }
            let mul_us = t0.elapsed().as_secs_f64() * 1e6 / ITERS as f64;
            let mut acc = data.clone();
            let r = m.reduce(12345);
            let rs = m.shoup(r);
            let t0 = Instant::now();
            for _ in 0..ITERS {
                fused_mac_shoup_with(be, &m, &mut acc, &b_op, r, rs);
            }
            let mac_us = t0.elapsed().as_secs_f64() * 1e6 / ITERS as f64;
            eprintln!(
                "{:>6}: ntt {ntt_us:8.2} us  dyadic_mul {mul_us:8.2} us  fused_mac {mac_us:8.2} us  (n=2^12)",
                be.name()
            );
        }
    }

    #[test]
    fn odd_lengths_hit_vector_tails() {
        // Slice lengths that are not lane multiples exercise the scalar
        // tail of every vector kernel.
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let m = Modulus::new(gen_ntt_primes_excluding(50, 64, 1, &[])[0]);
        let p = m.value();
        for len in [1usize, 3, 7, 9, 15, 17, 31, 33] {
            let a: Vec<u64> = (0..len).map(|_| rng.gen_range(0..p)).collect();
            let b: Vec<u64> = (0..len).map(|_| rng.gen_range(0..p)).collect();
            let mut reference = a.clone();
            scalar::dyadic_mul_assign(&m, &mut reference, &b);
            for be in available_backends() {
                let mut got = a.clone();
                dyadic_mul_assign_with(be, &m, &mut got, &b);
                assert_eq!(got, reference, "len={len} {}", be.name());
            }
        }
    }
}
