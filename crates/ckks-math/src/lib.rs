//! # ckks-math
//!
//! Number-theoretic substrates for the RNS-CKKS homomorphic encryption
//! stack: word-sized modular arithmetic with Barrett/Shoup reductions,
//! negacyclic NTTs with Harvey lazy butterflies, the complex special FFT
//! realizing the CKKS canonical embedding, NTT-friendly prime generation,
//! a small signed bignum, RNS basis machinery with fast base conversion,
//! and the RLWE samplers.
//!
//! Everything here is implemented from scratch; the only external
//! dependencies are `rand` (randomness) and `rayon` (limb parallelism).

// Unsafe code is denied workspace-wide; the sole first-party carve-out
// is `kernel`'s per-architecture SIMD submodules, which opt back in with
// narrowly scoped `#[allow(unsafe_code)]` + per-function safety
// comments (a `forbid` here would override that carve-out, so this
// crate relies on the workspace-level `deny`).

pub mod bigint;
pub mod fft;
pub mod kernel;
pub mod modring;
pub mod ntt;
pub mod poly;
pub mod prime;
pub mod rns;
pub mod sampler;

pub use bigint::BigInt;
pub use fft::{Complex, EmbeddingTable};
pub use kernel::KernelBackend;
pub use modring::Modulus;
pub use ntt::NttTable;
pub use poly::{Form, PolyContext, RnsPoly};
pub use rns::{IntegerRns, RnsBasis};
pub use sampler::Sampler;
