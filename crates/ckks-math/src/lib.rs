//! # ckks-math
//!
//! Number-theoretic substrates for the RNS-CKKS homomorphic encryption
//! stack: word-sized modular arithmetic with Barrett/Shoup reductions,
//! negacyclic NTTs with Harvey lazy butterflies, the complex special FFT
//! realizing the CKKS canonical embedding, NTT-friendly prime generation,
//! a small signed bignum, RNS basis machinery with fast base conversion,
//! and the RLWE samplers.
//!
//! Everything here is implemented from scratch; the only external
//! dependencies are `rand` (randomness) and `rayon` (limb parallelism).

#![forbid(unsafe_code)]

pub mod bigint;
pub mod fft;
pub mod modring;
pub mod ntt;
pub mod poly;
pub mod prime;
pub mod rns;
pub mod sampler;

pub use bigint::BigInt;
pub use fft::{Complex, EmbeddingTable};
pub use modring::Modulus;
pub use ntt::NttTable;
pub use poly::{Form, PolyContext, RnsPoly};
pub use rns::{IntegerRns, RnsBasis};
pub use sampler::Sampler;
