//! Complex arithmetic and the special FFT realizing the CKKS canonical
//! embedding `τ : R[X]/(X^N + 1) → C^{N/2}`.
//!
//! CKKS evaluates plaintext polynomials at the primitive `2N`-th roots of
//! unity `ζ^{5^j}` (one per slot), which both fixes conjugate symmetry and
//! makes slot rotation correspond to the ring automorphism `X ↦ X^5`. The
//! transform below follows the HEAAN layout: `embed` maps coefficients to
//! slot values, `embed_inv` maps slot values back to (real) coefficients.
//! Supports sparse packing with `slots` any power of two `≤ N/2`.

use std::f64::consts::PI;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number over `f64`. Hand-rolled to avoid an external dependency.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Precomputed tables for the canonical-embedding transform of ring degree
/// `n` (so `M = 2n` roots, up to `n/2` slots).
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    n: usize,
    m: usize,
    /// `ksi_pows[k] = e^{2πik/M}`, `k = 0..=M`.
    ksi_pows: Vec<Complex>,
    /// `rot_group[j] = 5^j mod M`.
    rot_group: Vec<usize>,
}

fn array_bit_reverse(vals: &mut [Complex]) {
    let size = vals.len();
    if size <= 1 {
        return;
    }
    let bits = size.trailing_zeros();
    for i in 0..size {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            vals.swap(i, j);
        }
    }
}

impl EmbeddingTable {
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 4);
        let m = 2 * n;
        let mut ksi_pows = Vec::with_capacity(m + 1);
        for k in 0..=m {
            ksi_pows.push(Complex::cis(2.0 * PI * k as f64 / m as f64));
        }
        let nh = n / 2;
        let mut rot_group = Vec::with_capacity(nh);
        let mut five = 1usize;
        for _ in 0..nh {
            rot_group.push(five);
            five = (five * 5) % m;
        }
        Self {
            n,
            m,
            ksi_pows,
            rot_group,
        }
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of slots (`N/2`).
    #[inline]
    pub fn max_slots(&self) -> usize {
        self.n / 2
    }

    /// Forward special FFT: coefficients-domain slot vector → evaluations.
    /// `vals.len()` must be a power of two `≤ N/2`.
    pub fn embed(&self, vals: &mut [Complex]) {
        let size = vals.len();
        assert!(size.is_power_of_two() && size <= self.max_slots());
        array_bit_reverse(vals);
        let mut len = 2;
        while len <= size {
            let lenh = len >> 1;
            let lenq = len << 2;
            let gap = self.m / lenq;
            let mut i = 0;
            while i < size {
                for j in 0..lenh {
                    let idx = (self.rot_group[j] % lenq) * gap;
                    let u = vals[i + j];
                    let v = vals[i + j + lenh] * self.ksi_pows[idx];
                    vals[i + j] = u + v;
                    vals[i + j + lenh] = u - v;
                }
                i += len;
            }
            len <<= 1;
        }
    }

    /// Inverse special FFT: evaluations → coefficient-domain slot vector.
    pub fn embed_inv(&self, vals: &mut [Complex]) {
        let size = vals.len();
        assert!(size.is_power_of_two() && size <= self.max_slots());
        let mut len = size;
        while len >= 2 {
            let lenh = len >> 1;
            let lenq = len << 2;
            let gap = self.m / lenq;
            let mut i = 0;
            while i < size {
                for j in 0..lenh {
                    let idx = (lenq - (self.rot_group[j] % lenq)) * gap;
                    let u = vals[i + j] + vals[i + j + lenh];
                    let v = (vals[i + j] - vals[i + j + lenh]) * self.ksi_pows[idx];
                    vals[i + j] = u;
                    vals[i + j + lenh] = v;
                }
                i += len;
            }
            len >>= 1;
        }
        array_bit_reverse(vals);
        let inv = 1.0 / size as f64;
        for v in vals.iter_mut() {
            *v = v.scale(inv);
        }
    }

    /// Scatters a slot vector of length `slots` into real polynomial
    /// coefficients (length `n`): real parts at stride `n/(2·slots)` from 0,
    /// imaginary parts at the same stride from `n/2`. This is the HEAAN
    /// encode layout; combined with `embed_inv` it realizes `τ^{-1}`.
    pub fn slots_to_coeffs(&self, slot_vals: &[Complex]) -> Vec<f64> {
        let slots = slot_vals.len();
        assert!(slots.is_power_of_two() && slots <= self.max_slots());
        let mut u = slot_vals.to_vec();
        self.embed_inv(&mut u);
        let nh = self.n / 2;
        let gap = nh / slots;
        let mut coeffs = vec![0.0f64; self.n];
        for (i, c) in u.iter().enumerate() {
            coeffs[i * gap] = c.re;
            coeffs[nh + i * gap] = c.im;
        }
        coeffs
    }

    /// Inverse of [`Self::slots_to_coeffs`]: gathers coefficients into slot values
    /// and applies the forward embedding.
    pub fn coeffs_to_slots(&self, coeffs: &[f64], slots: usize) -> Vec<Complex> {
        assert_eq!(coeffs.len(), self.n);
        assert!(slots.is_power_of_two() && slots <= self.max_slots());
        let nh = self.n / 2;
        let gap = nh / slots;
        let mut vals: Vec<Complex> = (0..slots)
            .map(|i| Complex::new(coeffs[i * gap], coeffs[nh + i * gap]))
            .collect();
        self.embed(&mut vals);
        vals
    }

    /// Directly evaluates the real-coefficient polynomial at `ζ^{rot_group[j]}`
    /// for each slot j — the O(N·slots) reference used to validate the FFT.
    pub fn embed_reference(&self, coeffs: &[f64], slots: usize) -> Vec<Complex> {
        assert_eq!(coeffs.len(), self.n);
        (0..slots)
            .map(|j| {
                // When packing `slots < N/2`, slot j evaluates at the root
                // ζ^{gap_exp · rot_group[j]}: the scattered layout is a
                // degree-(n/gap) polynomial in X^gap... handled by using the
                // full-degree evaluation at angle rot_group[j] * (M / (4*slots)) / (M/(2N))...
                // For the full-slot case gap = 1 this is exactly ζ^{5^j}.
                let nh = self.n / 2;
                let gap = nh / slots;
                let root_exp = self.rot_group[j] * gap; // primitive 2N/gap-th structure
                let mut acc = Complex::ZERO;
                for (k, &c) in coeffs.iter().enumerate() {
                    let angle = (root_exp * k) % self.m;
                    acc += self.ksi_pows[angle].scale(c);
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn approx_eq(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn complex_field_axioms() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.25, 3.0);
        assert!(approx_eq(a + b - b, a, 1e-12));
        assert!(approx_eq(a * b / b, a, 1e-12));
        assert!(approx_eq(a * Complex::ONE, a, 0.0));
        assert!(approx_eq(a + (-a), Complex::ZERO, 0.0));
        assert!(approx_eq(a.conj().conj(), a, 0.0));
        assert!((Complex::cis(1.0).abs() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn embed_roundtrip_full_slots() {
        let n = 64;
        let t = EmbeddingTable::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let orig: Vec<Complex> = (0..n / 2)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut v = orig.clone();
        t.embed_inv(&mut v);
        t.embed(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!(approx_eq(*a, *b, 1e-9), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn embed_roundtrip_sparse_slots() {
        let n = 128;
        let t = EmbeddingTable::new(n);
        for slots in [1usize, 2, 8, 32] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(slots as u64);
            let orig: Vec<Complex> = (0..slots)
                .map(|_| Complex::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)))
                .collect();
            let coeffs = t.slots_to_coeffs(&orig);
            let back = t.coeffs_to_slots(&coeffs, slots);
            for (a, b) in back.iter().zip(&orig) {
                assert!(approx_eq(*a, *b, 1e-9), "slots={slots}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn coefficients_are_real_valued_path() {
        // slots_to_coeffs must produce real coefficients whose embedding
        // reproduces the inputs; the imaginary structure lives in the layout.
        let n = 64;
        let t = EmbeddingTable::new(n);
        let vals: Vec<Complex> = (0..n / 2)
            .map(|i| Complex::new(i as f64 * 0.1, -(i as f64) * 0.05))
            .collect();
        let coeffs = t.slots_to_coeffs(&vals);
        assert_eq!(coeffs.len(), n);
        let back = t.coeffs_to_slots(&coeffs, n / 2);
        for (a, b) in back.iter().zip(&vals) {
            assert!(approx_eq(*a, *b, 1e-8));
        }
    }

    #[test]
    fn embedding_matches_direct_evaluation_full() {
        // Full-slot case: slot j must equal m(ζ^{5^j}).
        let n = 32;
        let t = EmbeddingTable::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let via_fft = t.coeffs_to_slots(&coeffs, n / 2);
        let direct = t.embed_reference(&coeffs, n / 2);
        for (a, b) in via_fft.iter().zip(&direct) {
            assert!(approx_eq(*a, *b, 1e-8), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn embedding_is_linear() {
        let n = 64;
        let t = EmbeddingTable::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ea = t.coeffs_to_slots(&a, n / 2);
        let eb = t.coeffs_to_slots(&b, n / 2);
        let es = t.coeffs_to_slots(&sum, n / 2);
        for i in 0..n / 2 {
            assert!(approx_eq(es[i], ea[i] + eb[i], 1e-9));
        }
    }

    #[test]
    fn product_of_polynomials_is_slotwise_product() {
        // The whole point of the canonical embedding: ring multiplication
        // becomes slot-wise multiplication. Verify via naive negacyclic
        // convolution over f64.
        let n = 32;
        let t = EmbeddingTable::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut prod = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..n {
                let k = i + j;
                if k < n {
                    prod[k] += a[i] * b[j];
                } else {
                    prod[k - n] -= a[i] * b[j];
                }
            }
        }
        let ea = t.coeffs_to_slots(&a, n / 2);
        let eb = t.coeffs_to_slots(&b, n / 2);
        let ep = t.coeffs_to_slots(&prod, n / 2);
        for i in 0..n / 2 {
            assert!(approx_eq(ep[i], ea[i] * eb[i], 1e-7), "slot {i}");
        }
    }
}
