//! Residue number system over a basis of word-sized co-prime moduli.
//!
//! Implements exactly the machinery RNS-CKKS needs:
//!
//! * CRT **composition** (`residues → BigInt`) and **decomposition**
//!   (`BigInt → residues`), including centered variants;
//! * **fast base conversion** between bases (Halevi–Polyakov–Shoup style
//!   with a floating-point estimate of the overflow multiple, making the
//!   conversion exact for centered inputs bounded away from `Q/2`);
//! * the scalar precomputations (punctured products and their inverses)
//!   shared by rescaling and key switching.

use crate::bigint::BigInt;
use crate::modring::Modulus;

/// An RNS basis `{q_0, …, q_{k-1}}` of pairwise co-prime word-sized
/// moduli, with CRT precomputations.
#[derive(Debug, Clone)]
pub struct RnsBasis {
    moduli: Vec<Modulus>,
    /// `Q = Π q_i`.
    big_q: BigInt,
    /// `Q_i = Q / q_i`.
    punctured: Vec<BigInt>,
    /// `[Q_i^{-1}]_{q_i}`.
    punctured_inv: Vec<u64>,
}

impl RnsBasis {
    pub fn new(moduli: Vec<Modulus>) -> Self {
        assert!(!moduli.is_empty(), "empty RNS basis");
        // pairwise co-primality (we use primes, so inequality suffices;
        // verify defensively with gcd)
        for i in 0..moduli.len() {
            for j in i + 1..moduli.len() {
                assert!(
                    gcd(moduli[i].value(), moduli[j].value()) == 1,
                    "moduli must be pairwise co-prime"
                );
            }
        }
        let big_q = moduli
            .iter()
            .fold(BigInt::one(), |acc, m| acc.mul_u64(m.value()));
        let punctured: Vec<BigInt> = moduli
            .iter()
            .map(|m| big_q.div_rem(&BigInt::from_u64(m.value())).0)
            .collect();
        let punctured_inv: Vec<u64> = moduli
            .iter()
            .zip(&punctured)
            .map(|(m, qi)| m.inv(qi.rem_u64(m.value())))
            .collect();
        Self {
            moduli,
            big_q,
            punctured,
            punctured_inv,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    #[inline]
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    #[inline]
    pub fn big_q(&self) -> &BigInt {
        &self.big_q
    }

    /// `[（Q/q_i)^{-1}]_{q_i}` scalars.
    #[inline]
    pub fn punctured_inv(&self) -> &[u64] {
        &self.punctured_inv
    }

    /// Decomposes an integer into residues `[x mod q_i]`.
    pub fn decompose(&self, x: &BigInt) -> Vec<u64> {
        self.moduli.iter().map(|m| x.rem_u64(m.value())).collect()
    }

    /// Decomposes a signed 64-bit integer (fast path).
    pub fn decompose_i64(&self, x: i64) -> Vec<u64> {
        self.moduli.iter().map(|m| m.from_i64(x)).collect()
    }

    /// CRT composition to the canonical representative in `[0, Q)`.
    pub fn compose(&self, residues: &[u64]) -> BigInt {
        assert_eq!(residues.len(), self.len());
        let mut acc = BigInt::zero();
        for i in 0..self.len() {
            let t = self.moduli[i].mul(residues[i], self.punctured_inv[i]);
            acc = acc.add(&self.punctured[i].mul_u64(t));
        }
        acc.rem_euclid(&self.big_q)
    }

    /// CRT composition to the centered representative in `(-Q/2, Q/2]`.
    pub fn compose_centered(&self, residues: &[u64]) -> BigInt {
        let r = self.compose(residues);
        let half = self.big_q.shr(1);
        if r.cmp_big(&half) == std::cmp::Ordering::Greater {
            r.sub(&self.big_q)
        } else {
            r
        }
    }

    /// Fast base conversion of a *centered* value `x` (given by residues in
    /// this basis) into residues modulo each modulus of `target`.
    ///
    /// Uses the HPS float estimate: `x = Σ y_i·Q_i − v·Q` with
    /// `y_i = [x·Q_i^{-1}]_{q_i}` and `v = round(Σ y_i / q_i)`; the estimate
    /// is exact whenever `|x| ≲ Q/4` (always true for ciphertext limbs
    /// after centered reduction plus noise margins).
    pub fn convert_to(&self, residues: &[u64], target: &[Modulus]) -> Vec<u64> {
        assert_eq!(residues.len(), self.len());
        let k = self.len();
        // y_i = [x * Q_i^{-1}]_{q_i}, and the rational Σ y_i/q_i whose
        // nearest integer is the overflow count v.
        let mut ys = Vec::with_capacity(k);
        let mut frac = 0.0f64;
        for i in 0..k {
            let y = self.moduli[i].mul(residues[i], self.punctured_inv[i]);
            frac += y as f64 / self.moduli[i].value() as f64;
            ys.push(y);
        }
        let v = frac.round() as u64;
        target
            .iter()
            .map(|p| {
                let mut acc = 0u64;
                for i in 0..k {
                    // Q_i mod p
                    let qi_mod_p = self.punctured[i].rem_u64(p.value());
                    acc = p.add(acc, p.mul(ys[i], qi_mod_p));
                }
                let q_mod_p = self.big_q.rem_u64(p.value());
                p.sub(acc, p.mul(p.reduce(v), q_mod_p))
            })
            .collect()
    }

    /// Returns the sub-basis of the first `k` moduli.
    pub fn prefix(&self, k: usize) -> RnsBasis {
        assert!(k >= 1 && k <= self.len());
        RnsBasis::new(self.moduli[..k].to_vec())
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// RNS arithmetic on plain integer vectors (the paper's *image-domain*
/// decomposition, Fig. 2): quantized tensors are decomposed residue-wise,
/// processed independently per modulus, and recomposed with CRT.
#[derive(Debug, Clone)]
pub struct IntegerRns {
    basis: RnsBasis,
}

impl IntegerRns {
    /// Builds an integer RNS over `k` primes starting near `start`,
    /// checking the dynamic range covers values up to `max_abs`.
    pub fn with_range(k: usize, start: u64, max_abs: &BigInt) -> Self {
        let primes = crate::prime::gen_coprime_moduli(k, start);
        let basis = RnsBasis::new(primes.into_iter().map(Modulus::new).collect());
        let needed = max_abs.mul_u64(2);
        assert!(
            basis.big_q().cmp_big(&needed) == std::cmp::Ordering::Greater,
            "RNS dynamic range too small: Q = {} but need > {}",
            basis.big_q(),
            needed
        );
        Self { basis }
    }

    pub fn from_basis(basis: RnsBasis) -> Self {
        Self { basis }
    }

    #[inline]
    pub fn basis(&self) -> &RnsBasis {
        &self.basis
    }

    /// Decomposes each element of a signed integer vector into `k` residue
    /// vectors (`out[j][i] = x_i mod q_j`).
    pub fn decompose_vec(&self, xs: &[i64]) -> Vec<Vec<u64>> {
        let k = self.basis.len();
        let mut out = vec![Vec::with_capacity(xs.len()); k];
        for &x in xs {
            for (j, m) in self.basis.moduli().iter().enumerate() {
                out[j].push(m.from_i64(x));
            }
        }
        out
    }

    /// Recomposes residue vectors back into centered signed integers.
    /// Panics if any recomposed value does not fit `i64`.
    pub fn compose_vec(&self, residues: &[Vec<u64>]) -> Vec<i64> {
        assert_eq!(residues.len(), self.basis.len());
        let len = residues[0].len();
        assert!(residues.iter().all(|r| r.len() == len));
        (0..len)
            .map(|i| {
                let slice: Vec<u64> = residues.iter().map(|r| r[i]).collect();
                self.basis.compose_centered(&slice).to_i64()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prime::gen_moduli_chain;
    use proptest::prelude::*;

    fn basis3() -> RnsBasis {
        RnsBasis::new(gen_moduli_chain(&[30, 31, 32], 1 << 10))
    }

    #[test]
    fn compose_decompose_roundtrip() {
        let b = basis3();
        for x in [0i64, 1, -1, 123456789, -987654321, i32::MAX as i64] {
            let residues = b.decompose_i64(x);
            let back = b.compose_centered(&residues);
            assert_eq!(back, BigInt::from_i64(x), "x={x}");
        }
    }

    #[test]
    fn compose_is_crt_solution() {
        let b = basis3();
        let residues: Vec<u64> = vec![17, 23, 99];
        let x = b.compose(&residues);
        for (i, m) in b.moduli().iter().enumerate() {
            assert_eq!(x.rem_u64(m.value()), residues[i]);
        }
        assert!(x.cmp_big(b.big_q()) == std::cmp::Ordering::Less);
    }

    #[test]
    fn additive_homomorphism() {
        let b = basis3();
        let x = 1_000_003i64;
        let y = -2_000_005i64;
        let rx = b.decompose_i64(x);
        let ry = b.decompose_i64(y);
        let sum: Vec<u64> = rx
            .iter()
            .zip(&ry)
            .zip(b.moduli())
            .map(|((&a, &bb), m)| m.add(a, bb))
            .collect();
        assert_eq!(b.compose_centered(&sum), BigInt::from_i64(x + y));
    }

    #[test]
    fn multiplicative_homomorphism() {
        let b = basis3();
        let x = 94_321i64;
        let y = -88_777i64;
        let rx = b.decompose_i64(x);
        let ry = b.decompose_i64(y);
        let prod: Vec<u64> = rx
            .iter()
            .zip(&ry)
            .zip(b.moduli())
            .map(|((&a, &bb), m)| m.mul(a, bb))
            .collect();
        assert_eq!(b.compose_centered(&prod), BigInt::from_i64(x * y));
    }

    #[test]
    fn base_conversion_exact_for_small_values() {
        let b = basis3();
        let target = gen_moduli_chain(&[40, 41], 1 << 10);
        for x in [0i64, 5, -5, 1 << 40, -(1 << 40), 777_777_777] {
            let residues = b.decompose_i64(x);
            let converted = b.convert_to(&residues, &target);
            for (c, m) in converted.iter().zip(&target) {
                assert_eq!(*c, m.from_i64(x), "x={x} target={}", m.value());
            }
        }
    }

    #[test]
    fn prefix_basis_consistent() {
        let b = basis3();
        let p = b.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.moduli()[0], b.moduli()[0]);
        let x = 424_242i64;
        assert_eq!(p.compose_centered(&p.decompose_i64(x)), BigInt::from_i64(x));
    }

    #[test]
    fn integer_rns_vector_roundtrip() {
        let max = BigInt::from_u64(1 << 40);
        let r = IntegerRns::with_range(4, 1 << 20, &max);
        let xs: Vec<i64> = vec![0, 255, -255, 123_456, -654_321, (1 << 39)];
        let planes = r.decompose_vec(&xs);
        assert_eq!(planes.len(), 4);
        let back = r.compose_vec(&planes);
        assert_eq!(back, xs);
    }

    #[test]
    #[should_panic]
    fn integer_rns_range_check() {
        // 2 tiny primes cannot cover 2^40
        let max = BigInt::from_u64(1 << 40);
        let _ = IntegerRns::with_range(2, 3, &max);
    }

    #[test]
    #[should_panic]
    fn rejects_non_coprime() {
        let _ = RnsBasis::new(vec![Modulus::new(6), Modulus::new(9)]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(x in any::<i32>()) {
            let b = basis3();
            let back = b.compose_centered(&b.decompose_i64(x as i64));
            prop_assert_eq!(back, BigInt::from_i64(x as i64));
        }

        #[test]
        fn prop_ring_homomorphism(x in -1_000_000i64..1_000_000, y in -1_000_000i64..1_000_000) {
            let b = basis3();
            let rx = b.decompose_i64(x);
            let ry = b.decompose_i64(y);
            let prod: Vec<u64> = rx.iter().zip(&ry).zip(b.moduli())
                .map(|((&a, &bb), m)| m.mul(a, bb)).collect();
            prop_assert_eq!(b.compose_centered(&prod), BigInt::from_i64(x * y));
        }

        #[test]
        fn prop_base_conversion(x in -1_000_000_000i64..1_000_000_000) {
            let b = basis3();
            let target = gen_moduli_chain(&[45], 1 << 10);
            let conv = b.convert_to(&b.decompose_i64(x), &target);
            prop_assert_eq!(conv[0], target[0].from_i64(x));
        }
    }
}
