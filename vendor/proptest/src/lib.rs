//! Offline stand-in for `proptest`, covering the API surface this
//! workspace uses: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `any::<T>()`, numeric range strategies,
//! `collection::vec`, tuple strategies, `prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Each test case draws values from an RNG seeded deterministically from
//! the test's module path and case index, so failures are reproducible
//! run-to-run. Unlike real proptest there is **no shrinking**: a failing
//! case reports the case index and panics with the raw assertion.

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (`ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // real proptest defaults to 256; 32 keeps the heavier CKKS
            // properties affordable on small CI hosts while still
            // exercising many random points
            Self { cases: 32 }
        }
    }

    /// Deterministic per-case RNG (xoshiro256++ seeded by FNV-1a of the
    /// test name and the case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= case as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)`, `bound > 0`.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            // 128-bit multiply-shift over a 64-bit draw is enough for the
            // spans these tests use
            (self.next_u64() as u128).wrapping_mul(bound) >> 64
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a full-domain default strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // finite floats with a broad exponent spread
            let mag = rng.unit_f64() * 2f64.powi((rng.below(64) as i32) - 32);
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec()`]: a fixed `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u128;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when the assumption fails (expands to
/// `continue` inside the per-case loop generated by [`proptest!`]).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($(#[test] $(#[$meta:meta])* fn $name:ident ($($args:tt)*) $body:block)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::Config::default())
            $(#[test] $(#[$meta])* fn $name ($($args)*) $body)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                #[allow(clippy::reversed_empty_ranges)]
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("bounds", 0);
        for _ in 0..200 {
            let x = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&x));
            let y = (-10i64..-2).generate(&mut rng);
            assert!((-10..-2).contains(&y));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let v = crate::collection::vec(0u32..4, 0..5).generate(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|&e| e < 4));
        }
    }

    #[test]
    fn determinism_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("det", 3);
        let mut b = crate::test_runner::TestRng::for_case("det", 3);
        let s = crate::collection::vec(any::<u64>(), 8);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_generates_cases(x in 0u64..100, v in crate::collection::vec(-1.0f64..1.0, 4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 4);
            prop_assume!(x != 1000); // never skips, exercises the macro
        }

        #[test]
        fn tuples_and_prop_map(pair in (0u32..10, any::<bool>()).prop_map(|(n, b)| (n * 2, b))) {
            prop_assert!(pair.0 % 2 == 0 && pair.0 < 20);
        }
    }
}
