//! Offline stand-in for the `bytes` crate. `Bytes` is a Vec with a read
//! cursor consumed from the front; `BytesMut` is a growable Vec. Only the
//! little-endian `Buf`/`BufMut` accessors used by `ckks::serialize` are
//! provided. Semantics match `bytes` for in-bounds access; out-of-bounds
//! reads panic exactly like the real crate, so callers must `remaining()`
//! -check first (which `ckks::serialize` does).

/// Read-side cursor operations.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side append operations.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An immutable byte buffer with a front-consuming read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f64_le(-0.125);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), -0.125);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn cursor_consumes_from_front() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        b.advance(2);
        assert_eq!(&b[..], &[3, 4]);
        assert_eq!(b.to_vec(), vec![3, 4]);
        assert_eq!(b.len(), 2);
    }
}
