//! Offline stand-in for `rayon`. The workspace only uses slice-level
//! data parallelism (`par_iter`, `par_iter_mut`, `par_chunks_mut`) plus
//! `current_num_threads`; here every parallel iterator degrades to the
//! corresponding sequential `std` iterator, which is semantically
//! identical (rayon itself degrades to this on a 1-thread pool — and the
//! execution simulator in `cnn-he::exec` models multi-core wall-clock
//! from sequential measurements anyway).

/// Number of worker threads a real rayon pool would use on this host.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod iter {
    /// `par_iter` / `par_chunks` over shared slices.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` over mutable slices.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }

    /// `into_par_iter` for owned collections and ranges.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_methods_match_sequential() {
        let v: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());

        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w[0], 1);
        assert_eq!(w[99], 100);

        let mut c = vec![0u32; 10];
        c.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(c, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);

        let squares: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, [0, 1, 4, 9, 16]);
        assert!(super::current_num_threads() >= 1);
    }
}
