//! Offline stand-in for `rayon` with **real** data parallelism.
//!
//! The workspace uses slice-level parallel iteration (`par_iter`,
//! `par_iter_mut`, `par_chunks_mut`), range fan-out (`into_par_iter`),
//! `join`, scoped thread pools (`ThreadPoolBuilder`), and
//! `current_num_threads`. Unlike the original sequential shim, every
//! terminal operation here partitions the index space into contiguous
//! chunks and runs them on `std::thread::scope` threads, so unit-level
//! layer parallelism in `cnn-he` gets genuine multi-core execution.
//!
//! Semantics match rayon where it matters:
//! * `RAYON_NUM_THREADS` caps the worker count (read once, like rayon's
//!   global pool); otherwise `available_parallelism` decides.
//! * `ThreadPool::install` scopes a different worker count over a
//!   closure (rayon pins work to its pool; we scope a thread-local
//!   override, which is equivalent for the fork-join patterns used
//!   here).
//! * Item order is preserved: `collect` writes item `i` to slot `i`
//!   regardless of which worker produced it, so parallel results are
//!   bit-identical to sequential ones.
//!
//! There is no work stealing: each worker gets one contiguous chunk.
//! For the coarse, uniform units this workspace parallelizes (one
//! ciphertext MAC chain or NTT limb per item) static partitioning is
//! within a few percent of a stealing scheduler, and it keeps the shim
//! small enough to audit.

// The only crate in the workspace allowed to use `unsafe`: the
// uninitialized-collect path writes each produced item straight into
// its output slot from the worker that computed it, which needs raw
// pointer writes plus Send/Sync assertions on the shared base pointer.
// Everything is bounded by the partition (disjoint index chunks), and
// `set_len` runs only after every worker has joined.
#![allow(unsafe_code)]

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::OnceLock;

/// `RAYON_NUM_THREADS`, read once (rayon also latches it at pool
/// construction).
fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

fn default_threads() -> usize {
    env_threads()
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

thread_local! {
    /// Worker count scoped by `ThreadPool::install` on the calling thread.
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations issued from this thread
/// will use.
pub fn current_num_threads() -> usize {
    POOL_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(default_threads)
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (building the
/// stand-in pool cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirror of `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` (the default) means "use the global default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            n: if self.num_threads == 0 {
                default_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A virtual pool: a worker-count override installed for the duration of
/// a closure. Threads are spawned per parallel call (scoped), not kept
/// resident — acceptable for the coarse-grained fork-joins used here.
#[derive(Debug)]
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.n
    }

    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0;
                POOL_OVERRIDE.with(|c| c.set(prev));
            }
        }
        let _guard = Restore(POOL_OVERRIDE.with(|c| c.replace(Some(self.n))));
        f()
    }
}

/// Runs both closures, in parallel when more than one worker is allowed.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() > 1 {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon::join closure panicked"))
        })
    } else {
        (a(), b())
    }
}

/// Splits `0..len` into one contiguous chunk per worker and runs `work`
/// on scoped threads (first chunk inline on the caller). Degrades to a
/// plain loop when one worker suffices.
fn run_partitioned<F: Fn(Range<usize>) + Sync>(len: usize, work: F) {
    if len == 0 {
        return;
    }
    let threads = current_num_threads().min(len).max(1);
    if threads <= 1 {
        work(0..len);
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|s| {
        let work = &work;
        let mut start = chunk; // chunk 0 runs inline below
        while start < len {
            let end = (start + chunk).min(len);
            s.spawn(move || work(start..end));
            start = end;
        }
        work(0..chunk.min(len));
    });
}

pub mod iter {
    use super::{run_partitioned, PhantomData, Range};

    /// Random-access item source driving the parallel executor. Every
    /// adapter and terminal in this module goes through it.
    ///
    /// # Safety contract
    ///
    /// Terminal operations call `produce(i)` **at most once per index**,
    /// only for `i < len()`, possibly from multiple threads. Producers
    /// handing out `&mut` items or moving values out rely on this for
    /// aliasing/double-read safety.
    pub trait Producer: Sync + Sized {
        type Item: Send;
        fn len(&self) -> usize;
        fn is_empty(&self) -> bool {
            self.len() == 0
        }
        /// # Safety
        /// `i < self.len()` and each index is produced at most once.
        unsafe fn produce(&self, i: usize) -> Self::Item;
    }

    // -- sources ----------------------------------------------------

    /// `par_iter` over a shared slice.
    pub struct SliceProducer<'a, T>(&'a [T]);

    impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
        type Item = &'a T;
        fn len(&self) -> usize {
            self.0.len()
        }
        unsafe fn produce(&self, i: usize) -> &'a T {
            self.0.get_unchecked(i)
        }
    }

    /// `par_chunks` over a shared slice.
    pub struct ChunksProducer<'a, T> {
        slice: &'a [T],
        size: usize,
    }

    impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
        type Item = &'a [T];
        fn len(&self) -> usize {
            self.slice.len().div_ceil(self.size)
        }
        unsafe fn produce(&self, i: usize) -> &'a [T] {
            let start = i * self.size;
            &self.slice[start..(start + self.size).min(self.slice.len())]
        }
    }

    /// `par_iter_mut` over a mutable slice: disjoint `&mut` per index.
    pub struct SliceMutProducer<'a, T> {
        ptr: *mut T,
        len: usize,
        _marker: PhantomData<&'a mut T>,
    }

    unsafe impl<T: Send> Sync for SliceMutProducer<'_, T> {}

    impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
        type Item = &'a mut T;
        fn len(&self) -> usize {
            self.len
        }
        unsafe fn produce(&self, i: usize) -> &'a mut T {
            &mut *self.ptr.add(i)
        }
    }

    /// `par_chunks_mut`: disjoint `&mut [T]` windows.
    pub struct ChunksMutProducer<'a, T> {
        ptr: *mut T,
        len: usize,
        size: usize,
        _marker: PhantomData<&'a mut T>,
    }

    unsafe impl<T: Send> Sync for ChunksMutProducer<'_, T> {}

    impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
        type Item = &'a mut [T];
        fn len(&self) -> usize {
            self.len.div_ceil(self.size)
        }
        unsafe fn produce(&self, i: usize) -> &'a mut [T] {
            let start = i * self.size;
            let end = (start + self.size).min(self.len);
            std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
        }
    }

    /// `(a..b).into_par_iter()`.
    pub struct RangeProducer {
        start: usize,
        len: usize,
    }

    impl Producer for RangeProducer {
        type Item = usize;
        fn len(&self) -> usize {
            self.len
        }
        unsafe fn produce(&self, i: usize) -> usize {
            self.start + i
        }
    }

    // -- adapters ---------------------------------------------------

    pub struct Map<P, F> {
        p: P,
        f: F,
    }

    impl<P: Producer, R: Send, F> Producer for Map<P, F>
    where
        F: Fn(P::Item) -> R + Sync,
    {
        type Item = R;
        fn len(&self) -> usize {
            self.p.len()
        }
        unsafe fn produce(&self, i: usize) -> R {
            (self.f)(self.p.produce(i))
        }
    }

    pub struct Zip<A, B> {
        a: A,
        b: B,
    }

    impl<A: Producer, B: Producer> Producer for Zip<A, B> {
        type Item = (A::Item, B::Item);
        fn len(&self) -> usize {
            self.a.len().min(self.b.len())
        }
        unsafe fn produce(&self, i: usize) -> Self::Item {
            (self.a.produce(i), self.b.produce(i))
        }
    }

    pub struct Enumerate<P> {
        p: P,
    }

    impl<P: Producer> Producer for Enumerate<P> {
        type Item = (usize, P::Item);
        fn len(&self) -> usize {
            self.p.len()
        }
        unsafe fn produce(&self, i: usize) -> Self::Item {
            (i, self.p.produce(i))
        }
    }

    // -- terminals / combinator surface -----------------------------

    /// The user-facing combinator trait (rayon's `ParallelIterator` +
    /// `IndexedParallelIterator`, collapsed).
    pub trait ParallelIterator: Producer {
        fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
            Map { p: self, f }
        }

        fn zip<B: Producer>(self, other: B) -> Zip<Self, B> {
            Zip { a: self, b: other }
        }

        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { p: self }
        }

        fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
            let p = &self;
            run_partitioned(self.len(), |range| {
                for i in range {
                    // SAFETY: ranges from run_partitioned are disjoint
                    // and in-bounds.
                    f(unsafe { p.produce(i) });
                }
            });
        }

        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
            C::from_par(self)
        }
    }

    impl<P: Producer> ParallelIterator for P {}

    /// Order-preserving parallel collect target.
    pub trait FromParallelIterator<T: Send>: Sized {
        fn from_par<P: Producer<Item = T>>(p: P) -> Self;
    }

    struct SendPtr<T>(*mut T);
    impl<T> SendPtr<T> {
        /// Accessor so closures capture the `Sync` wrapper, not the raw
        /// pointer field (2021 disjoint capture would grab `.0`, which
        /// is `!Sync`).
        fn ptr(&self) -> *mut T {
            self.0
        }
    }
    impl<T> Clone for SendPtr<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for SendPtr<T> {}
    unsafe impl<T: Send> Sync for SendPtr<T> {}
    unsafe impl<T: Send> Send for SendPtr<T> {}

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par<P: Producer<Item = T>>(p: P) -> Self {
            let len = p.len();
            let mut out: Vec<T> = Vec::with_capacity(len);
            let base = SendPtr(out.as_mut_ptr());
            {
                let p = &p;
                run_partitioned(len, |range| {
                    for i in range {
                        // SAFETY: slot i is written exactly once (ranges
                        // are disjoint), inside the reserved capacity.
                        unsafe { base.ptr().add(i).write(p.produce(i)) };
                    }
                });
            }
            // SAFETY: all len slots initialized above. (On panic the
            // scope unwinds before this point and written items leak,
            // which is safe.)
            unsafe { out.set_len(len) };
            out
        }
    }

    /// `par_iter` / `par_chunks` over shared slices.
    pub trait ParallelSlice<T: Sync> {
        fn par_iter(&self) -> SliceProducer<'_, T>;
        fn par_chunks(&self, size: usize) -> ChunksProducer<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> SliceProducer<'_, T> {
            SliceProducer(self)
        }

        fn par_chunks(&self, size: usize) -> ChunksProducer<'_, T> {
            assert!(size > 0, "chunk size must be non-zero");
            ChunksProducer { slice: self, size }
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` over mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_iter_mut(&mut self) -> SliceMutProducer<'_, T>;
        fn par_chunks_mut(&mut self, size: usize) -> ChunksMutProducer<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> SliceMutProducer<'_, T> {
            SliceMutProducer {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                _marker: PhantomData,
            }
        }

        fn par_chunks_mut(&mut self, size: usize) -> ChunksMutProducer<'_, T> {
            assert!(size > 0, "chunk size must be non-zero");
            ChunksMutProducer {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                size,
                _marker: PhantomData,
            }
        }
    }

    /// `into_par_iter` for index ranges (the fan-out primitive the
    /// encrypted layers use for unit-level parallelism).
    pub trait IntoParallelIterator {
        type Item: Send;
        type Iter: Producer<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Item = usize;
        type Iter = RangeProducer;
        fn into_par_iter(self) -> RangeProducer {
            RangeProducer {
                start: self.start,
                len: self.end.saturating_sub(self.start),
            }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_methods_match_sequential() {
        let v: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());

        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w[0], 1);
        assert_eq!(w[99], 100);

        let mut c = vec![0u32; 10];
        c.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as u32;
            }
        });
        assert_eq!(c, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);

        let squares: Vec<usize> = (0usize..5).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, [0, 1, 4, 9, 16]);
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn zip_and_enumerate_preserve_order() {
        let a: Vec<u64> = (0..37).collect();
        let b: Vec<u64> = (0..37).map(|x| x * 10).collect();
        let sums: Vec<u64> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert_eq!(sums, (0..37).map(|x| x * 11).collect::<Vec<_>>());

        let tagged: Vec<(usize, u64)> = a.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        for (i, (j, x)) in tagged.iter().enumerate() {
            assert_eq!(i, *j);
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let outside = super::current_num_threads();
        let inside = pool.install(super::current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(super::current_num_threads(), outside);
    }

    #[test]
    fn pool_runs_work_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let ids = Mutex::new(HashSet::new());
        let out: Vec<usize> = pool.install(|| {
            (0usize..64)
                .into_par_iter()
                .map(|i| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    i * 3
                })
                .collect()
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
        // 4 workers requested; at least 2 distinct threads must have run
        // (the caller counts as one).
        assert!(ids.lock().unwrap().len() >= 2, "work never left one thread");
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }
}
