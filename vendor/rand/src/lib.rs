//! Offline stand-in for the `rand` crate, implementing exactly the API
//! surface this workspace uses: `rngs::StdRng`, the `Rng` / `RngCore` /
//! `SeedableRng` traits, `gen`, `gen_range`, and `seq::SliceRandom`.
//!
//! The backend is xoshiro256++ seeded through SplitMix64 — deterministic
//! under a fixed seed, which is all the workspace requires (its own
//! cryptographic sampling lives in `ckks-math::sampler`, keyed off
//! `next_u64`). This is **not** a CSPRNG and must not be promoted to one.

use std::ops::Range;

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
    fn from_entropy() -> Self;
}

/// Types that `Rng::gen` can produce (stands in for
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u8 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits in [0, 1)
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that `Rng::gen_range` can sample from (stands in for
/// `SampleRange<T>`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // multiply-shift bounded sampling; bias is < 2^-64, far
                // below anything these non-crypto call sites can observe
                let r = rng.next_u64() as u128;
                (self.start as i128 + (r * span >> 64) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let r = rng.next_u64() as u128;
                (s as i128 + (r * span >> 64) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::random(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range in gen_range");
                // for floats the inclusive upper bound is measure-zero;
                // sampling the half-open span is indistinguishable here
                let u = <$t as Standard>::random(rng);
                s + u * (e - s)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing RNG methods (subset of `rand::Rng`), blanket-implemented
/// for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }

        fn from_entropy() -> Self {
            use std::time::{SystemTime, UNIX_EPOCH};
            let t = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0x5EED, |d| d.as_nanos() as u64);
            let addr = &t as *const _ as u64;
            Self::seed_from_u64(t ^ addr.rotate_left(32))
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom`: Fisher–Yates shuffle.
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen_range(-2.0..3.0);
            let y: f64 = b.gen_range(-2.0..3.0);
            assert_eq!(x, y);
            assert!((-2.0..3.0).contains(&x));
            let u = a.gen_range(5u64..17);
            let _ = b.gen_range(5u64..17);
            assert!((5..17).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, s,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn gen_bool_and_floats_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.gen::<bool>() {
                trues += 1;
            }
            let f: f32 = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
        }
        assert!((300..700).contains(&trues));
    }
}
