//! Offline stand-in for `criterion`. Implements the subset the bench
//! crate uses — `criterion_group!` / `criterion_main!`, `Criterion`,
//! benchmark groups, `iter`, `iter_batched`, `BenchmarkId` — with a
//! simple fixed-iteration timer instead of criterion's statistical
//! engine. Good enough to keep the bench targets compiling and runnable;
//! numbers are indicative, not rigorous.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` sizes its batches. Ignored by the stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The per-benchmark measurement driver passed to closures as `b`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            std_black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // one warm-up pass, then `sample_size` timed iterations
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut b = Bencher {
        iters: sample_size.max(1) as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / b.iters as f64;
    println!("bench {label:<50} {:>12.6} ms/iter", mean * 1e3);
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("counting", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::LargeInput);
        });
        g.finish();
        assert!(count >= 3, "routine ran {count} times");
    }
}
