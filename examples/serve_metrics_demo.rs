//! Live-metrics demo: scrape a running serving engine mid-flight and
//! prove the numbers agree with the engine's own final report.
//!
//! ```text
//! cargo run --release -p examples --bin serve_metrics_demo
//! ```
//!
//! The demo runs one traced inference (populating the process-global
//! per-layer noise-headroom gauges), starts an engine with the
//! `/metrics` endpoint and the JSONL event log enabled, fires waves of
//! concurrent clients while a scraper thread hammers the endpoint, and
//! then — at quiescence — cross-checks the last scrape against three
//! independent sources of truth:
//!
//! 1. the engine's [`he_serve::ServeReport`] (request/batch counters,
//!    queue-wait sample counts),
//! 2. the process-global he-trace [`he_trace::OpSnapshot`] (the
//!    `he_ops_total` bridge must agree exactly at quiescence),
//! 3. the [`cnn_he::InferenceTrace`] (per-layer headroom gauges carry
//!    the traced values bit-for-bit).
//!
//! Every mid-run scrape must parse under the strict exposition parser,
//! and every event-log line must survive a parse → re-serialize
//! round-trip. CI runs this binary as the metrics acceptance check and
//! uploads the final scrape + event log as artifacts.

#![forbid(unsafe_code)]

use bench::smoke::mini_cnn1;
use cnn_he::CnnHePipeline;
use he_serve::{ServeConfig, ServeEngine};
use he_trace::OpSnapshot;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const WAVES: usize = 3;
const CLIENTS_PER_WAVE: usize = 6;

fn image(i: usize) -> Vec<f32> {
    (0..64)
        .map(|p| (((p * 7 + i * 13) % 31) as f32) / 31.0)
        .collect()
}

/// One blocking HTTP GET; returns the response body.
fn get(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect to metrics endpoint");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: demo\r\n\r\n").expect("send request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    let (head, body) = out.split_once("\r\n\r\n").expect("http response framing");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    body.to_string()
}

fn main() {
    // ---- one traced inference exports the per-layer noise gauges
    let mut traced_pipe = CnnHePipeline::new(mini_cnn1(31), 1 << 10, 31);
    let img0 = image(0);
    let (_, trace) = traced_pipe.traced_infer(&[&img0]);
    let last_layer = trace.layers.last().expect("traced layers");
    println!(
        "traced inference: {} layers, final headroom {:.2} bits",
        trace.layers.len(),
        last_layer.headroom_bits
    );

    // ---- engine with live endpoint + event log
    let cfg = ServeConfig {
        max_batch: 8,
        max_linger: Duration::from_millis(100),
        queue_capacity: 64,
        workers: 1,
        default_deadline: Some(Duration::from_secs(30)),
        metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
        event_log_capacity: 4096,
        ..Default::default()
    };
    let engine = ServeEngine::start(cfg, || CnnHePipeline::new(mini_cnn1(31), 1 << 10, 31))
        .expect("demo network passes admission");
    let addr = engine.metrics_addr().expect("metrics endpoint running");
    assert_eq!(get(addr, "/health"), "ok\n");
    println!("metrics endpoint live at http://{addr}/metrics");

    // ---- waves of concurrent clients, scraped while they run
    let done = AtomicBool::new(false);
    let mut mid_run_scrapes = Vec::new();
    std::thread::scope(|s| {
        let scraper = s.spawn(|| {
            let mut bodies = Vec::new();
            while !done.load(Ordering::Relaxed) {
                bodies.push(get(addr, "/metrics"));
                std::thread::sleep(Duration::from_millis(25));
            }
            bodies
        });
        for wave in 0..WAVES {
            let joins: Vec<_> = (0..CLIENTS_PER_WAVE)
                .map(|i| {
                    let engine = &engine;
                    s.spawn(move || {
                        engine
                            .submit(image(wave * CLIENTS_PER_WAVE + i))
                            .expect("queued")
                            .wait()
                            .expect("served")
                    })
                })
                .collect();
            for j in joins {
                let r = j.join().expect("client thread");
                assert!(r.batch_size >= 1);
            }
        }
        done.store(true, Ordering::Relaxed);
        mid_run_scrapes = scraper.join().expect("scraper thread");
    });
    println!("{} mid-run scrapes captured", mid_run_scrapes.len());
    assert!(!mid_run_scrapes.is_empty(), "scraper never ran");
    for (i, body) in mid_run_scrapes.iter().enumerate() {
        let expo = he_metrics::expo::parse(body)
            .unwrap_or_else(|e| panic!("mid-run scrape {i} does not parse: {e}"));
        for family in [
            "he_serve_queue_depth",
            "he_serve_batch_size",
            "he_serve_deadline_slack_seconds",
            "he_layer_noise_headroom_bits",
            "he_kernel_backend_info",
        ] {
            assert!(expo.has_series(family), "scrape {i} missing {family}");
        }
    }

    // ---- quiescent cross-check: scrape vs report vs trace snapshots
    let report = engine.report();
    let final_scrape = get(addr, "/metrics");
    let expo = he_metrics::expo::parse(&final_scrape).expect("final scrape parses");
    let count = |name: &str, labels: &[(&str, &str)]| {
        expo.value(name, labels)
            .unwrap_or_else(|| panic!("missing series {name}{labels:?}"))
    };
    assert_eq!(
        count("he_serve_requests_total", &[("outcome", "completed")]),
        report.completed as f64,
        "completed counter disagrees with ServeReport"
    );
    assert_eq!(
        count("he_serve_batches_total", &[]),
        report.batches as f64,
        "batch counter disagrees with ServeReport"
    );
    assert_eq!(
        count("he_serve_queue_wait_seconds_count", &[]),
        report.batched_images as f64,
        "one queue-wait sample per batched request"
    );
    let ops_now = OpSnapshot::now();
    assert_eq!(
        count("he_ops_total", &[("op", "ct_mults")]),
        ops_now.ct_mults as f64,
        "he_ops_total bridge disagrees with OpSnapshot at quiescence"
    );
    assert_eq!(
        count("he_ops_total", &[("op", "rescales")]),
        ops_now.rescales as f64,
    );
    let headroom = count(
        "he_layer_noise_headroom_bits",
        &[("layer", &last_layer.name)],
    );
    assert!(
        (headroom - last_layer.headroom_bits).abs() < 1e-9,
        "layer gauge {headroom} != traced {}",
        last_layer.headroom_bits
    );
    println!(
        "quiescent scrape agrees: {} completed, {} batches, ct_mults={}, \
         last-layer headroom {headroom:.2} bits",
        report.completed, report.batches, ops_now.ct_mults
    );

    // ---- event log: strict per-line round-trip + completion parity
    let events = engine.events_jsonl();
    assert_eq!(engine.events_dropped(), 0, "4096-slot ring never filled");
    let mut completes = 0u64;
    for (i, line) in events.lines().enumerate() {
        let parsed = he_metrics::events::parse_line(line)
            .unwrap_or_else(|e| panic!("event line {i} does not parse: {e}"));
        assert_eq!(parsed.to_json(), line, "event line {i} round-trip drifted");
        if parsed.kind == "complete" {
            completes += 1;
        }
    }
    assert_eq!(
        completes, report.completed,
        "one complete event per completed request"
    );
    println!(
        "event log: {} events, {} complete, all lines round-trip",
        events.lines().count(),
        completes
    );

    // ---- artifacts for CI
    let dir = std::path::Path::new("target/metrics-demo");
    std::fs::create_dir_all(dir).expect("create artifact dir");
    std::fs::write(dir.join("metrics.prom"), &final_scrape).expect("write scrape");
    std::fs::write(dir.join("events.jsonl"), &events).expect("write events");
    println!("artifacts written to {}", dir.display());

    println!("\n{}", engine.shutdown());
}
