//! Static circuit analysis: catch a mis-planned encrypted CNN *before*
//! generating keys or encrypting a single pixel.
//!
//! The he-lint analyzer symbolically executes a plan over ciphertext
//! metadata only (level, scale, slots, required keys), so a modulus
//! chain that is four primes too short — which would otherwise panic
//! minutes into an encrypted inference — is rejected in microseconds.
//!
//! This example extracts the paper's CNN2, serializes it to a HENT
//! model file plus two CKKS parameter files under `target/lint-demo/`,
//! and lints both plans. The same files feed the standalone CLI:
//!
//! ```text
//! cargo run --release -p he-lint -- target/lint-demo/cnn2.hent \
//!     target/lint-demo/params-shallow.txt
//! ```
//!
//! Run: `cargo run --release -p examples --bin static_lint`

#![forbid(unsafe_code)]

use ckks::{CkksParams, SecurityLevel};
use cnn_he::lint::plan_for_network;
use cnn_he::HeNetwork;
use neural::models::{cnn2, ActKind};
use std::path::Path;

fn params_with_depth(depth: usize) -> CkksParams {
    CkksParams {
        n: 1 << 13,
        chain_bits: {
            let mut v = vec![40u32];
            v.extend(std::iter::repeat_n(26, depth));
            v
        },
        special_bits: vec![40],
        scale_bits: 26,
        security: SecurityLevel::None,
    }
}

fn write_params_file(path: &Path, p: &CkksParams) {
    let chain: Vec<String> = p.chain_bits.iter().map(ToString::to_string).collect();
    let text = format!(
        "# CKKS-RNS parameters for he-lint\nn = {}\nchain_bits = {}\nspecial_bits = 40\nscale_bits = {}\nsecurity = none\n",
        p.n,
        chain.join(" "),
        p.scale_bits,
    );
    std::fs::write(path, text).expect("write params file");
}

fn main() {
    // The paper's CNN2 (two conv+BN blocks, three SLAF activations,
    // two dense layers) extracted for 28×28 inputs. Untrained weights
    // are fine: the analyzer only looks at shapes.
    let net = HeNetwork::from_trained(&cnn2(ActKind::slaf3(), 42), 28);
    println!(
        "CNN2 extracted: {} HE layers, {} multiplicative levels required\n",
        net.layers.len(),
        net.required_levels()
    );

    let dir = Path::new("target").join("lint-demo");
    std::fs::create_dir_all(&dir).expect("create target/lint-demo");
    let model_path = dir.join("cnn2.hent");
    std::fs::write(&model_path, bench::modelio::network_to_bytes(&net)).expect("write model");

    let good = params_with_depth(net.required_levels());
    let shallow = params_with_depth(6); // four rescaling primes short
    write_params_file(&dir.join("params-ok.txt"), &good);
    write_params_file(&dir.join("params-shallow.txt"), &shallow);
    println!(
        "wrote {}, params-ok.txt, params-shallow.txt\n",
        model_path.display()
    );

    // ---- lint the correctly sized plan ----------------------------
    let report = he_lint::analyze(&plan_for_network(&net, good, 1));
    println!("lint with a {}-level chain:", net.required_levels());
    print!("{}", report.render());
    assert!(!report.has_errors());

    // ---- lint the over-deep plan ----------------------------------
    let report = he_lint::analyze(&plan_for_network(&net, shallow, 1));
    println!("\nlint with a 6-level chain:");
    print!("{}", report.render());
    assert!(report.has_errors(), "the shallow chain must be rejected");

    println!(
        "\nthe same check runs standalone:\n  cargo run --release -p he-lint -- {} {}",
        model_path.display(),
        dir.join("params-shallow.txt").display()
    );
}
