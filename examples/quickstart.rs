//! Quickstart: the paper's Fig. 1 flow in ~60 lines.
//!
//! A client encrypts data under CKKS-RNS, an untrusted server computes on
//! the ciphertexts (here: a weighted sum and a polynomial activation —
//! one homomorphic neuron, Eq. 1 of the paper), and the client decrypts
//! the result. The server never sees plaintext.
//!
//! Run: `cargo run --release -p examples --bin quickstart`

#![forbid(unsafe_code)]

use ckks::{CkksParams, Evaluator, KeyGenerator};
use ckks_math::sampler::Sampler;
use std::sync::Arc;

fn main() {
    // ---- client: parameters + keys -------------------------------
    // A reduced ring (2^12) keeps this instant; Table II's production
    // setting is CkksParams::paper_table2() (N = 2^14, λ = 128).
    let ctx = CkksParams::toy(4).build();
    println!("context: {}", ctx.describe());

    let mut kg = KeyGenerator::new(Arc::clone(&ctx), 42);
    let sk = kg.gen_secret_key();
    let pk = kg.gen_public_key(&sk);
    let rk = kg.gen_relin_key(&sk);
    let ev = Evaluator::new(Arc::clone(&ctx));
    let mut sampler = Sampler::from_seed(7);

    // ---- client: encrypt three feature vectors -------------------
    let x1 = vec![0.52, -0.11, 0.87, 0.03];
    let x2 = vec![-0.34, 0.65, 0.12, -0.78];
    let x3 = vec![0.15, 0.25, -0.42, 0.61];
    let c1 = ev.encrypt_real(&x1, &pk, &mut sampler);
    let c2 = ev.encrypt_real(&x2, &pk, &mut sampler);
    let c3 = ev.encrypt_real(&x3, &pk, &mut sampler);
    println!("client: encrypted 3 feature vectors (server sees only ciphertexts)");

    // ---- server: one homomorphic neuron (Eq. 1) ------------------
    // y = σ(w1·x1 + w2·x2 + w3·x3 + β) with a degree-3 polynomial σ.
    let (w1, w2, w3, beta) = (0.9, -0.5, 1.3, 0.05);
    let scale = ctx.params().scale();
    let mut acc = ev.zero_ciphertext(c1.scale * scale, c1.level, c1.slots);
    ev.mul_scalar_acc(&mut acc, &c1, w1, scale);
    ev.mul_scalar_acc(&mut acc, &c2, w2, scale);
    ev.mul_scalar_acc(&mut acc, &c3, w3, scale);
    ev.add_scalar_assign(&mut acc, beta);
    let z = ev.rescale(&acc);

    // σ(z) = 0.1 + 0.55·z + 0.24·z² + 0.02·z³ (a SLAF-style polynomial)
    let coeffs = [0.1, 0.55, 0.24, 0.02];
    let y = cnn_he::he_layers::he_poly_eval_deg3(&ev, &rk, &z, &coeffs);
    println!(
        "server: evaluated a homomorphic neuron at level {}",
        y.level
    );

    // ---- client: decrypt ------------------------------------------
    let got = ev.decrypt_to_real(&y, &sk);
    println!("\n  i   plaintext result   decrypted result   |error|");
    for i in 0..4 {
        let zi = w1 * x1[i] + w2 * x2[i] + w3 * x3[i] + beta;
        let want = coeffs[0] + coeffs[1] * zi + coeffs[2] * zi * zi + coeffs[3] * zi * zi * zi;
        println!(
            "  {i}   {want:>16.8}   {:>16.8}   {:.2e}",
            got[i],
            (got[i] - want).abs()
        );
        assert!((got[i] - want).abs() < 1e-3);
    }
    println!("\nblind two-party non-interactive processing: OK");
}
