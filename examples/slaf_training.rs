//! Self-Learning Activation Functions (paper §III.B) — the degree
//! ablation promised in DESIGN.md §13.
//!
//! Trains CNN1 with ReLU, then retrains SLAF variants of degree 2, 3 and
//! 4 and reports the accuracy / multiplicative-depth trade-off. Degree 3
//! (the paper's choice) typically recovers ReLU accuracy; degree 2 (the
//! CryptoNets square family) loses a little; degree 4 buys nothing at
//! extra depth.
//!
//! Run: `cargo run --release -p examples --bin slaf_training`

#![forbid(unsafe_code)]

use neural::layers::activation::relu_poly_fit;
use neural::mnist;
use neural::models::{cnn1, swap_activations_for_slaf, ActKind};
use neural::train::{evaluate, train, TrainConfig};

fn main() {
    let train_set = mnist::synthetic(2000, 99);
    let test_set = mnist::synthetic(400, 9999);
    println!(
        "synthetic MNIST: {} train / {} test",
        train_set.len(),
        test_set.len()
    );

    // Phase 1: ReLU pre-training (shared by all variants).
    println!("\nphase 1: training CNN1 with ReLU ...");
    let mut relu_model = cnn1(ActKind::Relu, 99);
    let cfg = TrainConfig {
        epochs: 6,
        max_lr: 0.08,
        verbose: false,
        ..Default::default()
    };
    train(&mut relu_model, &train_set, &cfg);
    let relu_acc = evaluate(&mut relu_model, &test_set);
    println!("  ReLU test accuracy: {:.2}%", relu_acc * 100.0);

    // Show the warm-start fits.
    println!("\nleast-squares ReLU fits on [-6, 6] (warm starts):");
    for degree in [2usize, 3, 4] {
        let c = relu_poly_fit(degree, 6.0, 512);
        let terms: Vec<String> = c
            .iter()
            .enumerate()
            .map(|(k, v)| format!("{v:+.4}·x^{k}"))
            .collect();
        println!("  degree {degree}: {}", terms.join(" "));
    }

    // Phase 2: per-degree SLAF retraining from the same ReLU weights.
    println!("\nphase 2: SLAF retraining (2 epochs each)");
    println!("  degree | HE mult. depth per act | test acc | Δ vs ReLU");
    let retrain_cfg = TrainConfig {
        epochs: 2,
        max_lr: 0.004,
        grad_clip: 0.5,
        ..Default::default()
    };
    for degree in [2usize, 3, 4] {
        // fresh copy of the ReLU-trained weights for a fair comparison
        let mut m = cnn1(ActKind::Relu, 99);
        train(&mut m, &train_set, &cfg);
        swap_activations_for_slaf(&mut m, degree, 6.0);
        train(&mut m, &train_set, &retrain_cfg);
        let acc = evaluate(&mut m, &test_set);
        // depth: ⌈log2 d⌉ + 1 per the paper's §V.B
        let depth = (degree as f64).log2().ceil() as usize + 1;
        println!(
            "  {degree:>6} | {depth:>22} | {:>7.2}% | {:+.2} pts",
            acc * 100.0,
            (acc - relu_acc) * 100.0
        );
    }
    println!("\nthe paper's experiments use degree 3 (depth 2, ReLU-level accuracy).");
}
