//! Traced encrypted inference: run the paper's CNN1 over an encrypted
//! image with full runtime telemetry, print the per-layer breakdown and
//! noise-drain tables, and export the recorded spans as a
//! chrome://tracing JSON file plus flamegraph folded stacks.
//!
//! The run cross-checks its observed level/scale trajectory against the
//! he-lint static plan (`trace.divergence` must be empty) and validates
//! the emitted chrome-trace JSON in-process, exiting non-zero on any
//! mismatch — CI runs this as the tracing smoke test.
//!
//! Uses a toy `2^10` ring so the whole demo finishes in seconds; the
//! telemetry machinery is identical at the paper's `2^14` parameters.
//!
//! Run: `cargo run --release -p examples --bin traced_inference`
//!
//! Inspect the trace: open chrome://tracing (or <https://ui.perfetto.dev>)
//! and load `target/trace-demo/trace.json`.

#![forbid(unsafe_code)]

use cnn_he::{CnnHePipeline, ExecMode, HeNetwork};
use neural::models::{cnn1, ActKind};
use std::path::Path;

fn main() {
    // The paper's CNN1 (conv, SLAF, dense, SLAF, dense) extracted for
    // 28×28 inputs. Untrained weights: telemetry, not accuracy, is the
    // point here.
    let net = HeNetwork::from_trained(&cnn1(ActKind::slaf3(), 7), 28);
    println!("{}", net.describe());

    let mut pipe = CnnHePipeline::new(net, 1 << 10, 7);
    pipe.set_exec_mode(ExecMode::auto());
    let img: Vec<f32> = (0..784).map(|i| ((i * 3) % 29) as f32 / 29.0).collect();

    println!("running traced encrypted inference ...\n");
    let (cls, trace) = pipe.traced_infer(&[&img]);
    println!("predicted class: {}\n", cls.predictions[0]);

    // ---- per-layer breakdown --------------------------------------
    println!("{}", trace.report().breakdown());

    // ---- noise drain ----------------------------------------------
    println!("{}", trace.noise_drain());
    println!(
        "total headroom spent: {:.1} bits (of {:.1} at encryption)\n",
        trace.noise_spent_bits(),
        trace.start_headroom_bits
    );

    // ---- runtime ↔ static cross-check -----------------------------
    assert!(
        trace.divergence.is_empty(),
        "runtime diverged from the he-lint static plan:\n{}",
        trace.divergence.join("\n")
    );
    println!("runtime level/scale trajectory matches the he-lint static plan ✓");

    // ---- export ----------------------------------------------------
    let dir = Path::new("target").join("trace-demo");
    std::fs::create_dir_all(&dir).expect("create target/trace-demo");

    let json = trace.chrome_json().expect("span timestamps must be finite");
    let n = he_trace::validate_chrome_json(&json)
        .unwrap_or_else(|e| panic!("emitted chrome trace is invalid: {e}"));
    assert_eq!(
        n,
        trace.events.len(),
        "validator saw {n} events, recorder captured {}",
        trace.events.len()
    );
    let json_path = dir.join("trace.json");
    std::fs::write(&json_path, &json).expect("write trace.json");

    let folded = trace.folded_stacks();
    let folded_path = dir.join("trace.folded");
    std::fs::write(&folded_path, &folded).expect("write trace.folded");

    println!(
        "exported {} span events ({} validated) → {}",
        trace.events.len(),
        n,
        json_path.display()
    );
    println!("folded stacks → {}", folded_path.display());
    if trace.events.is_empty() {
        // tracing compiled out: the pipeline still works, but this
        // binary exists to smoke-test the instrumentation
        eprintln!("warning: no span events recorded — built without the `trace` feature?");
        std::process::exit(2);
    }
    println!(
        "\nsummarize it:   cargo run --release -p he-trace -- {}",
        json_path.display()
    );
    println!(
        "or validate:    cargo run --release -p he-trace -- --validate {}",
        json_path.display()
    );
}
