//! Serving demo: concurrent encrypted classification requests coalesce
//! into one slot-packed batch, and the amortized per-image latency
//! drops strictly below what a lone request pays.
//!
//! ```text
//! cargo run --release -p examples --bin serve_demo
//! ```
//!
//! Phase 1 submits a single request and records its cost. Phase 2 fires
//! six concurrent clients at the engine; the micro-batcher coalesces
//! them (scalar-batch packing: extra images ride unused CKKS slots at
//! no additional HE cost), so the per-image cost divides by the batch
//! size. The demo asserts the coalescing actually happened (≥ 4 images
//! in one batch) and that amortization beat the lone request — CI runs
//! this binary as an acceptance check.

#![forbid(unsafe_code)]

use cnn_he::he_layers::{ConvSpec, DenseSpec};
use cnn_he::{CnnHePipeline, HeLayerSpec, HeNetwork};
use he_serve::{ServeConfig, ServeEngine};
use rand::{Rng, SeedableRng};
use std::time::Duration;

const CLIENTS: usize = 6;

/// A CNN1-shaped miniature (conv → SLAF act → dense → act → dense)
/// over 8×8 inputs, sized for the 2^10 demo ring so the whole demo
/// runs in seconds.
fn demo_network(seed: u64) -> HeNetwork {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut w = |n: usize| -> Vec<f32> { (0..n).map(|_| rng.gen_range(-0.3f32..0.3)).collect() };
    let conv = ConvSpec {
        weight: w(2 * 9),
        bias: vec![0.05, -0.05],
        in_ch: 1,
        out_ch: 2,
        k: 3,
        stride: 2,
        pad: 0,
    };
    let dense1 = DenseSpec {
        weight: w(18 * 6),
        bias: w(6),
        in_dim: 18,
        out_dim: 6,
    };
    let dense2 = DenseSpec {
        weight: w(6 * 3),
        bias: w(3),
        in_dim: 6,
        out_dim: 3,
    };
    HeNetwork {
        layers: vec![
            HeLayerSpec::Conv(conv),
            HeLayerSpec::Activation(vec![0.1, 0.6, 0.2, 0.05]),
            HeLayerSpec::Dense(dense1),
            HeLayerSpec::Activation(vec![0.0, 0.8, 0.15]),
            HeLayerSpec::Dense(dense2),
        ],
        input_side: 8,
    }
}

fn image(i: usize) -> Vec<f32> {
    (0..64)
        .map(|p| (((p * 7 + i * 13) % 31) as f32) / 31.0)
        .collect()
}

fn main() {
    let cfg = ServeConfig {
        max_batch: 8,
        max_linger: Duration::from_millis(150),
        queue_capacity: 32,
        workers: 1,
        ..Default::default()
    };
    println!(
        "starting he-serve: max_batch={}, linger={:?}, {} worker(s)",
        cfg.max_batch, cfg.max_linger, cfg.workers
    );
    let engine = ServeEngine::start(cfg, || CnnHePipeline::new(demo_network(31), 1 << 10, 31))
        .expect("the demo network must pass he-lint admission under the demo parameters");

    // ---- phase 1: a lone request pays the full batch cost itself
    let lone = engine
        .classify_blocking(image(0))
        .expect("lone request served");
    println!(
        "\nphase 1 — lone request: class {} | batch of {} | compute {:.4}s | latency {:.4}s",
        lone.prediction,
        lone.batch_size,
        lone.batch_wall.as_secs_f64(),
        lone.request_latency.as_secs_f64()
    );

    // ---- phase 2: concurrent clients share one slot-packed batch
    println!("\nphase 2 — {CLIENTS} concurrent clients ...");
    let mut results = Vec::with_capacity(CLIENTS);
    std::thread::scope(|s| {
        let engine = &engine;
        let joins: Vec<_> = (0..CLIENTS)
            .map(|i| {
                s.spawn(move || {
                    let r = engine
                        .submit(image(i))
                        .expect("queued")
                        .wait()
                        .expect("served");
                    (i, r)
                })
            })
            .collect();
        for j in joins {
            results.push(j.join().expect("client thread"));
        }
    });
    for (i, r) in &results {
        println!(
            "  client {i}: class {} | batch of {} | amortized {:.4}s",
            r.prediction,
            r.batch_size,
            r.amortized.as_secs_f64()
        );
    }

    // ---- the aha: coalescing happened and amortization beat the lone run
    let biggest = results.iter().map(|(_, r)| r.batch_size).max().unwrap();
    assert!(
        biggest >= 4,
        "expected >= 4 concurrent requests coalesced into one batch, got {biggest}"
    );
    let amortized = results
        .iter()
        .find(|(_, r)| r.batch_size == biggest)
        .map(|(_, r)| r.amortized)
        .unwrap();
    assert!(
        amortized < lone.batch_wall,
        "amortized per-image {:.4}s not below lone-request compute {:.4}s",
        amortized.as_secs_f64(),
        lone.batch_wall.as_secs_f64()
    );
    println!(
        "\ncoalesced {biggest} requests into one slot-packed batch: \
         amortized {:.4}s/image vs {:.4}s for the lone request ({:.1}x cheaper)",
        amortized.as_secs_f64(),
        lone.batch_wall.as_secs_f64(),
        lone.batch_wall.as_secs_f64() / amortized.as_secs_f64()
    );

    println!("\n{}", engine.shutdown());
}
