//! Client/server wire format — what actually crosses the network in the
//! paper's Fig. 1 deployment.
//!
//! Serializes the public key, relinearization key and a batch of
//! encrypted pixels to bytes, "ships" them to a simulated server that
//! deserializes, evaluates a homomorphic neuron, serializes the result
//! back, and the client decrypts. Also reports the ciphertext expansion
//! factor.
//!
//! Run: `cargo run --release -p examples --bin serialization_roundtrip`

#![forbid(unsafe_code)]

use ckks::serialize::*;
use ckks::{CkksParams, Evaluator, KeyGenerator};
use ckks_math::sampler::Sampler;
use std::sync::Arc;

fn main() {
    let ctx = CkksParams::toy(3).build();
    println!("context: {}", ctx.describe());
    let mut kg = KeyGenerator::new(Arc::clone(&ctx), 1234);
    let sk = kg.gen_secret_key();
    let pk = kg.gen_public_key(&sk);
    let rk = kg.gen_relin_key(&sk);
    let ev = Evaluator::new(Arc::clone(&ctx));
    let mut sampler = Sampler::from_seed(5678);

    // ---- client side ----------------------------------------------
    let pixels: Vec<f64> = (0..64).map(|i| (i as f64 / 63.0) * 0.9).collect();
    let ct = ev.encrypt_real(&pixels, &pk, &mut sampler);

    let pk_bytes = serialize_public_key(&pk);
    let rk_bytes = serialize_relin_key(&rk);
    let ct_bytes = serialize_ciphertext(&ct);
    let plain_bytes = pixels.len() * 8;
    println!("\nwire sizes:");
    println!("  public key     {:>10} bytes", pk_bytes.len());
    println!("  relin key      {:>10} bytes", rk_bytes.len());
    println!(
        "  ciphertext     {:>10} bytes  ({}× expansion over {} plaintext bytes)",
        ct_bytes.len(),
        ct_bytes.len() / plain_bytes,
        plain_bytes
    );

    // ---- server side (only bytes cross the boundary) --------------
    let server_result: Vec<u8> = {
        let ctx = Arc::clone(&ctx); // server has the public parameters
        let ev = Evaluator::new(Arc::clone(&ctx));
        let ct = deserialize_ciphertext(&ct_bytes, &ctx).expect("bad ciphertext blob");
        let rk = deserialize_relin_key(&rk_bytes, &ctx).expect("bad relin key blob");
        // y = 0.2 + x + 0.5·x²  (a CryptoNets-style square neuron)
        let y = cnn_he::he_layers::he_poly_eval_deg3(&ev, &rk, &ct, &[0.2, 1.0, 0.5, 0.0]);
        serialize_ciphertext(&y).to_vec()
    };
    println!("\nserver returned {} bytes", server_result.len());

    // ---- client decrypts ------------------------------------------
    let y = deserialize_ciphertext(&server_result, &ctx).expect("bad result blob");
    let got = ev.decrypt_to_real(&y, &sk);
    let mut worst = 0.0f64;
    for (g, &x) in got.iter().zip(&pixels) {
        let want = 0.2 + x + 0.5 * x * x;
        worst = worst.max((g - want).abs());
    }
    println!("max decryption error vs expected: {worst:.2e}");
    assert!(worst < 1e-3);

    // ---- tamper detection ------------------------------------------
    let mut corrupted = ct_bytes.to_vec();
    let mid = corrupted.len() / 2;
    corrupted[mid] ^= 0x55;
    match deserialize_ciphertext(&corrupted, &ctx) {
        Err(e) => println!("tampered ciphertext rejected: {e}"),
        Ok(_) => {
            // corruption may land inside a residue and still parse; the
            // point of validation is structural integrity, not MAC-level
            // authenticity (CKKS is not IND-CCA — see README security notes)
            println!("tampered ciphertext parsed (corruption hit a value, not the structure)");
        }
    }
    println!("\nroundtrip complete.");
}
