//! Encrypted digit classification end-to-end — the paper's headline
//! scenario at example scale.
//!
//! Trains CNN1 with the SLAF protocol on synthetic MNIST, then classifies
//! encrypted digits and compares against the plaintext model. Uses a
//! reduced ring (2^11) so the example finishes in about a minute on a
//! laptop core; the benchmark binaries (`table3` … `table6`) run the
//! full Table II parameters.
//!
//! Run: `cargo run --release -p examples --bin encrypted_digit`

#![forbid(unsafe_code)]

use cnn_he::{CnnHePipeline, HeNetwork};
use neural::mnist;
use neural::models::{cnn1, ActKind};
use neural::slaf::{run_protocol, SlafProtocol};
use neural::train::TrainConfig;

fn main() {
    // ---- phase 1+2: SLAF training protocol ------------------------
    println!("generating synthetic MNIST (no network access; see DESIGN.md §4) ...");
    let train = mnist::synthetic(1500, 42);
    let test = mnist::synthetic(200, 4242);

    println!("training CNN1 (ReLU) then retraining with degree-3 SLAF ...");
    let mut model = cnn1(ActKind::Relu, 42);
    let proto = SlafProtocol {
        pretrain: TrainConfig {
            epochs: 5,
            max_lr: 0.08,
            ..Default::default()
        },
        ..Default::default()
    };
    let outcome = run_protocol(&mut model, &train, &proto);
    println!(
        "  ReLU train acc {:.2}%  →  SLAF train acc {:.2}%",
        outcome.relu_train_acc * 100.0,
        outcome.slaf_train_acc * 100.0
    );

    // ---- extraction + pipeline ------------------------------------
    let network = HeNetwork::from_trained(&model, mnist::SIDE);
    println!("\nextracted HE network:\n{}", network.describe());
    let mut pipe = CnnHePipeline::new(network, 1 << 11, 42);

    // ---- encrypted classification ---------------------------------
    let n_images = 4usize;
    println!("classifying {n_images} encrypted digits ...\n");
    let mut he_correct = 0;
    let mut agree = 0;
    for i in 0..n_images {
        let img = test.image(i);
        let label = test.labels[i];
        let result = pipe.classify(&[img]);
        let plain = pipe.network.infer_plain(img);
        let plain_pred = plain
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let he_pred = result.predictions[0];
        println!(
            "  digit {label}: encrypted → {he_pred}, plaintext → {plain_pred}  (cpu {:.2}s)",
            result.timing.cpu_total().as_secs_f64()
        );
        if he_pred == label {
            he_correct += 1;
        }
        if he_pred == plain_pred {
            agree += 1;
        }
    }
    println!(
        "\nencrypted accuracy {he_correct}/{n_images}; encrypted/plaintext agreement {agree}/{n_images}"
    );
    assert_eq!(
        agree, n_images,
        "HE predictions must match the plaintext model"
    );
}
