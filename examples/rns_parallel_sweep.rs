//! The RNS decomposition and its parallelism — Figs. 2 and 5 hands-on.
//!
//! Part 1 demonstrates the Fig. 2 arithmetic numerically: residue
//! decomposition, per-plane parallel convolution with modular reduction,
//! exact CRT reassembly.
//!
//! Part 2 runs one encrypted CNN1 inference on a reduced ring and shows
//! the latency every `k`-stream execution plan would achieve (Table IV's
//! shape) — all from a single measured run.
//!
//! Run: `cargo run --release -p examples --bin rns_parallel_sweep`

#![forbid(unsafe_code)]

use cnn_he::exec::ExecPlan;
use cnn_he::quantize::QuantSpec;
use cnn_he::{CnnHePipeline, HeNetwork, SignalDecomposition};
use neural::mnist;
use neural::models::{cnn1, ActKind};

fn main() {
    // ---------------- Part 1: Fig. 2 numerics ----------------------
    println!("== Fig. 2: residue number system decomposition ==\n");
    let q = QuantSpec::default();
    let pixels = [0.85f32, 0.32, 0.0, 1.0, 0.5];
    let ints = q.quantize_input(&pixels);
    println!("quantized pixels: {ints:?}");

    let d = SignalDecomposition::new(3, q.output_bound(25, 1.0));
    println!("co-prime moduli:  {:?}", d.moduli());
    let planes = d.decompose_residues(&ints);
    for (j, p) in planes.iter().enumerate() {
        println!("  residue plane {j} (mod {}): {:?}", d.moduli()[j], p);
    }
    let back = d.recompose_residues(&planes);
    println!("CRT recomposition: {back:?}  (exact: {})", back == ints);

    // parallel residue convolution == direct convolution
    let kernel = [300i64, -120, 77];
    let conv = |xs: &[i64]| -> Vec<i64> {
        (0..xs.len() - 2)
            .map(|i| (0..3).map(|j| xs[i + j] * kernel[j]).sum())
            .collect()
    };
    let direct = conv(&ints);
    let via_rns = d.conv_residues_parallel(&ints, conv);
    println!("\nconv direct:        {direct:?}");
    println!(
        "conv via k=3 RNS:   {via_rns:?}  (exact: {})",
        direct == via_rns
    );
    assert_eq!(direct, via_rns);

    // ---------------- Part 2: Table IV's shape ---------------------
    println!("\n== Fig. 5: latency of k-stream execution plans ==\n");
    println!("(untrained CNN1 weights — latency does not depend on weight values)");
    let model = cnn1(ActKind::slaf3(), 7);
    let network = HeNetwork::from_trained(&model, mnist::SIDE);
    let mut pipe = CnnHePipeline::new(network, 1 << 11, 7);
    let img: Vec<f32> = (0..784).map(|i| ((i * 31) % 97) as f32 / 97.0).collect();
    println!("running one encrypted CNN1 inference (reduced ring 2^11) ...");
    let result = pipe.classify(&[&img]);
    println!(
        "measured CPU total: {:.2}s\n",
        result.timing.cpu_total().as_secs_f64()
    );
    println!("{}", result.timing.breakdown());

    println!("\n  streams k | simulated wall (16 virtual cores) | speed-up vs k=1");
    let base = result.timing.simulated_wall(ExecPlan::baseline());
    for k in [1usize, 3, 4, 5, 6, 7, 8, 9, 10] {
        let wall = result.timing.simulated_wall(ExecPlan::rns(k));
        println!(
            "  {k:>9} | {:>22.3} s           | {:>6.2}%",
            wall.as_secs_f64(),
            (base.as_secs_f64() - wall.as_secs_f64()) / base.as_secs_f64() * 100.0
        );
    }
    println!(
        "\nexecution plan (k = 3):\n{}",
        pipe.execution_plan_description(ExecPlan::rns(3))
    );
}
